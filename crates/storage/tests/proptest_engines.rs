//! Randomized-model tests: every storage engine behaves like a reference
//! model (a sorted map) under arbitrary operation sequences.
//!
//! Formerly proptest-based; the workspace now builds offline, so the same
//! invariants run as seeded `SplitRng` case loops. The one historical
//! proptest regression (a shrunk Insert/Get/Scan sequence that diverged
//! the LSM from its model) is preserved verbatim in
//! `lsm_regression_sequence_matches_model`.

use apm_core::keyspace::{record_for_seq, SplitRng};
use apm_core::record::{FieldValues, MetricKey};
use apm_storage::btree::{BTree, BTreeConfig};
use apm_storage::hashstore::HashStore;
use apm_storage::lsm::{JobKind, LsmConfig, LsmTree};
use apm_storage::memtable::Memtable;
use std::collections::BTreeMap;

const CASES: u64 = 64;

/// An operation against a keyed store.
#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Get(u64),
    Scan(u64, usize),
}

/// Mirrors the old proptest strategy: 3:2:1 insert/get/scan mix.
fn random_op(rng: &mut SplitRng, key_space: u64) -> Op {
    match rng.next_below(6) {
        0..=2 => Op::Insert(rng.next_below(key_space)),
        3..=4 => Op::Get(rng.next_below(key_space)),
        _ => Op::Scan(rng.next_below(key_space), 1 + rng.next_below(59) as usize),
    }
}

fn random_ops(rng: &mut SplitRng, key_space: u64, max_len: u64) -> Vec<Op> {
    let len = 1 + rng.next_below(max_len - 1) as usize;
    (0..len).map(|_| random_op(rng, key_space)).collect()
}

fn key(seq: u64) -> MetricKey {
    record_for_seq(seq).key
}

fn value(seq: u64) -> FieldValues {
    record_for_seq(seq).fields
}

/// Drives announced LSM jobs to completion immediately.
fn settle(tree: &mut LsmTree, job: Option<apm_storage::lsm::BackgroundJob>) {
    let mut next = job;
    while let Some(j) = next {
        next = match j.kind {
            JobKind::Flush => tree.complete_flush(j.id),
            JobKind::Compaction => tree.complete_compaction(j.id),
        };
    }
}

fn model_scan(
    model: &BTreeMap<MetricKey, FieldValues>,
    start: &MetricKey,
    len: usize,
) -> Vec<MetricKey> {
    model.range(start..).take(len).map(|(k, _)| *k).collect()
}

fn check_lsm_against_model(ops: &[Op], label: &str) {
    let mut tree = LsmTree::new(LsmConfig {
        memtable_flush_bytes: 75 * 40,
        ..LsmConfig::default()
    });
    let mut model: BTreeMap<MetricKey, FieldValues> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(seq) => {
                let (_, job) = tree.insert(key(seq), value(seq));
                settle(&mut tree, job);
                model.insert(key(seq), value(seq));
            }
            Op::Get(seq) => {
                let (got, _) = tree.get(&key(seq));
                assert_eq!(
                    got.as_ref(),
                    model.get(&key(seq)),
                    "{label}: get({seq}) diverged"
                );
            }
            Op::Scan(seq, len) => {
                let (rows, _) = tree.scan(&key(seq), len);
                let got: Vec<MetricKey> = rows.iter().map(|(k, _)| *k).collect();
                assert_eq!(
                    got,
                    model_scan(&model, &key(seq), len),
                    "{label}: scan({seq}, {len}) diverged"
                );
            }
        }
    }
    // Re-inserted keys keep an extra version per unmerged run, so the
    // physical count may exceed the logical count until compaction.
    assert!(
        tree.record_count() >= model.len() as u64,
        "{label}: records lost"
    );
}

#[test]
fn lsm_matches_sorted_map_model() {
    let mut root = SplitRng::new(0x6C73_6D74);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let ops = random_ops(&mut rng, 500, 400);
        check_lsm_against_model(&ops, &format!("case {case}"));
    }
}

/// The shrunk sequence proptest saved in
/// `proptest_engines.proptest-regressions`: ~70 unique inserts force
/// memtable flushes at 40 records, then interleaved Get/Scan traffic
/// checks reads across memtable + multiple on-disk runs.
#[test]
fn lsm_regression_sequence_matches_model() {
    let ops = vec![
        Op::Insert(245),
        Op::Insert(71),
        Op::Insert(342),
        Op::Insert(13),
        Op::Insert(54),
        Op::Insert(433),
        Op::Insert(499),
        Op::Insert(118),
        Op::Insert(418),
        Op::Insert(218),
        Op::Insert(352),
        Op::Insert(388),
        Op::Insert(480),
        Op::Insert(143),
        Op::Insert(266),
        Op::Insert(369),
        Op::Insert(286),
        Op::Insert(440),
        Op::Insert(453),
        Op::Insert(434),
        Op::Insert(49),
        Op::Insert(209),
        Op::Insert(403),
        Op::Insert(424),
        Op::Insert(462),
        Op::Insert(247),
        Op::Insert(67),
        Op::Insert(250),
        Op::Insert(95),
        Op::Insert(91),
        Op::Insert(170),
        Op::Insert(243),
        Op::Insert(269),
        Op::Insert(408),
        Op::Insert(496),
        Op::Insert(18),
        Op::Insert(241),
        Op::Insert(356),
        Op::Insert(141),
        Op::Insert(335),
        Op::Insert(342),
        Op::Insert(161),
        Op::Insert(136),
        Op::Insert(148),
        Op::Insert(132),
        Op::Insert(277),
        Op::Insert(257),
        Op::Insert(117),
        Op::Insert(6),
        Op::Insert(301),
        Op::Insert(490),
        Op::Insert(265),
        Op::Insert(32),
        Op::Insert(498),
        Op::Insert(298),
        Op::Insert(437),
        Op::Insert(479),
        Op::Insert(346),
        Op::Insert(153),
        Op::Insert(232),
        Op::Insert(146),
        Op::Insert(121),
        Op::Insert(465),
        Op::Insert(317),
        Op::Insert(19),
        Op::Insert(407),
        Op::Insert(112),
        Op::Insert(54),
        Op::Insert(158),
        Op::Insert(111),
        Op::Insert(202),
        Op::Insert(172),
        Op::Insert(187),
        Op::Insert(37),
        Op::Get(406),
        Op::Get(479),
        Op::Scan(334, 48),
        Op::Get(270),
        Op::Insert(446),
        Op::Get(309),
        Op::Get(303),
        Op::Insert(220),
        Op::Get(403),
        Op::Insert(80),
        Op::Insert(160),
        Op::Insert(376),
        Op::Insert(392),
        Op::Get(440),
        Op::Get(45),
        Op::Insert(400),
        Op::Insert(475),
        Op::Insert(79),
        Op::Insert(473),
        Op::Insert(388),
        Op::Scan(317, 33),
        Op::Get(448),
        Op::Scan(144, 54),
        Op::Insert(359),
        Op::Insert(81),
        Op::Scan(254, 45),
        Op::Get(385),
        Op::Get(391),
        Op::Scan(416, 36),
        Op::Get(71),
        Op::Insert(255),
        Op::Insert(245),
        Op::Get(415),
        Op::Insert(46),
        Op::Scan(345, 53),
        Op::Insert(121),
        Op::Insert(73),
        Op::Scan(447, 35),
        Op::Insert(5),
        Op::Insert(201),
        Op::Insert(489),
        Op::Insert(272),
        Op::Get(476),
        Op::Scan(380, 33),
        Op::Insert(362),
        Op::Get(374),
        Op::Insert(451),
        Op::Get(190),
        Op::Get(498),
        Op::Get(443),
        Op::Insert(135),
        Op::Insert(241),
        Op::Insert(109),
        Op::Scan(244, 35),
        Op::Get(489),
        Op::Insert(320),
        Op::Insert(458),
        Op::Scan(148, 3),
        Op::Get(263),
        Op::Get(19),
        Op::Get(179),
        Op::Get(469),
        Op::Get(70),
        Op::Insert(283),
        Op::Scan(152, 7),
        Op::Insert(421),
        Op::Insert(389),
        Op::Scan(26, 24),
        Op::Get(69),
        Op::Insert(416),
        Op::Insert(276),
        Op::Scan(263, 43),
        Op::Get(353),
        Op::Get(258),
        Op::Insert(253),
        Op::Scan(268, 40),
        Op::Get(8),
        Op::Insert(390),
        Op::Insert(26),
        Op::Get(126),
        Op::Get(295),
        Op::Get(382),
        Op::Get(116),
        Op::Insert(268),
        Op::Insert(479),
        Op::Insert(332),
        Op::Scan(323, 25),
        Op::Insert(201),
        Op::Get(416),
        Op::Insert(194),
        Op::Get(277),
        Op::Get(459),
        Op::Insert(234),
        Op::Scan(415, 55),
        Op::Scan(16, 55),
        Op::Get(441),
        Op::Get(22),
        Op::Insert(37),
        Op::Scan(440, 2),
        Op::Scan(273, 10),
        Op::Get(12),
        Op::Get(30),
        Op::Insert(100),
        Op::Get(374),
        Op::Get(55),
        Op::Scan(78, 15),
        Op::Insert(119),
        Op::Get(40),
        Op::Insert(214),
        Op::Get(309),
        Op::Insert(240),
        Op::Get(426),
        Op::Insert(82),
        Op::Insert(189),
        Op::Insert(210),
        Op::Insert(31),
        Op::Insert(373),
        Op::Insert(442),
        Op::Get(153),
        Op::Scan(23, 23),
        Op::Insert(246),
        Op::Scan(112, 24),
        Op::Get(393),
        Op::Get(175),
        Op::Scan(464, 36),
        Op::Get(60),
        Op::Get(313),
        Op::Get(388),
        Op::Scan(183, 49),
        Op::Insert(160),
        Op::Scan(490, 5),
        Op::Insert(142),
        Op::Scan(274, 12),
        Op::Insert(171),
        Op::Insert(386),
        Op::Insert(425),
        Op::Get(64),
        Op::Get(476),
        Op::Insert(295),
        Op::Get(0),
        Op::Insert(5),
        Op::Insert(278),
        Op::Insert(231),
        Op::Insert(311),
        Op::Get(62),
        Op::Get(177),
        Op::Scan(294, 3),
        Op::Insert(194),
        Op::Insert(35),
        Op::Insert(424),
        Op::Insert(115),
        Op::Insert(130),
        Op::Scan(298, 34),
        Op::Scan(4, 33),
        Op::Insert(433),
        Op::Insert(114),
        Op::Scan(369, 53),
        Op::Insert(236),
        Op::Insert(9),
        Op::Insert(175),
        Op::Get(345),
        Op::Get(186),
        Op::Scan(458, 2),
        Op::Insert(402),
        Op::Get(160),
        Op::Insert(475),
        Op::Insert(28),
        Op::Insert(70),
        Op::Scan(55, 33),
        Op::Insert(106),
        Op::Get(28),
        Op::Get(295),
        Op::Insert(341),
        Op::Get(189),
        Op::Insert(4),
        Op::Insert(309),
        Op::Scan(302, 25),
        Op::Insert(317),
        Op::Get(434),
        Op::Insert(219),
        Op::Insert(239),
        Op::Scan(498, 49),
        Op::Scan(124, 57),
        Op::Get(368),
        Op::Get(54),
        Op::Insert(288),
        Op::Insert(106),
        Op::Insert(361),
        Op::Insert(383),
        Op::Get(291),
        Op::Get(316),
        Op::Insert(178),
        Op::Get(156),
        Op::Insert(167),
        Op::Insert(57),
        Op::Get(204),
        Op::Get(281),
        Op::Get(473),
    ];
    check_lsm_against_model(&ops, "regression");
}

#[test]
fn btree_matches_sorted_map_model() {
    let mut root = SplitRng::new(0x6274_7265);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let ops = random_ops(&mut rng, 500, 400);
        let mut tree = BTree::new(BTreeConfig {
            leaf_capacity: 6,
            internal_capacity: 5,
            page_bytes: 512,
        });
        let mut model: BTreeMap<MetricKey, FieldValues> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(seq) => {
                    tree.insert(key(seq), value(seq));
                    model.insert(key(seq), value(seq));
                }
                Op::Get(seq) => {
                    let (got, trace) = tree.get(&key(seq));
                    assert_eq!(got.as_ref(), model.get(&key(seq)), "case {case}");
                    assert_eq!(
                        trace.read.len(),
                        tree.depth() as usize,
                        "case {case}: descent must visit depth pages"
                    );
                }
                Op::Scan(seq, len) => {
                    let (rows, _) = tree.scan(&key(seq), len);
                    let got: Vec<MetricKey> = rows.iter().map(|(k, _)| *k).collect();
                    assert_eq!(got, model_scan(&model, &key(seq), len), "case {case}");
                }
            }
        }
        assert_eq!(tree.len(), model.len() as u64, "case {case}");
    }
}

#[test]
fn hashstore_matches_model_and_memory_is_exact() {
    let mut root = SplitRng::new(0x6861_7368);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let ops = random_ops(&mut rng, 300, 300);
        let mut store = HashStore::new(None);
        let mut model: BTreeMap<MetricKey, FieldValues> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(seq) => {
                    store.insert(key(seq), value(seq)).expect("no budget");
                    model.insert(key(seq), value(seq));
                }
                Op::Get(seq) => {
                    let (got, _) = store.get(&key(seq));
                    assert_eq!(got.as_ref(), model.get(&key(seq)), "case {case}");
                }
                Op::Scan(seq, len) => {
                    let (rows, _) = store.scan(&key(seq), len);
                    let got: Vec<MetricKey> = rows.iter().map(|(k, _)| *k).collect();
                    assert_eq!(got, model_scan(&model, &key(seq), len), "case {case}");
                }
            }
        }
        assert_eq!(store.len(), model.len(), "case {case}");
        assert_eq!(
            store.mem_bytes(),
            model.len() as u64 * HashStore::bytes_per_record(),
            "case {case}"
        );
    }
}

#[test]
fn memtable_drain_returns_exactly_the_live_set() {
    let mut root = SplitRng::new(0x6D65_6D74);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let len = 1 + rng.next_below(299) as usize;
        let seqs: Vec<u64> = (0..len).map(|_| rng.next_below(200)).collect();
        let mut memtable = Memtable::new();
        let mut model: BTreeMap<MetricKey, FieldValues> = BTreeMap::new();
        for seq in seqs {
            memtable.insert(key(seq), value(seq));
            model.insert(key(seq), value(seq));
        }
        assert_eq!(memtable.bytes(), model.len() as u64 * 75, "case {case}");
        let drained = memtable.drain_sorted();
        let expect: Vec<(MetricKey, FieldValues)> = model.into_iter().collect();
        assert_eq!(drained, expect, "case {case}");
    }
}

#[test]
fn lsm_scans_never_return_duplicates_or_unsorted_keys() {
    let mut root = SplitRng::new(0x7363_616E);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let len = 50 + rng.next_below(450) as usize;
        let inserts: Vec<u64> = (0..len).map(|_| rng.next_below(2_000)).collect();
        let start = rng.next_below(2_000);
        let mut tree = LsmTree::new(LsmConfig {
            memtable_flush_bytes: 75 * 25,
            ..LsmConfig::default()
        });
        for seq in inserts {
            let (_, job) = tree.insert(key(seq), value(seq));
            settle(&mut tree, job);
        }
        let (rows, _) = tree.scan(&key(start), 50);
        for w in rows.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "case {case}: scan output not strictly sorted"
            );
        }
        assert!(rows.len() <= 50, "case {case}");
        assert!(rows.iter().all(|(k, _)| *k >= key(start)), "case {case}");
    }
}

#[test]
fn bloom_has_no_false_negatives() {
    let mut root = SplitRng::new(0x626C_6F6F);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let len = 1 + rng.next_below(499) as usize;
        let seqs: Vec<u64> = (0..len).map(|_| rng.next_below(100_000)).collect();
        let mut bloom = apm_storage::bloom::Bloom::with_capacity(seqs.len(), 10);
        for &seq in &seqs {
            bloom.insert(&key(seq));
        }
        for &seq in &seqs {
            assert!(bloom.may_contain(&key(seq)), "case {case}");
        }
    }
}
