//! Property-based tests: every storage engine behaves like a reference
//! model (a sorted map) under arbitrary operation sequences.

use apm_core::keyspace::record_for_seq;
use apm_core::record::{FieldValues, MetricKey};
use apm_storage::btree::{BTree, BTreeConfig};
use apm_storage::hashstore::HashStore;
use apm_storage::lsm::{JobKind, LsmConfig, LsmTree};
use apm_storage::memtable::Memtable;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// An operation against a keyed store.
#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Get(u64),
    Scan(u64, usize),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..key_space).prop_map(Op::Insert),
        2 => (0..key_space).prop_map(Op::Get),
        1 => ((0..key_space), (1usize..60)).prop_map(|(k, l)| Op::Scan(k, l)),
    ]
}

fn key(seq: u64) -> MetricKey {
    record_for_seq(seq).key
}

fn value(seq: u64) -> FieldValues {
    record_for_seq(seq).fields
}

/// Drives announced LSM jobs to completion immediately.
fn settle(tree: &mut LsmTree, job: Option<apm_storage::lsm::BackgroundJob>) {
    let mut next = job;
    while let Some(j) = next {
        next = match j.kind {
            JobKind::Flush => tree.complete_flush(j.id),
            JobKind::Compaction => tree.complete_compaction(j.id),
        };
    }
}

fn model_scan(model: &BTreeMap<MetricKey, FieldValues>, start: &MetricKey, len: usize) -> Vec<MetricKey> {
    model.range(start..).take(len).map(|(k, _)| *k).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn lsm_matches_sorted_map_model(ops in prop::collection::vec(op_strategy(500), 1..400)) {
        let mut tree = LsmTree::new(LsmConfig { memtable_flush_bytes: 75 * 40, ..LsmConfig::default() });
        let mut model: BTreeMap<MetricKey, FieldValues> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(seq) => {
                    let (_, job) = tree.insert(key(seq), value(seq));
                    settle(&mut tree, job);
                    model.insert(key(seq), value(seq));
                }
                Op::Get(seq) => {
                    let (got, _) = tree.get(&key(seq));
                    prop_assert_eq!(got.as_ref(), model.get(&key(seq)), "get({}) diverged", seq);
                }
                Op::Scan(seq, len) => {
                    let (rows, _) = tree.scan(&key(seq), len);
                    let got: Vec<MetricKey> = rows.iter().map(|(k, _)| *k).collect();
                    prop_assert_eq!(got, model_scan(&model, &key(seq), len), "scan({}, {}) diverged", seq, len);
                }
            }
        }
        // Re-inserted keys keep an extra version per unmerged run, so the
        // physical count may exceed the logical count until compaction.
        prop_assert!(tree.record_count() >= model.len() as u64, "records lost");
    }

    #[test]
    fn btree_matches_sorted_map_model(ops in prop::collection::vec(op_strategy(500), 1..400)) {
        let mut tree = BTree::new(BTreeConfig { leaf_capacity: 6, internal_capacity: 5, page_bytes: 512 });
        let mut model: BTreeMap<MetricKey, FieldValues> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(seq) => {
                    tree.insert(key(seq), value(seq));
                    model.insert(key(seq), value(seq));
                }
                Op::Get(seq) => {
                    let (got, trace) = tree.get(&key(seq));
                    prop_assert_eq!(got.as_ref(), model.get(&key(seq)));
                    prop_assert_eq!(trace.read.len(), tree.depth() as usize, "descent must visit depth pages");
                }
                Op::Scan(seq, len) => {
                    let (rows, _) = tree.scan(&key(seq), len);
                    let got: Vec<MetricKey> = rows.iter().map(|(k, _)| *k).collect();
                    prop_assert_eq!(got, model_scan(&model, &key(seq), len));
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len() as u64);
    }

    #[test]
    fn hashstore_matches_model_and_memory_is_exact(ops in prop::collection::vec(op_strategy(300), 1..300)) {
        let mut store = HashStore::new(None);
        let mut model: BTreeMap<MetricKey, FieldValues> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(seq) => {
                    store.insert(key(seq), value(seq)).expect("no budget");
                    model.insert(key(seq), value(seq));
                }
                Op::Get(seq) => {
                    let (got, _) = store.get(&key(seq));
                    prop_assert_eq!(got.as_ref(), model.get(&key(seq)));
                }
                Op::Scan(seq, len) => {
                    let (rows, _) = store.scan(&key(seq), len);
                    let got: Vec<MetricKey> = rows.iter().map(|(k, _)| *k).collect();
                    prop_assert_eq!(got, model_scan(&model, &key(seq), len));
                }
            }
        }
        prop_assert_eq!(store.len(), model.len());
        prop_assert_eq!(store.mem_bytes(), model.len() as u64 * HashStore::bytes_per_record());
    }

    #[test]
    fn memtable_drain_returns_exactly_the_live_set(seqs in prop::collection::vec(0u64..200, 1..300)) {
        let mut memtable = Memtable::new();
        let mut model: BTreeMap<MetricKey, FieldValues> = BTreeMap::new();
        for seq in seqs {
            memtable.insert(key(seq), value(seq));
            model.insert(key(seq), value(seq));
        }
        prop_assert_eq!(memtable.bytes(), model.len() as u64 * 75);
        let drained = memtable.drain_sorted();
        let expect: Vec<(MetricKey, FieldValues)> = model.into_iter().collect();
        prop_assert_eq!(drained, expect);
    }

    #[test]
    fn lsm_scans_never_return_duplicates_or_unsorted_keys(
        inserts in prop::collection::vec(0u64..2_000, 50..500),
        start in 0u64..2_000,
    ) {
        let mut tree = LsmTree::new(LsmConfig { memtable_flush_bytes: 75 * 25, ..LsmConfig::default() });
        for seq in inserts {
            let (_, job) = tree.insert(key(seq), value(seq));
            settle(&mut tree, job);
        }
        let (rows, _) = tree.scan(&key(start), 50);
        for w in rows.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "scan output not strictly sorted");
        }
        prop_assert!(rows.len() <= 50);
        prop_assert!(rows.iter().all(|(k, _)| *k >= key(start)));
    }

    #[test]
    fn bloom_has_no_false_negatives(seqs in prop::collection::vec(0u64..100_000, 1..500)) {
        let mut bloom = apm_storage::bloom::Bloom::with_capacity(seqs.len(), 10);
        for &seq in &seqs {
            bloom.insert(&key(seq));
        }
        for &seq in &seqs {
            prop_assert!(bloom.may_contain(&key(seq)));
        }
    }
}
