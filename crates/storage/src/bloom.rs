//! Bloom filters for SSTable lookups.
//!
//! LSM reads consult every sorted run that might contain the key; bloom
//! filters make misses cheap. This is a standard double-hashing filter
//! (Kirsch–Mitzenmacher): `k` probe positions derived from two 64-bit
//! FNV-style hashes of the key bytes.

use apm_core::record::MetricKey;
use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};

/// A fixed-size bloom filter keyed by [`MetricKey`].
#[derive(Clone, Debug)]
pub struct Bloom {
    bits: Vec<u64>,
    mask: u64,
    k: u32,
    inserted: u64,
}

fn hash_pair(key: &MetricKey) -> (u64, u64) {
    // Two independent FNV-1a streams over the key bytes.
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x9ddf_ea08_eb38_2d69;
    for &b in key.as_bytes() {
        h1 = (h1 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        h2 = (h2 ^ u64::from(b)).wrapping_mul(0xff51_afd7_ed55_8ccd);
        h2 ^= h2 >> 33;
    }
    (h1, h2)
}

impl Bloom {
    /// Builds a filter sized for `expected_keys` at `bits_per_key`
    /// (Cassandra/HBase default ≈ 10 bits/key → ~1 % false positives).
    pub fn with_capacity(expected_keys: usize, bits_per_key: usize) -> Bloom {
        let bits = (expected_keys.max(1) * bits_per_key.max(1))
            .next_power_of_two()
            .max(64);
        let k = ((bits_per_key as f64) * std::f64::consts::LN_2)
            .round()
            .max(1.0) as u32;
        Bloom {
            bits: vec![0; bits / 64],
            mask: bits as u64 - 1,
            k,
            inserted: 0,
        }
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &MetricKey) {
        let (h1, h2) = hash_pair(key);
        for i in 0..self.k {
            let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) & self.mask;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Tests membership. False positives possible, false negatives not.
    pub fn may_contain(&self, key: &MetricKey) -> bool {
        let (h1, h2) = hash_pair(key);
        (0..self.k).all(|i| {
            let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) & self.mask;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Number of keys inserted.
    pub fn len(&self) -> u64 {
        self.inserted
    }

    /// True when nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Size of the filter in bytes (contributes to SSTable disk size).
    pub fn size_bytes(&self) -> u64 {
        self.bits.len() as u64 * 8
    }
}

impl Snap for Bloom {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.bits);
        w.put_u64(self.mask);
        w.put_u32(self.k);
        w.put_u64(self.inserted);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        let bits: Vec<u64> = r.get()?;
        let mask = r.u64()?;
        if bits.len() as u64 * 64 != mask + 1 {
            return Err(SnapError::BadTag {
                what: "Bloom mask",
                tag: mask,
            });
        }
        Ok(Bloom {
            bits,
            mask,
            k: r.u32()?,
            inserted: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apm_core::keyspace::key_for_seq;

    #[test]
    fn no_false_negatives() {
        let mut bloom = Bloom::with_capacity(10_000, 10);
        for seq in 0..10_000 {
            bloom.insert(&key_for_seq(seq));
        }
        for seq in 0..10_000 {
            assert!(
                bloom.may_contain(&key_for_seq(seq)),
                "false negative at {seq}"
            );
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut bloom = Bloom::with_capacity(10_000, 10);
        for seq in 0..10_000 {
            bloom.insert(&key_for_seq(seq));
        }
        let fp = (10_000..110_000)
            .filter(|&seq| bloom.may_contain(&key_for_seq(seq)))
            .count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bloom = Bloom::with_capacity(100, 10);
        assert!(bloom.is_empty());
        assert!(!bloom.may_contain(&key_for_seq(1)));
    }

    #[test]
    fn size_scales_with_capacity() {
        let small = Bloom::with_capacity(100, 10);
        let large = Bloom::with_capacity(100_000, 10);
        assert!(large.size_bytes() > small.size_bytes());
        // ~10 bits/key rounded up to a power of two.
        assert!(large.size_bytes() >= 100_000 * 10 / 8);
    }
}
