//! # apm-storage
//!
//! Real single-node storage engine substrates for the six store
//! architectures benchmarked by the paper:
//!
//! - [`lsm`]: a log-structured merge tree (memtable → immutable sorted
//!   runs with bloom filters, size-tiered compaction) — the write path of
//!   Cassandra and HBase.
//! - [`btree`] + [`bufferpool`]: a page-based B+tree over a buffer pool
//!   with clock eviction — InnoDB (MySQL) and BerkeleyDB (the Voldemort
//!   backend).
//! - [`hashstore`]: an in-memory hash table with an ordered index and a
//!   byte-accurate memory budget — Redis.
//! - [`partition`]: a serially-executed partition table — a VoltDB site.
//! - [`wal`]: commit-log cost model with group-commit windows.
//!
//! Engines do *real* work on real data structures; each mutating or
//! reading call also returns a [`receipt::CostReceipt`] describing the
//! physical footprint (CPU work units, disk reads/writes with sizes and
//! access patterns) which `apm-stores` converts into simulator plans. That
//! split keeps the engines testable in isolation and keeps simulated time
//! out of the data path.

pub mod bloom;
pub mod btree;
pub mod bufferpool;
pub mod encoding;
pub mod hashstore;
pub mod lsm;
pub mod memtable;
pub mod partition;
pub mod receipt;
pub mod sstable;
pub mod wal;

pub use receipt::{CostReceipt, DiskIo, IoClass};
