//! Immutable sorted runs (SSTables / HFiles).
//!
//! A run is a sorted vector of records plus a bloom filter and an implicit
//! block index: lookups binary-search the vector (real work) and report
//! the block read that a disk-resident file would need. Runs are produced
//! by memtable flushes and merged by compaction.

use crate::bloom::Bloom;
use crate::receipt::{CostReceipt, DiskIo};
use apm_core::record::{FieldValues, MetricKey, RAW_RECORD_SIZE};
use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};

/// Result of probing one SSTable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableProbe {
    /// The bloom filter excluded the key — no disk access needed.
    BloomNegative,
    /// The key might be present; a block was (logically) read.
    Checked(Option<FieldValues>),
}

/// An immutable sorted run.
#[derive(Clone, Debug)]
pub struct SsTable {
    /// Unique id (monotone per tree; newer tables have higher ids).
    pub id: u64,
    entries: Vec<(MetricKey, FieldValues)>,
    bloom: Bloom,
    /// Data block size used for I/O accounting (Cassandra/HBase: 64 KB).
    block_bytes: u64,
}

impl SsTable {
    /// Builds a table from sorted entries.
    ///
    /// # Panics
    /// Panics (debug) if `entries` are not strictly sorted by key.
    pub fn from_sorted(
        id: u64,
        entries: Vec<(MetricKey, FieldValues)>,
        block_bytes: u64,
        bloom_bits_per_key: usize,
    ) -> SsTable {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be strictly sorted"
        );
        let mut bloom = Bloom::with_capacity(entries.len(), bloom_bits_per_key);
        for (key, _) in &entries {
            bloom.insert(key);
        }
        SsTable {
            id,
            entries,
            bloom,
            block_bytes,
        }
    }

    /// Merges several tables (newest first) into one. Newer values win on
    /// key collisions. Returns the merged table.
    pub fn merge(
        id: u64,
        inputs: &[&SsTable],
        block_bytes: u64,
        bloom_bits_per_key: usize,
    ) -> SsTable {
        // K-way merge via collect-then-dedup: inputs are sorted, but a
        // simple concatenation + stable sort keeps the code obvious and is
        // O(n log n) on real data the benchmark sizes reach.
        let mut all: Vec<(u64, MetricKey, FieldValues)> =
            Vec::with_capacity(inputs.iter().map(|t| t.entries.len()).sum());
        for table in inputs {
            for (k, v) in &table.entries {
                all.push((table.id, *k, *v));
            }
        }
        // Sort by key, then by table id descending so the newest version
        // of a key comes first and survives the dedup.
        all.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
        all.dedup_by(|next, first| next.1 == first.1);
        let entries: Vec<(MetricKey, FieldValues)> =
            all.into_iter().map(|(_, k, v)| (k, v)).collect();
        SsTable::from_sorted(id, entries, block_bytes, bloom_bits_per_key)
    }

    /// Probes for a key, reporting physical cost into `receipt`.
    pub fn get(&self, key: &MetricKey, receipt: &mut CostReceipt) -> TableProbe {
        receipt.probe(1); // bloom check + index lookup
        if !self.bloom.may_contain(key) {
            return TableProbe::BloomNegative;
        }
        receipt.add_io(DiskIo::random_read(self.block_bytes));
        match self.entries.binary_search_by(|(k, _)| k.cmp(key)) {
            Ok(i) => {
                receipt.touch(RAW_RECORD_SIZE as u64);
                TableProbe::Checked(Some(self.entries[i].1))
            }
            Err(_) => TableProbe::Checked(None), // bloom false positive
        }
    }

    /// Collects up to `len` records at or after `start`, reporting cost.
    pub fn scan(
        &self,
        start: &MetricKey,
        len: usize,
        receipt: &mut CostReceipt,
        out: &mut Vec<(MetricKey, FieldValues)>,
    ) {
        receipt.probe(1);
        let from = match self.entries.binary_search_by(|(k, _)| k.cmp(start)) {
            Ok(i) | Err(i) => i,
        };
        let slice = &self.entries[from..self.entries.len().min(from + len)];
        if slice.is_empty() {
            return;
        }
        // One positioning access, then sequential blocks.
        let bytes = (slice.len() * RAW_RECORD_SIZE) as u64;
        receipt.add_io(DiskIo::random_read(self.block_bytes));
        if bytes > self.block_bytes {
            receipt.add_io(DiskIo::seq_read(bytes - self.block_bytes));
        }
        receipt.touch(bytes);
        out.extend_from_slice(slice);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Raw payload bytes (75 × records).
    pub fn raw_bytes(&self) -> u64 {
        (self.entries.len() * RAW_RECORD_SIZE) as u64
    }

    /// On-disk size including bloom filter and index overhead.
    pub fn disk_bytes(&self) -> u64 {
        self.raw_bytes() + self.bloom.size_bytes() + (self.entries.len() as u64 / 128 + 1) * 32
    }

    /// Smallest and largest key, or `None` when empty.
    pub fn key_range(&self) -> Option<(MetricKey, MetricKey)> {
        match (self.entries.first(), self.entries.last()) {
            (Some((lo, _)), Some((hi, _))) => Some((*lo, *hi)),
            _ => None,
        }
    }
}

impl Snap for SsTable {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.id);
        w.put(&self.entries);
        w.put(&self.bloom);
        w.put_u64(self.block_bytes);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(SsTable {
            id: r.u64()?,
            entries: r.get()?,
            bloom: r.get()?,
            block_bytes: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apm_core::keyspace::record_for_seq;

    fn build(id: u64, seqs: impl Iterator<Item = u64>) -> SsTable {
        let mut entries: Vec<(MetricKey, FieldValues)> = seqs
            .map(|s| {
                let r = record_for_seq(s);
                (r.key, r.fields)
            })
            .collect();
        entries.sort_by_key(|(k, _)| *k);
        SsTable::from_sorted(id, entries, 65_536, 10)
    }

    #[test]
    fn get_finds_present_keys_with_one_block_read() {
        let table = build(1, 0..1000);
        let target = record_for_seq(500);
        let mut receipt = CostReceipt::new();
        match table.get(&target.key, &mut receipt) {
            TableProbe::Checked(Some(v)) => assert_eq!(v, target.fields),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(receipt.read_ios(), 1);
        assert_eq!(receipt.io_bytes(), 65_536);
    }

    #[test]
    fn bloom_negative_avoids_io() {
        let table = build(1, 0..1000);
        let mut negatives = 0;
        let mut receipt = CostReceipt::new();
        for seq in 1000..2000 {
            if table.get(&record_for_seq(seq).key, &mut receipt) == TableProbe::BloomNegative {
                negatives += 1;
            }
        }
        assert!(
            negatives > 950,
            "bloom should exclude most absent keys: {negatives}"
        );
        assert!(receipt.read_ios() < 50, "false positives should be rare");
    }

    #[test]
    fn scan_returns_contiguous_sorted_records() {
        let table = build(1, 0..1000);
        let mut keys: Vec<MetricKey> = (0..1000).map(|s| record_for_seq(s).key).collect();
        keys.sort();
        let mut out = Vec::new();
        let mut receipt = CostReceipt::new();
        table.scan(&keys[100], 50, &mut receipt, &mut out);
        assert_eq!(out.len(), 50);
        assert_eq!(out[0].0, keys[100]);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(
            receipt.io_bytes() >= 50 * 75,
            "scan must account transferred bytes"
        );
    }

    #[test]
    fn scan_at_end_returns_partial_window() {
        let table = build(1, 0..100);
        let mut keys: Vec<MetricKey> = (0..100).map(|s| record_for_seq(s).key).collect();
        keys.sort();
        let mut out = Vec::new();
        let mut receipt = CostReceipt::new();
        table.scan(&keys[95], 50, &mut receipt, &mut out);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn merge_prefers_newer_tables_on_collision() {
        // Table 2 (newer) overwrites seq 0..50 with different payloads:
        // we simulate by building table 2 whose values come from seq+10_000
        // but keys from seq — easiest is to merge overlapping key sets and
        // check count, then spot-check precedence via distinct tables.
        let old = build(1, 0..100);
        let new = build(2, 50..150);
        let merged = SsTable::merge(3, &[&new, &old], 65_536, 10);
        assert_eq!(merged.len(), 150, "overlap must be deduplicated");
        let mut receipt = CostReceipt::new();
        let probe = merged.get(&record_for_seq(75).key, &mut receipt);
        assert!(matches!(probe, TableProbe::Checked(Some(_))));
    }

    #[test]
    fn merge_precedence_is_by_table_id() {
        use apm_core::record::FieldValues;
        let key = record_for_seq(7).key;
        let v_old = FieldValues::from_seed(111);
        let v_new = FieldValues::from_seed(222);
        let old = SsTable::from_sorted(1, vec![(key, v_old)], 65_536, 10);
        let new = SsTable::from_sorted(2, vec![(key, v_new)], 65_536, 10);
        let merged = SsTable::merge(3, &[&old, &new], 65_536, 10);
        let mut receipt = CostReceipt::new();
        match merged.get(&key, &mut receipt) {
            TableProbe::Checked(Some(v)) => assert_eq!(v, v_new, "newer table id must win"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn disk_bytes_exceed_raw_bytes() {
        let table = build(1, 0..1000);
        assert_eq!(table.raw_bytes(), 75_000);
        assert!(table.disk_bytes() > table.raw_bytes());
    }

    #[test]
    fn key_range_brackets_contents() {
        let table = build(1, 0..100);
        let (lo, hi) = table.key_range().unwrap();
        assert!(lo < hi);
        assert!(build(9, 0..0).key_range().is_none());
    }
}
