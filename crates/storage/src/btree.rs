//! A page-based B+tree.
//!
//! The engine behind the MySQL-like store (InnoDB's clustered index) and
//! the Voldemort-like store (BerkeleyDB's per-node B-tree). Nodes are
//! pages in an arena; every operation returns the list of pages it
//! visited (and dirtied), which the caller replays through a
//! [`crate::bufferpool::BufferPool`] to decide which accesses become disk
//! I/O. Leaves are chained for range scans.

use crate::bufferpool::PageId;
use apm_core::record::{FieldValues, MetricKey};
use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};

/// Tree shape parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BTreeConfig {
    /// Max records per leaf page (16 KB InnoDB page / ~100 B record ≈ 150).
    pub leaf_capacity: usize,
    /// Max children per internal page.
    pub internal_capacity: usize,
    /// Page size in bytes, for I/O accounting.
    pub page_bytes: u64,
}

impl Default for BTreeConfig {
    fn default() -> Self {
        BTreeConfig {
            leaf_capacity: 150,
            internal_capacity: 400,
            page_bytes: 16 << 10,
        }
    }
}

/// Pages touched by an operation, in visit order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PageTrace {
    /// Pages read on the way down.
    pub read: Vec<PageId>,
    /// Existing pages modified (must be resident: read-if-absent, then
    /// dirtied).
    pub written: Vec<PageId>,
    /// Pages freshly created by splits: dirtied but never read from disk.
    pub allocated: Vec<PageId>,
}

#[derive(Clone, Debug)]
enum Node {
    Internal {
        keys: Vec<MetricKey>,
        children: Vec<usize>,
    },
    Leaf {
        entries: Vec<(MetricKey, FieldValues)>,
        next: Option<usize>,
    },
}

/// The B+tree.
#[derive(Clone, Debug)]
pub struct BTree {
    /// Construction-time config; not part of the snapshot stream.
    config: BTreeConfig, // audit:allow(snap-drift)
    nodes: Vec<Node>,
    root: usize,
    len: u64,
    depth: u32,
}

impl BTree {
    /// Creates an empty tree.
    pub fn new(config: BTreeConfig) -> BTree {
        assert!(
            config.leaf_capacity >= 2 && config.internal_capacity >= 3,
            "degenerate page capacities"
        );
        BTree {
            config,
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
                next: None,
            }],
            root: 0,
            len: 0,
            depth: 1,
        }
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = a single leaf).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of pages (nodes) allocated.
    pub fn page_count(&self) -> u64 {
        self.nodes.len() as u64
    }

    /// Total on-disk footprint in bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.page_count() * self.config.page_bytes
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.config.page_bytes
    }

    fn leaf_for(&self, key: &MetricKey, trace: &mut PageTrace) -> usize {
        let mut idx = self.root;
        loop {
            trace.read.push(PageId(idx as u64));
            match &self.nodes[idx] {
                Node::Internal { keys, children } => {
                    let slot = keys.partition_point(|k| k <= key);
                    idx = children[slot];
                }
                Node::Leaf { .. } => return idx,
            }
        }
    }

    /// Point lookup. Returns the value and the page trace.
    pub fn get(&self, key: &MetricKey) -> (Option<FieldValues>, PageTrace) {
        let mut trace = PageTrace::default();
        let leaf = self.leaf_for(key, &mut trace);
        let Node::Leaf { entries, .. } = &self.nodes[leaf] else {
            unreachable!()
        };
        let value = entries
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| entries[i].1);
        (value, trace)
    }

    /// Inserts or replaces. Returns whether the key was new plus the trace
    /// (split pages appear in `written`).
    pub fn insert(&mut self, key: MetricKey, value: FieldValues) -> (bool, PageTrace) {
        let mut trace = PageTrace::default();
        let leaf = self.leaf_for(&key, &mut trace);
        trace.written.push(PageId(leaf as u64));
        let Node::Leaf { entries, .. } = &mut self.nodes[leaf] else {
            unreachable!()
        };
        let new = match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => {
                entries[i].1 = value;
                false
            }
            Err(i) => {
                entries.insert(i, (key, value));
                self.len += 1;
                true
            }
        };
        if match &self.nodes[leaf] {
            Node::Leaf { entries, .. } => entries.len() > self.config.leaf_capacity,
            Node::Internal { .. } => unreachable!(),
        } {
            self.split(leaf, &mut trace);
        }
        (new, trace)
    }

    /// Splits an over-full node, recursing up through its ancestors. The
    /// parent chain is re-derived by key because nodes carry no parent
    /// pointers (pages don't in InnoDB either; it uses a latched descent).
    fn split(&mut self, node_idx: usize, trace: &mut PageTrace) {
        let (sep, right_idx) = match &mut self.nodes[node_idx] {
            Node::Leaf { entries, next } => {
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0;
                let right = Node::Leaf {
                    entries: right_entries,
                    next: *next,
                };
                let right_idx = self.nodes.len();
                self.nodes.push(right);
                if let Node::Leaf { next, .. } = &mut self.nodes[node_idx] {
                    *next = Some(right_idx);
                }
                (sep, right_idx)
            }
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let sep = keys[mid];
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // the separator moves up
                let right_children = children.split_off(mid + 1);
                let right = Node::Internal {
                    keys: right_keys,
                    children: right_children,
                };
                let right_idx = self.nodes.len();
                self.nodes.push(right);
                (sep, right_idx)
            }
        };
        trace.allocated.push(PageId(right_idx as u64));
        if node_idx == self.root {
            let new_root = Node::Internal {
                keys: vec![sep],
                children: vec![node_idx, right_idx],
            };
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
            self.depth += 1;
            trace.allocated.push(PageId(self.root as u64));
            return;
        }
        // Find the parent of node_idx by descending towards `sep`.
        let parent_idx = self
            .find_parent(self.root, node_idx, &sep)
            .expect("non-root node has a parent");
        trace.written.push(PageId(parent_idx as u64));
        let overfull = {
            let Node::Internal { keys, children } = &mut self.nodes[parent_idx] else {
                unreachable!()
            };
            let slot = keys.partition_point(|k| *k <= sep);
            keys.insert(slot, sep);
            children.insert(slot + 1, right_idx);
            children.len() > self.config.internal_capacity
        };
        if overfull {
            self.split(parent_idx, trace);
        }
    }

    fn find_parent(&self, from: usize, target: usize, hint: &MetricKey) -> Option<usize> {
        match &self.nodes[from] {
            Node::Leaf { .. } => None,
            Node::Internal { keys, children } => {
                if children.contains(&target) {
                    return Some(from);
                }
                let slot = keys.partition_point(|k| k <= hint);
                self.find_parent(children[slot], target, hint)
            }
        }
    }

    /// Range scan of up to `len` records from `start`, following leaf links.
    pub fn scan(
        &self,
        start: &MetricKey,
        len: usize,
    ) -> (Vec<(MetricKey, FieldValues)>, PageTrace) {
        let mut trace = PageTrace::default();
        let mut leaf = self.leaf_for(start, &mut trace);
        let mut out = Vec::with_capacity(len);
        loop {
            let Node::Leaf { entries, next } = &self.nodes[leaf] else {
                unreachable!()
            };
            let from = entries.partition_point(|(k, _)| k < start);
            for (k, v) in &entries[from..] {
                if out.len() == len {
                    return (out, trace);
                }
                out.push((*k, *v));
            }
            match next {
                Some(n) if out.len() < len => {
                    leaf = *n;
                    trace.read.push(PageId(leaf as u64));
                }
                _ => return (out, trace),
            }
        }
    }

    /// Serializes the page arena and tree shape (the config is re-supplied
    /// at construction).
    pub fn snap_state(&self, w: &mut SnapWriter) {
        w.put(&self.nodes);
        w.put(&self.root);
        w.put_u64(self.len);
        w.put_u32(self.depth);
    }

    /// Restores the state written by [`BTree::snap_state`] into a tree
    /// built with the same config.
    pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let nodes: Vec<Node> = r.get()?;
        let root: usize = r.get()?;
        if nodes.is_empty() || root >= nodes.len() {
            return Err(SnapError::BadTag {
                what: "BTree root",
                tag: root as u64,
            });
        }
        self.nodes = nodes;
        self.root = root;
        self.len = r.u64()?;
        self.depth = r.u32()?;
        Ok(())
    }
}

impl Snap for Node {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Node::Internal { keys, children } => {
                w.put_u8(0);
                w.put(keys);
                w.put(children);
            }
            Node::Leaf { entries, next } => {
                w.put_u8(1);
                w.put(entries);
                w.put(next);
            }
        }
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Node::Internal {
                keys: r.get()?,
                children: r.get()?,
            }),
            1 => Ok(Node::Leaf {
                entries: r.get()?,
                next: r.get()?,
            }),
            tag => Err(SnapError::BadTag {
                what: "BTree node",
                tag: u64::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apm_core::keyspace::record_for_seq;

    fn tiny() -> BTreeConfig {
        BTreeConfig {
            leaf_capacity: 8,
            internal_capacity: 8,
            page_bytes: 1 << 10,
        }
    }

    fn load(tree: &mut BTree, seqs: std::ops::Range<u64>) {
        for seq in seqs {
            let r = record_for_seq(seq);
            tree.insert(r.key, r.fields);
        }
    }

    #[test]
    fn insert_get_roundtrip_across_splits() {
        let mut tree = BTree::new(tiny());
        load(&mut tree, 0..2_000);
        assert_eq!(tree.len(), 2_000);
        assert!(tree.depth() >= 3, "tiny pages must force a deep tree");
        for seq in (0..2_000).step_by(97) {
            let r = record_for_seq(seq);
            assert_eq!(tree.get(&r.key).0, Some(r.fields), "seq {seq} lost");
        }
        assert_eq!(tree.get(&record_for_seq(9_999).key).0, None);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut tree = BTree::new(tiny());
        let key = record_for_seq(1).key;
        let v1 = record_for_seq(10).fields;
        let v2 = record_for_seq(20).fields;
        let (new1, _) = tree.insert(key, v1);
        let (new2, _) = tree.insert(key, v2);
        assert!(new1 && !new2);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.get(&key).0, Some(v2));
    }

    #[test]
    fn trace_depth_matches_tree_depth() {
        let mut tree = BTree::new(tiny());
        load(&mut tree, 0..2_000);
        let (_, trace) = tree.get(&record_for_seq(100).key);
        assert_eq!(trace.read.len(), tree.depth() as usize);
    }

    #[test]
    fn insert_trace_includes_dirtied_leaf() {
        let mut tree = BTree::new(tiny());
        let r = record_for_seq(0);
        let (_, trace) = tree.insert(r.key, r.fields);
        assert_eq!(trace.written.len(), 1);
        assert_eq!(trace.read.len(), 1);
    }

    #[test]
    fn scan_is_sorted_and_complete() {
        let mut tree = BTree::new(tiny());
        load(&mut tree, 0..1_000);
        let mut keys: Vec<MetricKey> = (0..1_000).map(|s| record_for_seq(s).key).collect();
        keys.sort();
        let (result, trace) = tree.scan(&keys[200], 50);
        let got: Vec<MetricKey> = result.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, keys[200..250].to_vec());
        // A 50-record scan over 8-entry leaves crosses several leaves.
        assert!(
            trace.read.len() > 5,
            "leaf chain not followed: {}",
            trace.read.len()
        );
    }

    #[test]
    fn scan_from_before_first_and_past_last() {
        let mut tree = BTree::new(tiny());
        load(&mut tree, 0..100);
        let (all, _) = tree.scan(&MetricKey::MIN, 1_000);
        assert_eq!(all.len(), 100);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        let (none, _) = tree.scan(&MetricKey::MAX, 10);
        assert!(none.len() <= 1);
    }

    #[test]
    fn page_count_and_disk_bytes_grow() {
        let mut tree = BTree::new(tiny());
        let before = tree.page_count();
        load(&mut tree, 0..1_000);
        assert!(tree.page_count() > before);
        assert_eq!(tree.disk_bytes(), tree.page_count() * 1_024);
    }

    #[test]
    fn default_config_packs_many_records_per_leaf() {
        let mut tree = BTree::new(BTreeConfig::default());
        load(&mut tree, 0..10_000);
        // 10_000 records / 150 per leaf ≈ 67 leaves (+ internals).
        assert!(tree.page_count() < 200, "pages: {}", tree.page_count());
        assert!(tree.depth() <= 3);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_config_panics() {
        BTree::new(BTreeConfig {
            leaf_capacity: 1,
            internal_capacity: 2,
            page_bytes: 1,
        });
    }
}
