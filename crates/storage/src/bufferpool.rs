//! A page buffer pool with clock (second-chance) eviction.
//!
//! The MySQL- and Voldemort-like stores run their B-trees through this
//! pool: a page access either hits (CPU only) or misses (random read,
//! possibly preceded by a dirty write-back). On Cluster M the pool holds
//! the whole working set; on Cluster D (4 GB RAM, 10.5 GB data) it
//! thrashes — which is exactly the regime change the paper's §5.8 shows.

use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::collections::HashMap;

/// Identifies a page (the B-tree uses node ids as page ids).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Kind of page access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Read the page.
    Read,
    /// Read and dirty the page.
    Write,
}

/// Outcome of one page access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolResult {
    /// True when the page was already resident.
    pub hit: bool,
    /// A dirty page that had to be written back to make room.
    pub writeback: Option<PageId>,
}

/// Cumulative pool statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub dirty_writebacks: u64,
}

impl PoolStats {
    /// Hit fraction in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Frame {
    page: PageId,
    referenced: bool,
    dirty: bool,
}

/// The buffer pool.
#[derive(Clone, Debug)]
pub struct BufferPool {
    /// Construction-time config; restore only validates against it.
    capacity: usize, // audit:allow(snap-drift)
    frames: Vec<Frame>,
    /// Derived index; rebuilt from `frames` on restore.
    map: HashMap<PageId, usize>, // audit:allow(snap-drift)
    hand: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// Creates a pool holding up to `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: Vec::with_capacity(capacity.min(1 << 20)),
            map: HashMap::new(),
            hand: 0,
            stats: PoolStats::default(),
        }
    }

    /// Accesses `page`, running clock eviction on a miss.
    pub fn access(&mut self, page: PageId, access: Access) -> PoolResult {
        if let Some(&idx) = self.map.get(&page) {
            self.stats.hits += 1;
            let frame = &mut self.frames[idx];
            frame.referenced = true;
            if access == Access::Write {
                frame.dirty = true;
            }
            return PoolResult {
                hit: true,
                writeback: None,
            };
        }
        self.stats.misses += 1;
        let dirty = access == Access::Write;
        if self.frames.len() < self.capacity {
            let idx = self.frames.len();
            self.frames.push(Frame {
                page,
                referenced: true,
                dirty,
            });
            self.map.insert(page, idx);
            return PoolResult {
                hit: false,
                writeback: None,
            };
        }
        // Clock sweep: clear reference bits until a victim is found.
        let victim_idx = loop {
            let frame = &mut self.frames[self.hand];
            if frame.referenced {
                frame.referenced = false;
                self.hand = (self.hand + 1) % self.capacity;
            } else {
                break self.hand;
            }
        };
        let victim = self.frames[victim_idx];
        self.map.remove(&victim.page);
        self.stats.evictions += 1;
        let writeback = if victim.dirty {
            self.stats.dirty_writebacks += 1;
            Some(victim.page)
        } else {
            None
        };
        self.frames[victim_idx] = Frame {
            page,
            referenced: true,
            dirty,
        };
        self.map.insert(page, victim_idx);
        self.hand = (victim_idx + 1) % self.capacity;
        PoolResult {
            hit: false,
            writeback,
        }
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Serializes the frame table, clock hand, and stats (the capacity is
    /// re-supplied at construction; the page map is rebuilt on restore).
    pub fn snap_state(&self, w: &mut SnapWriter) {
        w.put(&self.frames);
        w.put(&self.hand);
        w.put(&self.stats);
    }

    /// Restores the state written by [`BufferPool::snap_state`] into a
    /// pool built with the same capacity.
    pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let frames: Vec<Frame> = r.get()?;
        let hand: usize = r.get()?;
        if frames.len() > self.capacity || (hand != 0 && hand >= self.capacity) {
            return Err(SnapError::BadTag {
                what: "BufferPool frames",
                tag: frames.len() as u64,
            });
        }
        self.map = frames
            .iter()
            .enumerate()
            .map(|(i, f)| (f.page, i))
            .collect();
        self.frames = frames;
        self.hand = hand;
        self.stats = r.get()?;
        Ok(())
    }
}

impl Snap for PageId {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(PageId(r.u64()?))
    }
}

impl Snap for PoolStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.evictions);
        w.put_u64(self.dirty_writebacks);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(PoolStats {
            hits: r.u64()?,
            misses: r.u64()?,
            evictions: r.u64()?,
            dirty_writebacks: r.u64()?,
        })
    }
}

impl Snap for Frame {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.page);
        w.put(&self.referenced);
        w.put(&self.dirty);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Frame {
            page: r.get()?,
            referenced: r.get()?,
            dirty: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut pool = BufferPool::new(4);
        assert!(!pool.access(PageId(1), Access::Read).hit);
        assert!(pool.access(PageId(1), Access::Read).hit);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn fits_in_capacity_without_eviction() {
        let mut pool = BufferPool::new(8);
        for i in 0..8 {
            pool.access(PageId(i), Access::Read);
        }
        for i in 0..8 {
            assert!(
                pool.access(PageId(i), Access::Read).hit,
                "page {i} evicted prematurely"
            );
        }
        assert_eq!(pool.stats().evictions, 0);
    }

    #[test]
    fn overflow_evicts_and_reports_dirty_writebacks() {
        let mut pool = BufferPool::new(2);
        pool.access(PageId(1), Access::Write);
        pool.access(PageId(2), Access::Read);
        // Third page must evict one of the first two.
        let r3 = pool.access(PageId(3), Access::Read);
        assert!(!r3.hit);
        assert_eq!(pool.stats().evictions, 1);
        // Keep streaming reads; the dirty page must wash out eventually.
        let mut writebacks = usize::from(r3.writeback.is_some());
        for i in 4..20 {
            if pool.access(PageId(i), Access::Read).writeback.is_some() {
                writebacks += 1;
            }
        }
        assert!(writebacks >= 1, "dirty page never written back");
        assert_eq!(pool.stats().dirty_writebacks as usize, writebacks);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut pool = BufferPool::new(3);
        pool.access(PageId(1), Access::Read);
        pool.access(PageId(2), Access::Read);
        pool.access(PageId(3), Access::Read);
        // All bits set: the first eviction sweeps everyone and takes the
        // frame at the hand (page 1), leaving pages 2 and 3 unreferenced.
        pool.access(PageId(4), Access::Read);
        // Re-reference page 3; the next sweep must spare it and take the
        // unreferenced page 2 instead.
        assert!(pool.access(PageId(3), Access::Read).hit);
        pool.access(PageId(5), Access::Read);
        assert!(
            pool.access(PageId(3), Access::Read).hit,
            "referenced page lost its second chance"
        );
        assert!(
            !pool.access(PageId(2), Access::Read).hit,
            "unreferenced page should be the victim"
        );
    }

    #[test]
    fn hit_rate_reflects_thrash() {
        let mut small = BufferPool::new(10);
        for round in 0..3 {
            for i in 0..100 {
                small.access(PageId(i), Access::Read);
            }
            let _ = round;
        }
        assert!(
            small.stats().hit_rate() < 0.1,
            "thrashing pool should mostly miss"
        );
        let mut big = BufferPool::new(200);
        for _ in 0..3 {
            for i in 0..100 {
                big.access(PageId(i), Access::Read);
            }
        }
        assert!(
            big.stats().hit_rate() > 0.6,
            "resident working set should mostly hit"
        );
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        BufferPool::new(0);
    }
}
