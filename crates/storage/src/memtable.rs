//! The in-memory write buffer of an LSM tree.
//!
//! Writes land in a sorted map; when the buffer exceeds its flush
//! threshold the tree freezes it into an immutable sorted run
//! ([`crate::sstable::SsTable`]). The map is real — reads served from the
//! memtable return the actual stored bytes.

use apm_core::record::{FieldValues, MetricKey, RAW_RECORD_SIZE};
use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A sorted in-memory write buffer with byte accounting.
#[derive(Clone, Debug, Default)]
pub struct Memtable {
    entries: BTreeMap<MetricKey, FieldValues>,
    /// Raw payload bytes buffered (75 bytes per distinct record).
    bytes: u64,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Inserts or replaces a record. Returns `true` if the key was new.
    pub fn insert(&mut self, key: MetricKey, value: FieldValues) -> bool {
        let new = self.entries.insert(key, value).is_none();
        if new {
            self.bytes += RAW_RECORD_SIZE as u64;
        }
        new
    }

    /// Point lookup.
    pub fn get(&self, key: &MetricKey) -> Option<&FieldValues> {
        self.entries.get(key)
    }

    /// Iterates at most `len` records starting at `start` in key order.
    pub fn scan<'a>(
        &'a self,
        start: &MetricKey,
        len: usize,
    ) -> impl Iterator<Item = (&'a MetricKey, &'a FieldValues)> + 'a {
        self.entries
            .range((Bound::Included(*start), Bound::Unbounded))
            .take(len)
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Raw payload bytes buffered.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Freezes the buffer: returns the sorted contents and resets.
    pub fn drain_sorted(&mut self) -> Vec<(MetricKey, FieldValues)> {
        self.bytes = 0;
        std::mem::take(&mut self.entries).into_iter().collect()
    }
}

impl Snap for Memtable {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.entries);
        w.put_u64(self.bytes);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Memtable {
            entries: r.get()?,
            bytes: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apm_core::keyspace::record_for_seq;

    fn rec(seq: u64) -> (MetricKey, FieldValues) {
        let r = record_for_seq(seq);
        (r.key, r.fields)
    }

    #[test]
    fn insert_and_get_roundtrip() {
        let mut m = Memtable::new();
        let (k, v) = rec(1);
        assert!(m.insert(k, v));
        assert_eq!(m.get(&k), Some(&v));
        assert_eq!(m.len(), 1);
        assert_eq!(m.bytes(), 75);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut m = Memtable::new();
        let (k, v) = rec(1);
        let v2 = record_for_seq(2).fields;
        assert!(m.insert(k, v));
        assert!(!m.insert(k, v2));
        assert_eq!(m.bytes(), 75);
        assert_eq!(m.get(&k), Some(&v2));
    }

    #[test]
    fn scan_returns_sorted_window_from_start() {
        let mut m = Memtable::new();
        for seq in 0..100 {
            let (k, v) = rec(seq);
            m.insert(k, v);
        }
        let mut keys: Vec<MetricKey> = (0..100).map(|s| rec(s).0).collect();
        keys.sort();
        let start = keys[40];
        let got: Vec<MetricKey> = m.scan(&start, 10).map(|(k, _)| *k).collect();
        assert_eq!(got, keys[40..50].to_vec());
    }

    #[test]
    fn scan_past_the_end_is_short() {
        let mut m = Memtable::new();
        for seq in 0..5 {
            let (k, v) = rec(seq);
            m.insert(k, v);
        }
        assert!(m.scan(&MetricKey::MAX, 10).next().is_none());
        assert_eq!(m.scan(&MetricKey::MIN, 10).count(), 5);
    }

    #[test]
    fn drain_sorted_empties_and_sorts() {
        let mut m = Memtable::new();
        for seq in 0..50 {
            let (k, v) = rec(seq);
            m.insert(k, v);
        }
        let drained = m.drain_sorted();
        assert_eq!(drained.len(), 50);
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }
}
