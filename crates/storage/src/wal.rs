//! Commit-log (write-ahead log) cost model with sync policies.
//!
//! How a store syncs its log dominates its write latency — this is the
//! mechanism behind two of the paper's headline observations:
//!
//! * Cassandra's write latency is *high and stable* (§5.1) because its
//!   periodic commit log syncs every `commit_log_sync_period` (10 ms
//!   default): a write acknowledges after the *group* sync boundary.
//! * HBase's write latency is *very low* (§5.1, Fig 5) because HBase
//!   0.90 deferred WAL flushes: the write returns once the edit is in the
//!   region server's memstore, and the log is synced asynchronously.
//!
//! The log itself is trivial (an append counter); what matters is the
//! receipt: which disk I/O is charged in the foreground, and whether the
//! write must align to a group-commit epoch.

use crate::receipt::DiskIo;
use apm_core::snap::{SnapError, SnapReader, SnapWriter};
use apm_sim::SimDuration;

/// Log sync discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync on every write (InnoDB `innodb_flush_log_at_trx_commit=1`).
    PerWrite,
    /// Writes acknowledge at the next periodic group sync (Cassandra
    /// `periodic` commit log mode).
    GroupCommit {
        /// Group window (Cassandra default 10 ms).
        window: SimDuration,
    },
    /// Writes acknowledge immediately; the log is flushed in the
    /// background (HBase deferred log flush).
    Deferred,
}

/// What a log append costs in the foreground, and what alignment the
/// acknowledging plan must include.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalReceipt {
    /// Foreground disk I/O, if any.
    pub io: Option<DiskIo>,
    /// Group-commit alignment the plan must wait for, if any.
    pub align: Option<SimDuration>,
}

/// An append-only commit log with byte accounting.
#[derive(Clone, Debug)]
pub struct CommitLog {
    /// Construction-time config; not part of the snapshot stream.
    policy: SyncPolicy, // audit:allow(snap-drift)
    /// Per-record log entry overhead (framing, checksum, mutation header).
    entry_overhead: u64, // audit:allow(snap-drift)
    appended_bytes: u64,
    appends: u64,
    /// Bytes accumulated since the last background flush (Deferred mode).
    unflushed: u64,
}

impl CommitLog {
    /// Creates a log with the given sync policy and per-entry overhead.
    pub fn new(policy: SyncPolicy, entry_overhead: u64) -> CommitLog {
        CommitLog {
            policy,
            entry_overhead,
            appended_bytes: 0,
            appends: 0,
            unflushed: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Appends a record of `payload_bytes` and returns the foreground cost.
    pub fn append(&mut self, payload_bytes: u64) -> WalReceipt {
        let entry = payload_bytes + self.entry_overhead;
        self.appended_bytes += entry;
        self.appends += 1;
        match self.policy {
            SyncPolicy::PerWrite => WalReceipt {
                io: Some(DiskIo::seq_write(entry)),
                align: None,
            },
            SyncPolicy::GroupCommit { window } => {
                // The group's sync writes all accumulated entries at the
                // boundary; each writer is charged its own bytes (the sum
                // over the group equals the real sync size) and waits for
                // the boundary.
                WalReceipt {
                    io: Some(DiskIo::seq_write(entry)),
                    align: Some(window),
                }
            }
            SyncPolicy::Deferred => {
                self.unflushed += entry;
                WalReceipt {
                    io: None,
                    align: None,
                }
            }
        }
    }

    /// Bytes currently pending background flush (Deferred mode).
    pub fn unflushed(&self) -> u64 {
        self.unflushed
    }

    /// Takes the bytes pending background flush (Deferred mode); the
    /// caller schedules a background sequential write of this size.
    pub fn take_unflushed(&mut self) -> u64 {
        std::mem::take(&mut self.unflushed)
    }

    /// Total bytes ever appended (contributes to disk usage until the log
    /// is truncated by flushes; we keep it for usage reporting of stores
    /// that retain logs, like MySQL's binlog).
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Number of appends.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Serializes the log counters (the policy and overhead are
    /// re-supplied at construction).
    pub fn snap_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.appended_bytes);
        w.put_u64(self.appends);
        w.put_u64(self.unflushed);
    }

    /// Restores the counters written by [`CommitLog::snap_state`] into a
    /// log built with the same policy.
    pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.appended_bytes = r.u64()?;
        self.appends = r.u64()?;
        self.unflushed = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receipt::IoClass;

    #[test]
    fn per_write_syncs_every_append() {
        let mut log = CommitLog::new(SyncPolicy::PerWrite, 25);
        let r = log.append(75);
        let io = r.io.expect("sync write");
        assert_eq!(io.bytes, 100);
        assert_eq!(io.class, IoClass::SeqWrite);
        assert!(!io.cacheable);
        assert!(r.align.is_none());
    }

    #[test]
    fn group_commit_aligns_to_window() {
        let window = SimDuration::from_millis(10);
        let mut log = CommitLog::new(SyncPolicy::GroupCommit { window }, 0);
        let r = log.append(75);
        assert_eq!(r.align, Some(window));
        assert_eq!(r.io.unwrap().bytes, 75);
    }

    #[test]
    fn deferred_accumulates_for_background_flush() {
        let mut log = CommitLog::new(SyncPolicy::Deferred, 10);
        for _ in 0..5 {
            let r = log.append(75);
            assert!(r.io.is_none(), "deferred log must not charge foreground IO");
            assert!(r.align.is_none());
        }
        assert_eq!(log.take_unflushed(), 5 * 85);
        assert_eq!(log.take_unflushed(), 0, "take drains");
        assert_eq!(log.appended_bytes(), 5 * 85);
        assert_eq!(log.appends(), 5);
    }
}
