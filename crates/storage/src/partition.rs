//! Serially-executed partition tables — the VoltDB engine.
//!
//! VoltDB divides the database into disjoint partitions; each partition is
//! owned by exactly one single-threaded *site* that executes stored
//! procedures serially *"without any locking or latching"* (§4.5). A
//! partition here is an in-memory table with a primary-key tree index;
//! serial execution is enforced by the simulator (each site is a
//! capacity-1 resource), so the data structure needs no synchronisation —
//! exactly like the real engine.

use crate::receipt::CostReceipt;
use apm_core::record::{FieldValues, MetricKey, RAW_RECORD_SIZE};
use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::collections::BTreeMap;
use std::ops::Bound;

/// One VoltDB-style partition: an in-memory table with a tree index.
#[derive(Clone, Debug, Default)]
pub struct PartitionTable {
    rows: BTreeMap<MetricKey, FieldValues>,
}

impl PartitionTable {
    /// Creates an empty partition.
    pub fn new() -> PartitionTable {
        PartitionTable::default()
    }

    fn index_probes(&self) -> u64 {
        // Tree descent cost ≈ log2(n) comparisons, reported as one probe
        // per 4 levels (a cache line holds several tree levels' worth of
        // comparisons in an in-memory index).
        let n = self.rows.len() as u64;
        (64 - n.leading_zeros() as u64) / 4 + 1
    }

    /// Inserts or replaces a row.
    pub fn insert(&mut self, key: MetricKey, value: FieldValues) -> CostReceipt {
        let mut receipt = CostReceipt::new();
        receipt
            .probe(self.index_probes())
            .touch(RAW_RECORD_SIZE as u64);
        self.rows.insert(key, value);
        receipt
    }

    /// Point lookup.
    pub fn get(&self, key: &MetricKey) -> (Option<FieldValues>, CostReceipt) {
        let mut receipt = CostReceipt::new();
        receipt.probe(self.index_probes());
        let value = self.rows.get(key).copied();
        if value.is_some() {
            receipt.touch(RAW_RECORD_SIZE as u64);
        }
        (value, receipt)
    }

    /// Range scan within this partition.
    pub fn scan(
        &self,
        start: &MetricKey,
        len: usize,
    ) -> (Vec<(MetricKey, FieldValues)>, CostReceipt) {
        let mut receipt = CostReceipt::new();
        let out: Vec<(MetricKey, FieldValues)> = self
            .rows
            .range((Bound::Included(*start), Bound::Unbounded))
            .take(len)
            .map(|(k, v)| (*k, *v))
            .collect();
        receipt.probe(self.index_probes() + out.len() as u64 / 8);
        receipt.touch((out.len() * RAW_RECORD_SIZE) as u64);
        (out, receipt)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the partition holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Memory footprint estimate (rows + tree nodes).
    pub fn mem_bytes(&self) -> u64 {
        self.rows.len() as u64 * (RAW_RECORD_SIZE as u64 + 48)
    }
}

impl Snap for PartitionTable {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.rows);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(PartitionTable { rows: r.get()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apm_core::keyspace::record_for_seq;

    #[test]
    fn insert_get_scan_roundtrip() {
        let mut p = PartitionTable::new();
        for seq in 0..300 {
            let r = record_for_seq(seq);
            p.insert(r.key, r.fields);
        }
        assert_eq!(p.len(), 300);
        let r = record_for_seq(123);
        assert_eq!(p.get(&r.key).0, Some(r.fields));
        let mut keys: Vec<MetricKey> = (0..300).map(|s| record_for_seq(s).key).collect();
        keys.sort();
        let (result, _) = p.scan(&keys[10], 20);
        assert_eq!(
            result.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            keys[10..30].to_vec()
        );
    }

    #[test]
    fn probes_grow_logarithmically() {
        let mut p = PartitionTable::new();
        let r = record_for_seq(0);
        let small = p.insert(r.key, r.fields).probes;
        for seq in 1..100_000 {
            let r = record_for_seq(seq);
            p.rows.insert(r.key, r.fields);
        }
        let big = p.get(&record_for_seq(50).key).1.probes;
        assert!(big > small, "probe count must grow with table size");
        assert!(big < 10, "but only logarithmically: {big}");
    }

    #[test]
    fn miss_touches_no_payload() {
        let p = PartitionTable::new();
        let (v, receipt) = p.get(&record_for_seq(1).key);
        assert_eq!(v, None);
        assert_eq!(receipt.bytes_touched, 0);
    }

    #[test]
    fn mem_bytes_scale_with_rows() {
        let mut p = PartitionTable::new();
        for seq in 0..100 {
            let r = record_for_seq(seq);
            p.insert(r.key, r.fields);
        }
        assert_eq!(p.mem_bytes(), 100 * (75 + 48));
    }
}
