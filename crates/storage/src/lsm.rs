//! A log-structured merge tree with size-tiered compaction.
//!
//! This is the storage engine under the Cassandra- and HBase-like stores:
//! writes go to a sorted memtable; full memtables freeze into immutable
//! [`SsTable`]s; a size-tiered policy (Cassandra's default in 1.0) merges
//! runs of similar size. Reads consult the memtable, then every run
//! newest-first, with bloom filters short-circuiting most absent runs —
//! so *read amplification grows under write pressure*, one of the paper's
//! observed effects (high Cassandra/HBase read latencies, §5.1/§5.3).
//!
//! Background work (flush, compaction) is split in two phases so the
//! simulator can charge its I/O over virtual time: the tree *announces* a
//! [`BackgroundJob`] with its byte counts; the store layer schedules the
//! job's plan; when the plan completes it calls
//! [`LsmTree::complete_flush`] / [`LsmTree::complete_compaction`], and
//! only then does the real merge happen and read amplification drop.

use crate::memtable::Memtable;
use crate::receipt::CostReceipt;
use crate::sstable::{SsTable, TableProbe};
use apm_core::record::{FieldValues, MetricKey, RAW_RECORD_SIZE};
use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::collections::HashMap;

/// Compaction strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompactionStrategy {
    /// Cassandra 1.0's default: merge runs of similar size once
    /// `min_compaction_inputs` accumulate. Low write amplification, read
    /// amplification grows between merges.
    #[default]
    SizeTiered,
    /// Aggressive single-level policy (a simplified leveled/major
    /// compaction): once enough runs accumulate, merge *everything* into
    /// one run. Reads stay near one run; every record is rewritten on
    /// every major merge — high write amplification. Used by the
    /// compaction ablation experiment.
    Leveled,
}

/// Tuning knobs of the tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LsmConfig {
    /// Memtable size that triggers a flush, in raw payload bytes.
    pub memtable_flush_bytes: u64,
    /// Compaction policy.
    pub strategy: CompactionStrategy,
    /// Minimum similar-size runs before a compaction is scheduled
    /// (Cassandra `min_compaction_threshold`, default 4).
    pub min_compaction_inputs: usize,
    /// Maximum runs merged by one compaction (Cassandra default 32).
    pub max_compaction_inputs: usize,
    /// Data block size for I/O accounting.
    pub block_bytes: u64,
    /// Bloom filter density.
    pub bloom_bits_per_key: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_flush_bytes: 4 << 20,
            strategy: CompactionStrategy::SizeTiered,
            min_compaction_inputs: 4,
            max_compaction_inputs: 32,
            block_bytes: 64 << 10,
            bloom_bits_per_key: 10,
        }
    }
}

/// Kind of an announced background job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Memtable flush: sequential write of a new run.
    Flush,
    /// Size-tiered compaction: sequential read of inputs + write of output.
    Compaction,
}

/// A background job the store layer must schedule and later complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackgroundJob {
    /// Job id to pass back to the completion call.
    pub id: u64,
    /// Flush or compaction.
    pub kind: JobKind,
    /// Bytes the job reads from disk.
    pub read_bytes: u64,
    /// Bytes the job writes to disk.
    pub write_bytes: u64,
}

impl Snap for JobKind {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            JobKind::Flush => 0,
            JobKind::Compaction => 1,
        });
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(JobKind::Flush),
            1 => Ok(JobKind::Compaction),
            tag => Err(SnapError::BadTag {
                what: "JobKind",
                tag: tag as u64,
            }),
        }
    }
}

impl Snap for BackgroundJob {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.id);
        w.put(&self.kind);
        w.put_u64(self.read_bytes);
        w.put_u64(self.write_bytes);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(BackgroundJob {
            id: r.u64()?,
            kind: r.get()?,
            read_bytes: r.u64()?,
            write_bytes: r.u64()?,
        })
    }
}

/// Cumulative engine statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LsmStats {
    pub inserts: u64,
    pub reads: u64,
    pub scans: u64,
    /// Runs consulted across all reads (read amplification numerator).
    pub tables_consulted: u64,
    /// Runs skipped thanks to bloom filters.
    pub bloom_skips: u64,
    pub flushes: u64,
    pub compactions: u64,
    pub bytes_flushed: u64,
    pub bytes_compacted: u64,
}

impl LsmStats {
    /// Average number of runs physically consulted per read.
    pub fn read_amplification(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.tables_consulted as f64 / self.reads as f64
        }
    }
}

/// The LSM tree.
#[derive(Debug)]
pub struct LsmTree {
    /// Construction-time config; not part of the snapshot stream.
    config: LsmConfig, // audit:allow(snap-drift)
    memtable: Memtable,
    /// All immutable runs, newest first (descending id).
    tables: Vec<SsTable>,
    /// Table ids currently being flushed (not yet durable / compactable).
    flushing: HashMap<u64, u64>, // table id -> job id
    /// Table ids consumed by an in-flight compaction.
    compacting_inputs: HashMap<u64, Vec<u64>>, // job id -> input table ids
    next_table_id: u64,
    next_job_id: u64,
    stats: LsmStats,
}

impl LsmTree {
    /// Creates an empty tree.
    pub fn new(config: LsmConfig) -> LsmTree {
        LsmTree {
            config,
            memtable: Memtable::new(),
            tables: Vec::new(),
            flushing: HashMap::new(),
            compacting_inputs: HashMap::new(),
            next_table_id: 1,
            next_job_id: 1,
            stats: LsmStats::default(),
        }
    }

    /// Inserts a record. Returns the operation receipt and, if the
    /// memtable crossed its threshold, the flush job to schedule.
    pub fn insert(
        &mut self,
        key: MetricKey,
        value: FieldValues,
    ) -> (CostReceipt, Option<BackgroundJob>) {
        self.stats.inserts += 1;
        let mut receipt = CostReceipt::new();
        receipt.probe(1).touch(RAW_RECORD_SIZE as u64);
        self.memtable.insert(key, value);
        let job = if self.memtable.bytes() >= self.config.memtable_flush_bytes {
            Some(self.start_flush())
        } else {
            None
        };
        (receipt, job)
    }

    /// Freezes the current memtable into a run (immediately readable) and
    /// announces the flush job. No-op returning `None`-like zero job is
    /// avoided: callers must not invoke this with an empty memtable.
    fn start_flush(&mut self) -> BackgroundJob {
        debug_assert!(!self.memtable.is_empty());
        let entries = self.memtable.drain_sorted();
        let table = SsTable::from_sorted(
            self.next_table_id,
            entries,
            self.config.block_bytes,
            self.config.bloom_bits_per_key,
        );
        self.next_table_id += 1;
        let job = BackgroundJob {
            id: self.next_job_id,
            kind: JobKind::Flush,
            read_bytes: 0,
            write_bytes: table.disk_bytes(),
        };
        self.next_job_id += 1;
        self.flushing.insert(table.id, job.id);
        // Newest first.
        self.tables.insert(0, table);
        job
    }

    /// Forces a flush of a non-empty memtable (end of load phase).
    pub fn force_flush(&mut self) -> Option<BackgroundJob> {
        if self.memtable.is_empty() {
            None
        } else {
            Some(self.start_flush())
        }
    }

    /// Marks a flush durable. Returns a compaction job if the flush made
    /// one eligible.
    ///
    /// # Panics
    /// Panics if `job_id` does not refer to an in-flight flush.
    pub fn complete_flush(&mut self, job_id: u64) -> Option<BackgroundJob> {
        let table_id = *self
            .flushing
            .iter()
            .find(|(_, j)| **j == job_id)
            .unwrap_or_else(|| panic!("unknown flush job {job_id}"))
            .0;
        self.flushing.remove(&table_id);
        self.stats.flushes += 1;
        if let Some(table) = self.tables.iter().find(|t| t.id == table_id) {
            self.stats.bytes_flushed += table.disk_bytes();
        }
        self.maybe_compact()
    }

    /// Size-tiered bucket selection: runs whose record counts share the
    /// same power-of-two magnitude form a bucket; a bucket with at least
    /// `min_compaction_inputs` idle runs triggers a merge.
    fn maybe_compact(&mut self) -> Option<BackgroundJob> {
        if !self.compacting_inputs.is_empty() {
            // One compaction at a time (Cassandra 1.0 default behaviour
            // with a single compaction slot).
            return None;
        }
        let busy: Vec<u64> = self.flushing.keys().copied().collect();
        let mut inputs = match self.config.strategy {
            CompactionStrategy::SizeTiered => {
                let mut buckets: HashMap<u32, Vec<u64>> = HashMap::new();
                for table in &self.tables {
                    if busy.contains(&table.id) || table.is_empty() {
                        continue;
                    }
                    let magnitude = 63 - (table.len() as u64).leading_zeros();
                    buckets.entry(magnitude).or_default().push(table.id);
                }
                buckets
                    .into_iter()
                    .filter(|(_, ids)| ids.len() >= self.config.min_compaction_inputs)
                    .min_by_key(|(mag, _)| *mag)?
                    .1
            }
            CompactionStrategy::Leveled => {
                let idle: Vec<u64> = self
                    .tables
                    .iter()
                    .filter(|t| !busy.contains(&t.id) && !t.is_empty())
                    .map(|t| t.id)
                    .collect();
                if idle.len() < self.config.min_compaction_inputs {
                    return None;
                }
                idle
            }
        };
        inputs.truncate(self.config.max_compaction_inputs);
        let read_bytes: u64 = self
            .tables
            .iter()
            .filter(|t| inputs.contains(&t.id))
            .map(SsTable::disk_bytes)
            .sum();
        let job = BackgroundJob {
            id: self.next_job_id,
            kind: JobKind::Compaction,
            read_bytes,
            write_bytes: read_bytes, // upper bound; dedup shrinks it
        };
        self.next_job_id += 1;
        self.compacting_inputs.insert(job.id, inputs);
        Some(job)
    }

    /// Finishes a compaction: physically merges the inputs into one run.
    /// Returns a follow-up compaction job if one became eligible.
    ///
    /// # Panics
    /// Panics if `job_id` does not refer to an in-flight compaction.
    pub fn complete_compaction(&mut self, job_id: u64) -> Option<BackgroundJob> {
        let inputs = self
            .compacting_inputs
            .remove(&job_id)
            .unwrap_or_else(|| panic!("unknown compaction job {job_id}"));
        let input_tables: Vec<&SsTable> = self
            .tables
            .iter()
            .filter(|t| inputs.contains(&t.id))
            .collect();
        debug_assert_eq!(input_tables.len(), inputs.len());
        let merged = SsTable::merge(
            self.next_table_id,
            &input_tables,
            self.config.block_bytes,
            self.config.bloom_bits_per_key,
        );
        self.next_table_id += 1;
        self.stats.compactions += 1;
        self.stats.bytes_compacted += merged.disk_bytes();
        self.tables.retain(|t| !inputs.contains(&t.id));
        self.tables.insert(0, merged);
        self.tables.sort_by_key(|t| std::cmp::Reverse(t.id));
        self.maybe_compact()
    }

    /// Point lookup: memtable, then runs newest-first.
    pub fn get(&mut self, key: &MetricKey) -> (Option<FieldValues>, CostReceipt) {
        self.stats.reads += 1;
        let mut receipt = CostReceipt::new();
        receipt.probe(1);
        if let Some(v) = self.memtable.get(key) {
            receipt.touch(RAW_RECORD_SIZE as u64);
            return (Some(*v), receipt);
        }
        for table in &self.tables {
            match table.get(key, &mut receipt) {
                TableProbe::BloomNegative => {
                    self.stats.bloom_skips += 1;
                }
                TableProbe::Checked(Some(v)) => {
                    self.stats.tables_consulted += 1;
                    return (Some(v), receipt);
                }
                TableProbe::Checked(None) => {
                    self.stats.tables_consulted += 1;
                }
            }
        }
        (None, receipt)
    }

    /// Range scan merging the memtable and every run.
    pub fn scan(
        &mut self,
        start: &MetricKey,
        len: usize,
    ) -> (Vec<(MetricKey, FieldValues)>, CostReceipt) {
        self.stats.scans += 1;
        let mut receipt = CostReceipt::new();
        // (priority, key, value): higher priority = newer version wins.
        let mut candidates: Vec<(u64, MetricKey, FieldValues)> = self
            .memtable
            .scan(start, len)
            .map(|(k, v)| (u64::MAX, *k, *v))
            .collect();
        receipt.probe(1);
        let mut buf = Vec::new();
        for table in &self.tables {
            buf.clear();
            table.scan(start, len, &mut receipt, &mut buf);
            candidates.extend(buf.iter().map(|(k, v)| (table.id, *k, *v)));
        }
        candidates.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
        candidates.dedup_by(|next, first| next.1 == first.1);
        candidates.truncate(len);
        (
            candidates.into_iter().map(|(_, k, v)| (k, v)).collect(),
            receipt,
        )
    }

    /// Number of immutable runs.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total records across memtable and runs (counting duplicates).
    pub fn record_count(&self) -> u64 {
        self.memtable.len() as u64 + self.tables.iter().map(|t| t.len() as u64).sum::<u64>()
    }

    /// On-disk bytes across all runs (before store-format overhead).
    pub fn disk_bytes(&self) -> u64 {
        self.tables.iter().map(SsTable::disk_bytes).sum()
    }

    /// Engine statistics.
    pub fn stats(&self) -> LsmStats {
        self.stats
    }

    /// Whether any background job is in flight.
    pub fn has_background_work(&self) -> bool {
        !self.flushing.is_empty() || !self.compacting_inputs.is_empty()
    }

    /// Serializes the tree's mutable state (the config is the caller's and
    /// is re-supplied at construction). Hash maps are written in sorted
    /// key order so equal trees always produce equal bytes.
    pub fn snap_state(&self, w: &mut SnapWriter) {
        w.put(&self.memtable);
        w.put(&self.tables);
        let mut flushing: Vec<(u64, u64)> = self.flushing.iter().map(|(k, v)| (*k, *v)).collect();
        flushing.sort_unstable();
        w.put(&flushing);
        let mut compacting: Vec<(u64, Vec<u64>)> = self
            .compacting_inputs
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        compacting.sort_unstable_by_key(|(k, _)| *k);
        w.put(&compacting);
        w.put_u64(self.next_table_id);
        w.put_u64(self.next_job_id);
        w.put(&self.stats);
    }

    /// Restores the mutable state written by [`LsmTree::snap_state`] into
    /// a tree built with the same config.
    pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.memtable = r.get()?;
        self.tables = r.get()?;
        let flushing: Vec<(u64, u64)> = r.get()?;
        self.flushing = flushing.into_iter().collect();
        let compacting: Vec<(u64, Vec<u64>)> = r.get()?;
        self.compacting_inputs = compacting.into_iter().collect();
        self.next_table_id = r.u64()?;
        self.next_job_id = r.u64()?;
        self.stats = r.get()?;
        Ok(())
    }
}

impl Snap for LsmStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.inserts);
        w.put_u64(self.reads);
        w.put_u64(self.scans);
        w.put_u64(self.tables_consulted);
        w.put_u64(self.bloom_skips);
        w.put_u64(self.flushes);
        w.put_u64(self.compactions);
        w.put_u64(self.bytes_flushed);
        w.put_u64(self.bytes_compacted);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(LsmStats {
            inserts: r.u64()?,
            reads: r.u64()?,
            scans: r.u64()?,
            tables_consulted: r.u64()?,
            bloom_skips: r.u64()?,
            flushes: r.u64()?,
            compactions: r.u64()?,
            bytes_flushed: r.u64()?,
            bytes_compacted: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apm_core::keyspace::record_for_seq;

    fn small_config() -> LsmConfig {
        LsmConfig {
            memtable_flush_bytes: 75 * 100,
            ..LsmConfig::default()
        }
    }

    /// Drives all announced jobs to completion immediately.
    fn settle(tree: &mut LsmTree, mut job: Option<BackgroundJob>) {
        while let Some(j) = job {
            job = match j.kind {
                JobKind::Flush => tree.complete_flush(j.id),
                JobKind::Compaction => tree.complete_compaction(j.id),
            };
        }
    }

    fn load(tree: &mut LsmTree, seqs: std::ops::Range<u64>) {
        for seq in seqs {
            let r = record_for_seq(seq);
            let (_, job) = tree.insert(r.key, r.fields);
            settle(tree, job);
        }
    }

    #[test]
    fn reads_see_all_written_data() {
        let mut tree = LsmTree::new(small_config());
        load(&mut tree, 0..1_000);
        for seq in (0..1_000).step_by(37) {
            let r = record_for_seq(seq);
            let (found, _) = tree.get(&r.key);
            assert_eq!(found, Some(r.fields), "seq {seq} lost");
        }
        let (missing, _) = tree.get(&record_for_seq(5_000).key);
        assert_eq!(missing, None);
    }

    #[test]
    fn memtable_flushes_at_threshold() {
        let mut tree = LsmTree::new(small_config());
        let mut flush_jobs = 0;
        for seq in 0..100 {
            let r = record_for_seq(seq);
            let (_, job) = tree.insert(r.key, r.fields);
            if let Some(j) = job {
                assert_eq!(j.kind, JobKind::Flush);
                assert!(j.write_bytes >= 75 * 100);
                flush_jobs += 1;
                settle(&mut tree, Some(j));
            }
        }
        assert_eq!(flush_jobs, 1, "exactly one flush at 100 records");
        assert_eq!(tree.table_count(), 1);
    }

    #[test]
    fn compaction_reduces_table_count_and_preserves_data() {
        let mut tree = LsmTree::new(small_config());
        load(&mut tree, 0..2_000);
        // 20 flushes happened; compactions must have merged most runs.
        assert!(tree.stats().compactions >= 1, "no compaction triggered");
        assert!(
            tree.table_count() < 10,
            "too many runs left: {}",
            tree.table_count()
        );
        for seq in (0..2_000).step_by(101) {
            let r = record_for_seq(seq);
            assert_eq!(
                tree.get(&r.key).0,
                Some(r.fields),
                "seq {seq} lost in compaction"
            );
        }
        assert_eq!(
            tree.record_count(),
            2_000,
            "compaction must not duplicate or drop"
        );
    }

    #[test]
    fn deferred_compaction_keeps_inputs_readable() {
        let mut tree = LsmTree::new(small_config());
        // Build up 4 runs without completing the eventual compaction.
        let mut pending_compaction = None;
        for seq in 0..400 {
            let r = record_for_seq(seq);
            let (_, job) = tree.insert(r.key, r.fields);
            if let Some(j) = job {
                let follow = tree.complete_flush(j.id);
                if let Some(c) = follow {
                    assert_eq!(c.kind, JobKind::Compaction);
                    pending_compaction = Some(c);
                }
            }
        }
        let c = pending_compaction.expect("4 runs should trigger compaction");
        // Before completion: data still fully readable from input runs.
        let r = record_for_seq(123);
        assert_eq!(tree.get(&r.key).0, Some(r.fields));
        let before = tree.table_count();
        tree.complete_compaction(c.id);
        assert!(tree.table_count() < before);
        assert_eq!(tree.get(&r.key).0, Some(r.fields));
    }

    #[test]
    fn read_amplification_grows_with_unmerged_runs() {
        // Disable compaction by requiring many inputs.
        let mut tree = LsmTree::new(LsmConfig {
            memtable_flush_bytes: 75 * 50,
            min_compaction_inputs: 1_000,
            ..LsmConfig::default()
        });
        load(&mut tree, 0..1_000);
        assert!(tree.table_count() >= 20);
        for seq in 0..200 {
            let r = record_for_seq(seq);
            tree.get(&r.key);
        }
        // With ~20 runs and uniform placement, blooms skip most but some
        // amplification remains; receipts must reflect > 1 probe work.
        let stats = tree.stats();
        assert!(stats.bloom_skips > 0, "bloom filters unused");
        assert!(stats.read_amplification() >= 0.9, "reads must consult runs");
    }

    #[test]
    fn scan_merges_memtable_and_runs_without_duplicates() {
        let mut tree = LsmTree::new(small_config());
        load(&mut tree, 0..500);
        // Leave some records in the memtable.
        for seq in 500..530 {
            let r = record_for_seq(seq);
            let (_, job) = tree.insert(r.key, r.fields);
            settle(&mut tree, job);
        }
        let mut keys: Vec<MetricKey> = (0..530).map(|s| record_for_seq(s).key).collect();
        keys.sort();
        let (result, receipt) = tree.scan(&keys[100], 50);
        assert_eq!(result.len(), 50);
        let expected: Vec<MetricKey> = keys[100..150].to_vec();
        let got: Vec<MetricKey> = result.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, expected);
        assert!(receipt.read_ios() >= 1);
    }

    #[test]
    fn update_precedence_newest_wins_after_compaction() {
        let mut tree = LsmTree::new(small_config());
        let key = record_for_seq(1).key;
        let v1 = record_for_seq(100).fields;
        let v2 = record_for_seq(200).fields;
        let (_, job) = tree.insert(key, v1);
        settle(&mut tree, job);
        // Pad to force a flush between the two versions.
        load(&mut tree, 1_000..1_120);
        let (_, job) = tree.insert(key, v2);
        settle(&mut tree, job);
        load(&mut tree, 2_000..2_400); // force compactions
        assert_eq!(tree.get(&key).0, Some(v2), "older version resurrected");
    }

    #[test]
    fn force_flush_empties_memtable() {
        let mut tree = LsmTree::new(LsmConfig::default());
        load(&mut tree, 0..10);
        assert_eq!(tree.table_count(), 0);
        let job = tree.force_flush().expect("non-empty memtable");
        settle(&mut tree, Some(job));
        assert_eq!(tree.table_count(), 1);
        assert!(
            tree.force_flush().is_none(),
            "second force flush has nothing to do"
        );
    }

    #[test]
    fn stats_track_bytes() {
        let mut tree = LsmTree::new(small_config());
        load(&mut tree, 0..1_000);
        let stats = tree.stats();
        assert!(stats.bytes_flushed > 0);
        assert_eq!(stats.inserts, 1_000);
        assert!(tree.disk_bytes() > 75 * 900);
    }

    #[test]
    #[should_panic(expected = "unknown flush job")]
    fn completing_unknown_flush_panics() {
        LsmTree::new(LsmConfig::default()).complete_flush(77);
    }

    #[test]
    fn leveled_strategy_keeps_few_runs_at_higher_write_cost() {
        let tiered_cfg = small_config();
        let leveled_cfg = LsmConfig {
            strategy: CompactionStrategy::Leveled,
            ..small_config()
        };
        let mut tiered = LsmTree::new(tiered_cfg);
        let mut leveled = LsmTree::new(leveled_cfg);
        load(&mut tiered, 0..5_000);
        load(&mut leveled, 0..5_000);
        assert!(
            leveled.table_count() <= tiered.table_count(),
            "leveled must keep fewer runs: {} vs {}",
            leveled.table_count(),
            tiered.table_count()
        );
        assert!(
            leveled.table_count() <= 4,
            "leveled run count: {}",
            leveled.table_count()
        );
        let t_amp = tiered.stats().bytes_compacted;
        let l_amp = leveled.stats().bytes_compacted;
        assert!(
            l_amp > t_amp,
            "leveled must rewrite more bytes: {l_amp} vs {t_amp}"
        );
        // Both keep the data intact.
        for seq in (0..5_000).step_by(397) {
            let r = record_for_seq(seq);
            assert_eq!(
                leveled.get(&r.key).0,
                Some(r.fields),
                "leveled lost seq {seq}"
            );
        }
    }

    #[test]
    fn leveled_reads_consult_fewer_runs() {
        let mut tiered = LsmTree::new(LsmConfig {
            memtable_flush_bytes: 75 * 50,
            min_compaction_inputs: 8, // let runs pile up
            ..LsmConfig::default()
        });
        let mut leveled = LsmTree::new(LsmConfig {
            memtable_flush_bytes: 75 * 50,
            strategy: CompactionStrategy::Leveled,
            min_compaction_inputs: 4,
            ..LsmConfig::default()
        });
        load(&mut tiered, 0..2_000);
        load(&mut leveled, 0..2_000);
        for seq in 0..500 {
            let r = record_for_seq(seq);
            tiered.get(&r.key);
            leveled.get(&r.key);
        }
        assert!(
            leveled.stats().read_amplification() <= tiered.stats().read_amplification(),
            "leveled read amp {} vs tiered {}",
            leveled.stats().read_amplification(),
            tiered.stats().read_amplification()
        );
    }
}
