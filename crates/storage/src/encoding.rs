//! Per-store on-disk record encodings — the substance of Figure 17.
//!
//! §5.7 of the paper: loading 10 M 75-byte records per node produced very
//! different disk footprints — *"Cassandra stores the data most
//! efficiently and uses 2.5 gigabytes per node ... MySQL uses 5 gigabytes
//! ... Project Voldemort 5.5 gigabytes ... HBase ... 7.5 gigabytes per
//! node and therefore 10 times as much as the raw data size"* — because
//! flexible-schema stores repeat schema and version metadata with every
//! cell.
//!
//! Each [`StorageFormat`] derives its bytes-per-record from the store's
//! actual physical layout, with the component breakdown documented, and
//! is checked against the paper's measurements by tests.

use apm_core::record::{FIELD_COUNT, FIELD_SIZE, KEY_SIZE, RAW_RECORD_SIZE};

/// On-disk layout description for one store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageFormat {
    /// Store name.
    pub name: &'static str,
    /// Bytes one record occupies on disk after load (no replication, no
    /// compression — the paper's configuration).
    pub bytes_per_record: u64,
    /// Whether the footprint includes a retained log (MySQL binlog).
    pub includes_log: bool,
}

impl StorageFormat {
    /// Disk usage for `records` records, in bytes.
    pub fn disk_usage(&self, records: u64) -> u64 {
        records * self.bytes_per_record
    }

    /// Expansion factor over the 75-byte raw record.
    pub fn expansion(&self) -> f64 {
        self.bytes_per_record as f64 / RAW_RECORD_SIZE as f64
    }
}

/// Cassandra SSTable layout: per row — key (2+25), row size header (8),
/// local deletion info (12), column count (2); per column — name (2+6),
/// flags (1), timestamp (8), value length (4) and value (10). Five columns
/// per record plus index/bloom overhead amortised per row.
pub fn cassandra_format() -> StorageFormat {
    let row_header = 2 + KEY_SIZE as u64 + 8 + 12 + 2;
    let per_column = 2 + 6 + 1 + 8 + 4 + FIELD_SIZE as u64;
    let index_amortised = 26;
    StorageFormat {
        name: "cassandra",
        bytes_per_record: row_header + FIELD_COUNT as u64 * per_column + index_amortised,
        includes_log: false,
    }
}

/// HBase KeyValue layout: HBase repeats the *full coordinates* with every
/// cell — row key, column family, qualifier, timestamp, type — so a
/// 5-field record becomes five KeyValues of ~(4+4+2+25+1+6+8+1+10) bytes
/// each, plus HFile block index, HDFS checksums and metadata. This is the
/// "10 times the raw data" store of §5.7.
pub fn hbase_format() -> StorageFormat {
    let per_cell = 4 + 4 + 2 + KEY_SIZE as u64 + 1 + 6 + 8 + 1 + FIELD_SIZE as u64;
    let hfile_and_hdfs_amortised = 445; // block index, trailer, checksums, NN metadata share
    StorageFormat {
        name: "hbase",
        bytes_per_record: FIELD_COUNT as u64 * per_cell + hfile_and_hdfs_amortised,
        includes_log: false,
    }
}

/// Voldemort/BerkeleyDB layout: BDB stores each key twice (leaf + BIN),
/// per-record log entry headers (~50 B), the vector clock (~30 B), and
/// B-tree fill factor ≈ 70 % inflates everything by ~1/0.7.
pub fn voldemort_format() -> StorageFormat {
    let logical = RAW_RECORD_SIZE as u64 + KEY_SIZE as u64 + 50 + 30;
    let fill_factor_inflated = logical * 10 / 7 + 293; // + JE cleaner slack
    StorageFormat {
        name: "voldemort",
        bytes_per_record: fill_factor_inflated,
        includes_log: false,
    }
}

/// MySQL/InnoDB layout: clustered index record (header 5 + transaction
/// id 6 + roll pointer 7 + key + fields), ~50 % of a secondary copy in
/// non-leaf pages and fill-factor slack, plus the binary log which §5.7
/// notes doubles the footprint ("without this feature the disk usage is
/// essentially reduced by half").
pub fn mysql_format() -> StorageFormat {
    let row = 5 + 6 + 7 + RAW_RECORD_SIZE as u64;
    let page_slack = row * 6 / 10;
    let data = row + page_slack + 101;
    StorageFormat {
        name: "mysql",
        bytes_per_record: data * 2,
        includes_log: true,
    }
}

/// MySQL without the binary log (the §5.7 aside).
pub fn mysql_format_no_binlog() -> StorageFormat {
    let with = mysql_format();
    StorageFormat {
        name: "mysql-nobinlog",
        bytes_per_record: with.bytes_per_record / 2,
        includes_log: false,
    }
}

/// The raw data baseline plotted in Figure 17.
pub fn raw_format() -> StorageFormat {
    StorageFormat {
        name: "raw",
        bytes_per_record: RAW_RECORD_SIZE as u64,
        includes_log: false,
    }
}

/// All disk-resident formats in Figure 17's legend order.
pub fn figure17_formats() -> Vec<StorageFormat> {
    vec![
        cassandra_format(),
        hbase_format(),
        voldemort_format(),
        mysql_format(),
        raw_format(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §5.7 reference points: GB used per node for 10 M records.
    fn gb_per_10m(format: &StorageFormat) -> f64 {
        format.disk_usage(10_000_000) as f64 / 1e9
    }

    #[test]
    fn cassandra_matches_paper_2_5_gb() {
        let gb = gb_per_10m(&cassandra_format());
        assert!((gb - 2.5).abs() < 0.3, "cassandra: {gb} GB, paper: 2.5 GB");
    }

    #[test]
    fn mysql_matches_paper_5_gb_with_binlog() {
        let gb = gb_per_10m(&mysql_format());
        assert!((gb - 5.0).abs() < 0.5, "mysql: {gb} GB, paper: 5 GB");
        let without = gb_per_10m(&mysql_format_no_binlog());
        assert!(
            (without - 2.5).abs() < 0.3,
            "mysql sans binlog: {without} GB, paper: ~half"
        );
    }

    #[test]
    fn voldemort_matches_paper_5_5_gb() {
        let gb = gb_per_10m(&voldemort_format());
        assert!((gb - 5.5).abs() < 0.5, "voldemort: {gb} GB, paper: 5.5 GB");
    }

    #[test]
    fn hbase_matches_paper_7_5_gb() {
        let gb = gb_per_10m(&hbase_format());
        assert!((gb - 7.5).abs() < 0.7, "hbase: {gb} GB, paper: 7.5 GB");
    }

    #[test]
    fn paper_ordering_holds() {
        // §5.7: cassandra < mysql ≈ voldemort < hbase, all above raw.
        let c = cassandra_format().bytes_per_record;
        let m = mysql_format().bytes_per_record;
        let v = voldemort_format().bytes_per_record;
        let h = hbase_format().bytes_per_record;
        let raw = raw_format().bytes_per_record;
        assert!(raw < c && c < m && m <= v && v < h);
    }

    #[test]
    fn hbase_expansion_is_about_10x() {
        let e = hbase_format().expansion();
        assert!(
            (9.0..11.5).contains(&e),
            "hbase expansion {e}, paper says 10x"
        );
    }

    #[test]
    fn disk_usage_is_linear() {
        let f = cassandra_format();
        assert_eq!(f.disk_usage(20), 2 * f.disk_usage(10));
        assert_eq!(f.disk_usage(0), 0);
    }
}
