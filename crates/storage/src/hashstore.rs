//! In-memory hash store with an ordered index — the Redis engine.
//!
//! The Redis YCSB client stores each record in a hash and additionally
//! indexes the key in a sorted set for scans (§4.4: "YCSB uses a hash map
//! as well as a sorted set"). We model both structures with byte-accurate
//! memory accounting, because the paper's 12-node Redis incident was a
//! memory blow-up: the sharding ring sent one node more than its share
//! and it *"consistently ran out of memory"* (§5.1).

use crate::receipt::CostReceipt;
use apm_core::record::{FieldValues, MetricKey, FIELD_COUNT, KEY_SIZE, RAW_RECORD_SIZE};
use apm_core::snap::{SnapError, SnapReader, SnapWriter};
use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;

/// Redis-era per-entry memory overhead, in bytes: robj headers, dict
/// entry, sds headers for the key and each of the five field values, plus
/// the skiplist node for the sorted-set index entry.
pub const ENTRY_OVERHEAD_BYTES: u64 = 16 + 24 + (3 + FIELD_COUNT as u64 * 3) * 16 + 64;

/// Error returned when an insert would exceed the memory budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes the store would have needed.
    pub needed: u64,
    /// The configured budget.
    pub budget: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of memory: need {} bytes, budget {}",
            self.needed, self.budget
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// The hash store.
#[derive(Clone, Debug)]
pub struct HashStore {
    map: HashMap<MetricKey, FieldValues>,
    /// Sorted-set index over keys, maintained for scans.
    index: BTreeSet<MetricKey>,
    mem_bytes: u64,
    /// Construction-time config; not part of the snapshot stream.
    max_memory: Option<u64>, // audit:allow(snap-drift)
}

impl HashStore {
    /// Creates a store with an optional memory budget in bytes.
    pub fn new(max_memory: Option<u64>) -> HashStore {
        HashStore {
            map: HashMap::new(),
            index: BTreeSet::new(),
            mem_bytes: 0,
            max_memory,
        }
    }

    /// Bytes a single record costs in memory.
    pub fn bytes_per_record() -> u64 {
        RAW_RECORD_SIZE as u64 + KEY_SIZE as u64 /* second key copy in the index */ + ENTRY_OVERHEAD_BYTES
    }

    /// Inserts a record (no eviction — Redis `noeviction` semantics).
    pub fn insert(
        &mut self,
        key: MetricKey,
        value: FieldValues,
    ) -> Result<CostReceipt, OutOfMemory> {
        let mut receipt = CostReceipt::new();
        receipt.touch(RAW_RECORD_SIZE as u64);
        if let Some(existing) = self.map.get_mut(&key) {
            receipt.probe(1);
            *existing = value;
            return Ok(receipt);
        }
        let needed = self.mem_bytes + Self::bytes_per_record();
        if let Some(budget) = self.max_memory {
            if needed > budget {
                return Err(OutOfMemory { needed, budget });
            }
        }
        // Hash insert + skiplist/sorted-set insert.
        receipt.probe(2);
        self.map.insert(key, value);
        self.index.insert(key);
        self.mem_bytes = needed;
        Ok(receipt)
    }

    /// Point lookup.
    pub fn get(&self, key: &MetricKey) -> (Option<FieldValues>, CostReceipt) {
        let mut receipt = CostReceipt::new();
        receipt.probe(1);
        let value = self.map.get(key).copied();
        if value.is_some() {
            receipt.touch(RAW_RECORD_SIZE as u64);
        }
        (value, receipt)
    }

    /// Range scan over the sorted-set index.
    pub fn scan(
        &self,
        start: &MetricKey,
        len: usize,
    ) -> (Vec<(MetricKey, FieldValues)>, CostReceipt) {
        let mut receipt = CostReceipt::new();
        // ZRANGEBYLEX walk + one HGETALL per hit.
        let out: Vec<(MetricKey, FieldValues)> = self
            .index
            .range((Bound::Included(*start), Bound::Unbounded))
            .take(len)
            .filter_map(|k| self.map.get(k).map(|v| (*k, *v)))
            .collect();
        receipt.probe(1 + out.len() as u64);
        receipt.touch((out.len() * RAW_RECORD_SIZE) as u64);
        (out, receipt)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes of memory in use.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// Fraction of the budget used (0 when unlimited).
    pub fn mem_fraction(&self) -> f64 {
        match self.max_memory {
            Some(budget) if budget > 0 => self.mem_bytes as f64 / budget as f64,
            _ => 0.0,
        }
    }

    /// Serializes the contents in sorted key order (the memory budget is
    /// re-supplied at construction).
    pub fn snap_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.index.len() as u64);
        for key in &self.index {
            w.put(key);
            w.put(self.map.get(key).expect("index entry has a hash entry"));
        }
        w.put_u64(self.mem_bytes);
    }

    /// Restores the state written by [`HashStore::snap_state`] into a
    /// store built with the same memory budget.
    pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let len = r.u64()? as usize;
        self.map = HashMap::with_capacity(len);
        self.index = BTreeSet::new();
        for _ in 0..len {
            let key: MetricKey = r.get()?;
            let value: FieldValues = r.get()?;
            self.map.insert(key, value);
            self.index.insert(key);
        }
        self.mem_bytes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apm_core::keyspace::record_for_seq;

    #[test]
    fn insert_get_roundtrip() {
        let mut store = HashStore::new(None);
        for seq in 0..1_000 {
            let r = record_for_seq(seq);
            store.insert(r.key, r.fields).unwrap();
        }
        for seq in (0..1_000).step_by(53) {
            let r = record_for_seq(seq);
            assert_eq!(store.get(&r.key).0, Some(r.fields));
        }
        assert_eq!(store.get(&record_for_seq(2_000).key).0, None);
        assert_eq!(store.len(), 1_000);
    }

    #[test]
    fn memory_accounting_is_linear_in_records() {
        let mut store = HashStore::new(None);
        let per = HashStore::bytes_per_record();
        for seq in 0..10 {
            let r = record_for_seq(seq);
            store.insert(r.key, r.fields).unwrap();
            assert_eq!(store.mem_bytes(), per * (seq + 1));
        }
    }

    #[test]
    fn reinsert_does_not_grow_memory() {
        let mut store = HashStore::new(None);
        let r = record_for_seq(1);
        store.insert(r.key, r.fields).unwrap();
        let before = store.mem_bytes();
        store.insert(r.key, record_for_seq(2).fields).unwrap();
        assert_eq!(store.mem_bytes(), before);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn budget_exhaustion_returns_oom() {
        let budget = HashStore::bytes_per_record() * 5;
        let mut store = HashStore::new(Some(budget));
        for seq in 0..5 {
            let r = record_for_seq(seq);
            store.insert(r.key, r.fields).unwrap();
        }
        let r = record_for_seq(5);
        let err = store.insert(r.key, r.fields).unwrap_err();
        assert_eq!(err.budget, budget);
        assert!(err.needed > budget);
        assert!(err.to_string().contains("out of memory"));
        // Reads still work after OOM (Redis keeps serving reads).
        let r0 = record_for_seq(0);
        assert_eq!(store.get(&r0.key).0, Some(r0.fields));
    }

    #[test]
    fn scan_uses_ordered_index() {
        let mut store = HashStore::new(None);
        for seq in 0..500 {
            let r = record_for_seq(seq);
            store.insert(r.key, r.fields).unwrap();
        }
        let mut keys: Vec<MetricKey> = (0..500).map(|s| record_for_seq(s).key).collect();
        keys.sort();
        let (result, receipt) = store.scan(&keys[100], 50);
        let got: Vec<MetricKey> = result.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, keys[100..150].to_vec());
        assert_eq!(
            receipt.probes, 51,
            "one index walk + one hash probe per record"
        );
    }

    #[test]
    fn mem_fraction_tracks_budget() {
        let budget = HashStore::bytes_per_record() * 10;
        let mut store = HashStore::new(Some(budget));
        for seq in 0..5 {
            let r = record_for_seq(seq);
            store.insert(r.key, r.fields).unwrap();
        }
        assert!((store.mem_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(HashStore::new(None).mem_fraction(), 0.0);
    }
}
