//! Cost receipts: the physical footprint of an engine operation.
//!
//! Engines in this crate do real data-structure work but never sleep or
//! touch a real disk. Instead every call returns a [`CostReceipt`]
//! describing what the operation *would* cost on hardware: how many index
//! nodes / table probes were visited (CPU work) and which disk accesses
//! would be issued (size + access pattern). The store layer converts
//! receipts into simulator plans using its calibrated per-probe CPU cost
//! and the node's disk model, after applying its cache model (a read that
//! hits the page cache drops its `DiskIo`).

/// Classification of one disk access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoClass {
    /// Random read (point lookup in a cold file).
    RandomRead,
    /// Sequential read (scan continuation, compaction input).
    SeqRead,
    /// Random write (B-tree page write-back).
    RandomWrite,
    /// Sequential write (log append, flush, compaction output).
    SeqWrite,
}

impl IoClass {
    /// Whether this access is a read.
    pub fn is_read(self) -> bool {
        matches!(self, IoClass::RandomRead | IoClass::SeqRead)
    }

    /// Whether this access pays positioning time.
    pub fn is_random(self) -> bool {
        matches!(self, IoClass::RandomRead | IoClass::RandomWrite)
    }
}

/// One disk access of `bytes` bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskIo {
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Access classification.
    pub class: IoClass,
    /// True when this access may be absorbed by the OS page cache /
    /// buffer pool at the store layer's discretion (data reads); false
    /// for accesses that always hit the device (log syncs, flushes).
    pub cacheable: bool,
}

impl DiskIo {
    /// A cacheable random read.
    pub fn random_read(bytes: u64) -> DiskIo {
        DiskIo {
            bytes,
            class: IoClass::RandomRead,
            cacheable: true,
        }
    }

    /// A cacheable sequential read.
    pub fn seq_read(bytes: u64) -> DiskIo {
        DiskIo {
            bytes,
            class: IoClass::SeqRead,
            cacheable: true,
        }
    }

    /// An uncacheable sequential write (log append, flush).
    pub fn seq_write(bytes: u64) -> DiskIo {
        DiskIo {
            bytes,
            class: IoClass::SeqWrite,
            cacheable: false,
        }
    }

    /// An uncacheable random write (page write-back).
    pub fn random_write(bytes: u64) -> DiskIo {
        DiskIo {
            bytes,
            class: IoClass::RandomWrite,
            cacheable: false,
        }
    }
}

/// Aggregate footprint of one engine call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostReceipt {
    /// Data-structure node visits / hash probes / comparison batches —
    /// the CPU-bound part of the operation. One probe ≈ one cache-missing
    /// pointer chase plus associated comparisons.
    pub probes: u64,
    /// Bytes of payload handled (serialisation cost scales with this).
    pub bytes_touched: u64,
    /// Disk accesses that would be issued.
    pub io: Vec<DiskIo>,
}

impl CostReceipt {
    /// An empty receipt.
    pub fn new() -> CostReceipt {
        CostReceipt::default()
    }

    /// Adds probes.
    pub fn probe(&mut self, n: u64) -> &mut Self {
        self.probes += n;
        self
    }

    /// Adds payload bytes.
    pub fn touch(&mut self, bytes: u64) -> &mut Self {
        self.bytes_touched += bytes;
        self
    }

    /// Adds a disk access.
    pub fn add_io(&mut self, io: DiskIo) -> &mut Self {
        self.io.push(io);
        self
    }

    /// Merges another receipt into this one.
    pub fn absorb(&mut self, other: CostReceipt) -> &mut Self {
        self.probes += other.probes;
        self.bytes_touched += other.bytes_touched;
        self.io.extend(other.io);
        self
    }

    /// Total bytes across all disk accesses.
    pub fn io_bytes(&self) -> u64 {
        self.io.iter().map(|io| io.bytes).sum()
    }

    /// Number of read accesses.
    pub fn read_ios(&self) -> usize {
        self.io.iter().filter(|io| io.class.is_read()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_class_flags() {
        assert!(IoClass::RandomRead.is_read() && IoClass::RandomRead.is_random());
        assert!(IoClass::SeqRead.is_read() && !IoClass::SeqRead.is_random());
        assert!(!IoClass::SeqWrite.is_read() && !IoClass::SeqWrite.is_random());
        assert!(!IoClass::RandomWrite.is_read() && IoClass::RandomWrite.is_random());
    }

    #[test]
    fn constructors_set_cacheability() {
        assert!(DiskIo::random_read(1).cacheable);
        assert!(DiskIo::seq_read(1).cacheable);
        assert!(!DiskIo::seq_write(1).cacheable);
        assert!(!DiskIo::random_write(1).cacheable);
    }

    #[test]
    fn absorb_accumulates_everything() {
        let mut a = CostReceipt::new();
        a.probe(2).touch(75).add_io(DiskIo::seq_write(100));
        let mut b = CostReceipt::new();
        b.probe(3).add_io(DiskIo::random_read(4096));
        a.absorb(b);
        assert_eq!(a.probes, 5);
        assert_eq!(a.bytes_touched, 75);
        assert_eq!(a.io_bytes(), 4196);
        assert_eq!(a.read_ios(), 1);
    }
}
