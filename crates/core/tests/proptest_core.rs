//! Property-based tests of the benchmark core: histogram accuracy, key
//! codec bijectivity, workload mix conformance.

use apm_core::keyspace::{key_for_seq, scramble, SplitRng};
use apm_core::ops::OpKind;
use apm_core::record::MetricKey;
use apm_core::stats::Histogram;
use apm_core::workload::{OpMix, Workload, WorkloadGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn histogram_quantiles_track_exact_values(values in prop::collection::vec(1u64..10_000_000_000, 10..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        let exact_mean = sorted.iter().map(|&v| v as f64).sum::<f64>() / sorted.len() as f64;
        prop_assert!((h.mean() - exact_mean).abs() < 1e-6 * exact_mean.max(1.0));
        for q in [0.1, 0.5, 0.9, 0.99] {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            let exact = sorted[idx] as f64;
            let approx = h.quantile(q) as f64;
            // Log-bucketed: ≤ ~2/32 relative quantisation error, plus the
            // discrete index ambiguity for tiny samples.
            let tolerance = (exact * 0.08).max(2.0);
            prop_assert!(
                (approx - exact).abs() <= tolerance,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn histogram_merge_equals_bulk_recording(
        a in prop::collection::vec(1u64..1_000_000, 1..200),
        b in prop::collection::vec(1u64..1_000_000, 1..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &v in &a { ha.record(v); hall.record(v); }
        for &v in &b { hb.record(v); hall.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.min(), hall.min());
        prop_assert_eq!(ha.max(), hall.max());
        for q in [0.25, 0.5, 0.75, 0.95] {
            prop_assert_eq!(ha.quantile(q), hall.quantile(q));
        }
    }

    #[test]
    fn key_scramble_is_injective_and_keys_roundtrip(seqs in prop::collection::vec(any::<u64>(), 1..200)) {
        let mut unique = std::collections::HashSet::new();
        for &seq in &seqs {
            unique.insert(scramble(seq));
            let key = key_for_seq(seq);
            prop_assert_eq!(MetricKey::from_id(scramble(seq)), key);
            prop_assert_eq!(key.to_id(), Some(scramble(seq)));
        }
        let distinct_inputs: std::collections::HashSet<_> = seqs.iter().collect();
        prop_assert_eq!(unique.len(), distinct_inputs.len());
    }

    #[test]
    fn arbitrary_valid_mixes_generate_conforming_streams(
        read in 0u8..=100,
        scan_budget in 0u8..=100,
    ) {
        let scan = scan_budget.min(100 - read);
        let insert = 100 - read - scan;
        let mix = OpMix::new(read, scan, insert, 0).expect("sums to 100");
        let workload = Workload {
            name: "prop",
            mix,
            distribution: apm_core::keyspace::KeyDistribution::Uniform,
            scan_length: 50,
        };
        let mut generator = WorkloadGenerator::new(workload, 1_000, 11);
        let total = 5_000u64;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..total {
            let op = generator.next_op();
            if op.kind() == OpKind::Insert {
                generator.ack_insert();
            }
            *counts.entry(op.kind()).or_insert(0u64) += 1;
        }
        let pct = |k: OpKind| 100.0 * *counts.get(&k).unwrap_or(&0) as f64 / total as f64;
        prop_assert!((pct(OpKind::Read) - read as f64).abs() < 4.0);
        prop_assert!((pct(OpKind::Scan) - scan as f64).abs() < 4.0);
        prop_assert!((pct(OpKind::Insert) - insert as f64).abs() < 4.0);
    }

    #[test]
    fn rng_next_below_is_unbiased_enough(seed in any::<u64>(), bound in 1u64..50) {
        let mut rng = SplitRng::new(seed);
        let mut counts = vec![0u32; bound as usize];
        let n = 2_000 * bound as usize;
        for _ in 0..n {
            counts[rng.next_below(bound) as usize] += 1;
        }
        let expectation = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) > expectation * 0.7 && (c as f64) < expectation * 1.3,
                "bucket {i} count {c} vs expectation {expectation}"
            );
        }
    }

    #[test]
    fn generator_reads_target_existing_records(initial in 1u64..5_000) {
        let mut generator = WorkloadGenerator::new(Workload::r(), initial, 23);
        for _ in 0..500 {
            match generator.next_op() {
                apm_core::ops::Operation::Read { key } => {
                    let id = key.to_id().expect("benchmark key");
                    // The read key must be the scramble of some seq < acked.
                    let found = (0..generator.record_count()).any(|s| scramble(s) == id);
                    prop_assert!(found, "read of nonexistent record");
                    break; // One verification per case keeps this O(n).
                }
                apm_core::ops::Operation::Insert { .. } => generator.ack_insert(),
                _ => {}
            }
        }
    }
}
