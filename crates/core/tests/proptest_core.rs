//! Randomized-property tests of the benchmark core: histogram accuracy,
//! key codec bijectivity, workload mix conformance.
//!
//! These used to run under `proptest`; the workspace now builds fully
//! offline, so the same invariants are exercised with seeded
//! `SplitRng`-driven case loops (deterministic, no shrinking — the case
//! index is printed on failure instead).

use apm_core::keyspace::{key_for_seq, scramble, KeyDistribution, SplitRng};
use apm_core::ops::{OpKind, Operation};
use apm_core::record::MetricKey;
use apm_core::stats::Histogram;
use apm_core::workload::{OpMix, Workload, WorkloadGenerator};

const CASES: u64 = 64;

#[test]
fn histogram_quantiles_track_exact_values() {
    let mut root = SplitRng::new(0x4869_7374);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let len = 10 + rng.next_below(490) as usize;
        let values: Vec<u64> = (0..len)
            .map(|_| 1 + rng.next_below(10_000_000_000 - 1))
            .collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(h.count(), values.len() as u64, "case {case}");
        assert_eq!(h.min(), sorted[0], "case {case}");
        assert_eq!(h.max(), *sorted.last().unwrap(), "case {case}");
        let exact_mean = sorted.iter().map(|&v| v as f64).sum::<f64>() / sorted.len() as f64;
        assert!(
            (h.mean() - exact_mean).abs() < 1e-6 * exact_mean.max(1.0),
            "case {case}"
        );
        for q in [0.1, 0.5, 0.9, 0.99] {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            let exact = sorted[idx] as f64;
            let approx = h.quantile(q) as f64;
            // Log-bucketed: ≤ ~2/32 relative quantisation error, plus the
            // discrete index ambiguity for tiny samples.
            let tolerance = (exact * 0.08).max(2.0);
            assert!(
                (approx - exact).abs() <= tolerance,
                "case {case} q={q}: approx {approx} vs exact {exact}"
            );
        }
    }
}

#[test]
fn histogram_merge_equals_bulk_recording() {
    let mut root = SplitRng::new(0x6D65_7267);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let sample = |rng: &mut SplitRng| -> Vec<u64> {
            let len = 1 + rng.next_below(199) as usize;
            (0..len).map(|_| 1 + rng.next_below(999_999)).collect()
        };
        let a = sample(&mut rng);
        let b = sample(&mut rng);
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        assert_eq!(ha.count(), hall.count(), "case {case}");
        assert_eq!(ha.min(), hall.min(), "case {case}");
        assert_eq!(ha.max(), hall.max(), "case {case}");
        for q in [0.25, 0.5, 0.75, 0.95] {
            assert_eq!(ha.quantile(q), hall.quantile(q), "case {case} q={q}");
        }
    }
}

#[test]
fn key_scramble_is_injective_and_keys_roundtrip() {
    let mut root = SplitRng::new(0x6B65_7973);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let len = 1 + rng.next_below(199) as usize;
        let seqs: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
        let mut unique = std::collections::HashSet::new();
        for &seq in &seqs {
            unique.insert(scramble(seq));
            let key = key_for_seq(seq);
            assert_eq!(MetricKey::from_id(scramble(seq)), key, "case {case}");
            assert_eq!(key.to_id(), Some(scramble(seq)), "case {case}");
        }
        let distinct_inputs: std::collections::HashSet<_> = seqs.iter().collect();
        assert_eq!(unique.len(), distinct_inputs.len(), "case {case}");
    }
}

#[test]
fn arbitrary_valid_mixes_generate_conforming_streams() {
    let mut root = SplitRng::new(0x6D69_7865);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let read = rng.next_below(101) as u8;
        let scan = (rng.next_below(101) as u8).min(100 - read);
        let insert = 100 - read - scan;
        let mix = OpMix::new(read, scan, insert, 0).expect("sums to 100");
        let workload = Workload {
            name: "prop",
            mix,
            distribution: KeyDistribution::Uniform,
            scan_length: 50,
        };
        let mut generator = WorkloadGenerator::new(workload, 1_000, 11);
        let total = 5_000u64;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..total {
            let op = generator.next_op();
            if op.kind() == OpKind::Insert {
                generator.ack_insert();
            }
            *counts.entry(op.kind()).or_insert(0u64) += 1;
        }
        let pct = |k: OpKind| 100.0 * *counts.get(&k).unwrap_or(&0) as f64 / total as f64;
        assert!(
            (pct(OpKind::Read) - read as f64).abs() < 4.0,
            "case {case} read mix"
        );
        assert!(
            (pct(OpKind::Scan) - scan as f64).abs() < 4.0,
            "case {case} scan mix"
        );
        assert!(
            (pct(OpKind::Insert) - insert as f64).abs() < 4.0,
            "case {case} insert mix"
        );
    }
}

#[test]
fn rng_next_below_is_unbiased_enough() {
    let mut root = SplitRng::new(0x756E_6266);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let seed = rng.next_u64();
        let bound = 1 + rng.next_below(49);
        let mut sampler = SplitRng::new(seed);
        let mut counts = vec![0u32; bound as usize];
        let n = 2_000 * bound as usize;
        for _ in 0..n {
            counts[sampler.next_below(bound) as usize] += 1;
        }
        let expectation = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expectation * 0.7 && (c as f64) < expectation * 1.3,
                "case {case} bucket {i} count {c} vs expectation {expectation}"
            );
        }
    }
}

#[test]
fn generator_reads_target_existing_records() {
    let mut root = SplitRng::new(0x7265_6164);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let initial = 1 + rng.next_below(4_999);
        let mut generator = WorkloadGenerator::new(Workload::r(), initial, 23);
        for _ in 0..500 {
            match generator.next_op() {
                Operation::Read { key } => {
                    let id = key.to_id().expect("benchmark key");
                    // The read key must be the scramble of some seq < acked.
                    let found = (0..generator.record_count()).any(|s| scramble(s) == id);
                    assert!(found, "case {case}: read of nonexistent record");
                    break; // One verification per case keeps this O(n).
                }
                Operation::Insert { .. } => generator.ack_insert(),
                _ => {}
            }
        }
    }
}
