//! Golden-file test pinning the apm-snap container format.
//!
//! The checked-in `tests/data/snap_golden.bin` was produced by this test
//! (run with `SNAP_GOLDEN_UPDATE=1` to regenerate after an intentional
//! format change — which must also bump `apm_core::snap::VERSION`). Any
//! unintentional encoding drift fails the byte comparison.

use apm_core::snap::{self, SnapError, SnapReader, SnapWriter, SnapshotHeader};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("snap_golden.bin")
}

/// A fixed structure exercising every primitive the format defines.
fn golden_bytes() -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put(&0x42u8);
    w.put(&0xBEEFu16);
    w.put(&0xDEAD_BEEFu32);
    w.put(&0x0123_4567_89AB_CDEFu64);
    w.put(&(u128::from(u64::MAX) + 7));
    w.put(&true);
    w.put(&false);
    w.put(&1.5f64);
    w.put(&"snapshot".to_string());
    w.put(&Some(99u64));
    w.put(&None::<u64>);
    w.put(&vec![3u64, 1, 4, 1, 5]);
    w.put(&[9u32, 8, 7].into_iter().collect::<VecDeque<u32>>());
    w.put(
        &[("lsm".to_string(), 1u64), ("wal".to_string(), 2)]
            .into_iter()
            .collect::<BTreeMap<String, u64>>(),
    );
    let header = SnapshotHeader {
        scenario: "golden".to_string(),
        config_fingerprint: 0xF1F2_F3F4_F5F6_F7F8,
        features: snap::FEATURE_AUDIT,
        checkpoint_index: 2,
        virtual_time_ns: 30_000_000_000,
    };
    snap::seal(&header, w.bytes())
}

#[test]
fn container_bytes_match_the_golden_file() {
    let produced = golden_bytes();
    let path = golden_path();
    if std::env::var_os("SNAP_GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &produced).unwrap();
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with SNAP_GOLDEN_UPDATE=1",
            path.display()
        )
    });
    assert_eq!(
        produced, golden,
        "snapshot encoding drifted from the golden file — if intentional, bump snap::VERSION and regenerate"
    );
}

#[test]
fn golden_file_still_opens_and_decodes() {
    let golden = std::fs::read(golden_path()).expect("golden file present");
    let (header, body) = snap::open(&golden).unwrap();
    assert_eq!(header.scenario, "golden");
    assert_eq!(header.checkpoint_index, 2);
    assert_eq!(header.virtual_time_ns, 30_000_000_000);
    let mut r = SnapReader::new(body);
    assert_eq!(r.get::<u8>().unwrap(), 0x42);
    assert_eq!(r.get::<u16>().unwrap(), 0xBEEF);
    assert_eq!(r.get::<u32>().unwrap(), 0xDEAD_BEEF);
    assert_eq!(r.get::<u64>().unwrap(), 0x0123_4567_89AB_CDEF);
    assert_eq!(r.get::<u128>().unwrap(), u128::from(u64::MAX) + 7);
    assert!(r.get::<bool>().unwrap());
    assert!(!r.get::<bool>().unwrap());
    assert_eq!(r.get::<f64>().unwrap(), 1.5);
    assert_eq!(r.get::<String>().unwrap(), "snapshot");
    assert_eq!(r.get::<Option<u64>>().unwrap(), Some(99));
    assert_eq!(r.get::<Option<u64>>().unwrap(), None);
    assert_eq!(r.get::<Vec<u64>>().unwrap(), vec![3, 1, 4, 1, 5]);
    assert_eq!(
        r.get::<VecDeque<u32>>().unwrap(),
        [9u32, 8, 7].into_iter().collect::<VecDeque<u32>>()
    );
    let map: BTreeMap<String, u64> = r.get().unwrap();
    assert_eq!(map.get("lsm"), Some(&1));
    assert_eq!(map.get("wal"), Some(&2));
    r.finish().unwrap();
}

#[test]
fn version_bump_is_rejected() {
    let mut bytes = golden_bytes();
    let bumped = (snap::VERSION + 1).to_le_bytes();
    bytes[4] = bumped[0];
    bytes[5] = bumped[1];
    let len = bytes.len();
    let checksum = snap::fnv1a64(&bytes[..len - 8]).to_le_bytes();
    bytes[len - 8..].copy_from_slice(&checksum);
    assert_eq!(
        snap::open(&bytes).unwrap_err(),
        SnapError::VersionMismatch {
            found: snap::VERSION + 1,
            expected: snap::VERSION
        }
    );
}
