//! # apm-core
//!
//! The benchmark core of the Rabl et al. (VLDB 2012) reproduction: the APM
//! data model, the five Table-1 workloads, YCSB-style key generation, the
//! closed-loop client population model, and latency/throughput statistics.
//!
//! The paper's benchmark is a YCSB derivative specialised for Application
//! Performance Management (APM): records are tiny (75 bytes raw — a 25-byte
//! alphanumeric key plus five 10-byte fields), the workload is append-only
//! and write-dominated (up to 100:1 write:read), and reads are either point
//! lookups of the most recent value or small scans (50 records) used for
//! sliding-window aggregates.
//!
//! This crate is storage-agnostic: the simulated stores in `apm-stores`
//! consume [`ops::Operation`]s produced by [`workload::WorkloadGenerator`]
//! and report latencies into [`stats::BenchStats`].

pub mod chaos;
pub mod driver;
pub mod keyspace;
pub mod metric;
pub mod ops;
pub mod record;
pub mod report;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod timeseries;
pub mod workload;

pub use ops::{OpKind, Operation};
pub use record::{
    FieldValues, MetricKey, Record, FIELD_COUNT, FIELD_SIZE, KEY_SIZE, RAW_RECORD_SIZE,
};
pub use stats::{BenchStats, Histogram};
pub use workload::{OpMix, Workload, WorkloadGenerator};
