//! Plain-text and CSV rendering of benchmark results.
//!
//! The harness prints one table per paper figure: rows are node counts (or
//! workloads), columns are stores, cells are throughput or latency. The
//! same data is emitted as CSV for plotting.

use std::fmt::Write as _;

/// A rectangular results table with row and column labels.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (e.g. "Figure 3: Throughput for Workload R").
    pub title: String,
    /// Label of the row dimension (e.g. "nodes").
    pub row_label: String,
    /// Column headers (store names).
    pub columns: Vec<String>,
    /// Row headers (node counts / workload names).
    pub rows: Vec<String>,
    /// Cell values; `None` renders as "-" (store not tested, §5.4/§5.8).
    pub cells: Vec<Vec<Option<f64>>>,
    /// Unit string appended to the title (e.g. "ops/sec", "ms").
    pub unit: String,
}

impl Table {
    /// Creates an empty table with the given shape metadata.
    pub fn new(title: &str, row_label: &str, unit: &str) -> Self {
        Table {
            title: title.to_string(),
            row_label: row_label.to_string(),
            unit: unit.to_string(),
            ..Table::default()
        }
    }

    /// Appends a row of cells.
    ///
    /// # Panics
    /// Panics if `cells.len()` does not match the number of columns.
    pub fn push_row(&mut self, row: &str, cells: Vec<Option<f64>>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push(row.to_string());
        self.cells.push(cells);
    }

    /// Looks up a cell by row and column label.
    pub fn get(&self, row: &str, column: &str) -> Option<f64> {
        let r = self.rows.iter().position(|x| x == row)?;
        let c = self.columns.iter().position(|x| x == column)?;
        self.cells[r][c]
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} [{}]", self.title, self.unit);
        let mut widths: Vec<usize> = Vec::with_capacity(self.columns.len() + 1);
        widths.push(
            self.rows
                .iter()
                .map(String::len)
                .chain([self.row_label.len()])
                .max()
                .unwrap_or(4),
        );
        for (c, col) in self.columns.iter().enumerate() {
            let w = self
                .cells
                .iter()
                .map(|row| format_cell(row[c]).len())
                .chain([col.len()])
                .max()
                .unwrap_or(4);
            widths.push(w);
        }
        let _ = write!(out, "{:>w$}", self.row_label, w = widths[0]);
        for (col, w) in self.columns.iter().zip(&widths[1..]) {
            let _ = write!(out, "  {col:>w$}");
        }
        out.push('\n');
        for (row, cells) in self.rows.iter().zip(&self.cells) {
            let _ = write!(out, "{:>w$}", row, w = widths[0]);
            for (cell, w) in cells.iter().zip(&widths[1..]) {
                let _ = write!(out, "  {:>w$}", format_cell(*cell));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (first column is the row label).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.row_label);
        for col in &self.columns {
            let _ = write!(out, ",{col}");
        }
        out.push('\n');
        for (row, cells) in self.rows.iter().zip(&self.cells) {
            let _ = write!(out, "{row}");
            for cell in cells {
                match cell {
                    Some(v) => {
                        let _ = write!(out, ",{v}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

fn format_cell(cell: Option<f64>) -> String {
    match cell {
        None => "-".to_string(),
        Some(0.0) => "0".to_string(),
        Some(v) if v.abs() >= 1000.0 => format!("{v:.0}"),
        Some(v) if v.abs() >= 10.0 => format!("{v:.1}"),
        Some(v) if v.abs() >= 0.1 => format!("{v:.2}"),
        Some(v) => format!("{v:.4}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Figure X", "nodes", "ops/sec");
        t.columns = vec!["cassandra".into(), "hbase".into()];
        t.push_row("1", vec![Some(25_000.0), Some(2_500.0)]);
        t.push_row("12", vec![Some(180_000.0), None]);
        t
    }

    #[test]
    fn get_retrieves_cells_by_label() {
        let t = sample();
        assert_eq!(t.get("1", "hbase"), Some(2_500.0));
        assert_eq!(t.get("12", "hbase"), None);
        assert_eq!(t.get("99", "hbase"), None);
        assert_eq!(t.get("1", "redis"), None);
    }

    #[test]
    fn render_contains_all_labels_and_values() {
        let text = sample().render();
        for needle in [
            "Figure X",
            "ops/sec",
            "nodes",
            "cassandra",
            "hbase",
            "25000",
            "180000",
            "-",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn csv_shape_is_rows_plus_header() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "nodes,cassandra,hbase");
        assert_eq!(lines[1], "1,25000,2500");
        assert_eq!(lines[2], "12,180000,");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = sample();
        t.push_row("2", vec![Some(1.0)]);
    }

    #[test]
    fn cell_formatting_scales_precision() {
        assert_eq!(format_cell(Some(123456.0)), "123456");
        assert_eq!(format_cell(Some(12.34)), "12.3");
        assert_eq!(format_cell(Some(0.5)), "0.50");
        assert_eq!(format_cell(Some(0.012)), "0.0120");
        assert_eq!(format_cell(None), "-");
    }
}
