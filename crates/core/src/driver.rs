//! Closed-loop client population model.
//!
//! §3 of the paper: *"Our workloads were generated using 128 connections
//! per server node, i.e., 8 connections per core in Cluster M. In Cluster
//! D, we reduced the number of connection to 2 per core ... we scaled the
//! number of threads from 128 for one node up to 1536 for 12 nodes, all of
//! them working as intensively as possible."*
//!
//! Each connection is a closed-loop client: it issues one operation, waits
//! for the response, then immediately issues the next (maximum-throughput
//! mode) or waits until its next scheduled issue time (bounded-throughput
//! mode, used for the §5.6 experiment). With closed loops, Little's law
//! ties concurrency, throughput and latency: `latency ≈ clients /
//! throughput` at saturation — the reason the paper's latencies are "much
//! higher than in previously published measurements" (§8).

/// How fast the client population issues operations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Throttle {
    /// Issue as fast as responses return (maximum sustainable throughput).
    Unlimited,
    /// Target a fixed aggregate rate in operations per second, spread
    /// evenly over the clients (§5.6 bounded-throughput experiment).
    TargetOps(f64),
}

/// Description of the client population for one run.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientConfig {
    /// Total number of closed-loop clients (connections).
    pub connections: u32,
    /// Throughput limit.
    pub throttle: Throttle,
    /// Benchmark warm-up, excluded from statistics, in simulated seconds.
    pub warmup_secs: f64,
    /// Measurement window in simulated seconds (paper: 600 s; scaled runs
    /// use less — see DESIGN.md §1 "Scale factor").
    pub measure_secs: f64,
}

impl ClientConfig {
    /// The paper's Cluster-M population: 128 connections per server node,
    /// unlimited rate.
    pub fn cluster_m(server_nodes: u32) -> Self {
        ClientConfig {
            connections: 128 * server_nodes,
            throttle: Throttle::Unlimited,
            warmup_secs: 2.0,
            measure_secs: 30.0,
        }
    }

    /// The paper's Cluster-D population: 2 connections per core × 4 cores.
    pub fn cluster_d(server_nodes: u32) -> Self {
        ClientConfig {
            connections: 8 * server_nodes,
            throttle: Throttle::Unlimited,
            warmup_secs: 2.0,
            measure_secs: 30.0,
        }
    }

    /// Caps the total connection count (the Voldemort client was limited
    /// to far fewer threads/connections, §6; Redis needed fewer threads
    /// per client node, §6).
    pub fn with_max_connections(mut self, max: u32) -> Self {
        self.connections = self.connections.min(max);
        self
    }

    /// Replaces the throttle.
    pub fn with_throttle(mut self, throttle: Throttle) -> Self {
        self.throttle = throttle;
        self
    }

    /// Scales the measurement window (used by fast test/bench profiles).
    pub fn with_window(mut self, warmup_secs: f64, measure_secs: f64) -> Self {
        self.warmup_secs = warmup_secs;
        self.measure_secs = measure_secs;
        self
    }

    /// Per-client issue interval in seconds under the current throttle
    /// (`None` when unlimited).
    pub fn issue_interval_secs(&self) -> Option<f64> {
        match self.throttle {
            Throttle::Unlimited => None,
            Throttle::TargetOps(rate) => {
                assert!(rate > 0.0, "target rate must be positive");
                Some(self.connections as f64 / rate)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_m_uses_128_connections_per_node() {
        // §3: "128 connections per server node ... up to 1536 for 12 nodes".
        assert_eq!(ClientConfig::cluster_m(1).connections, 128);
        assert_eq!(ClientConfig::cluster_m(12).connections, 1536);
    }

    #[test]
    fn cluster_d_uses_2_connections_per_core() {
        // Cluster D nodes have 2×dual-core CPUs = 4 cores; 2/core = 8/node.
        assert_eq!(ClientConfig::cluster_d(8).connections, 64);
    }

    #[test]
    fn connection_cap_applies() {
        let cfg = ClientConfig::cluster_m(12).with_max_connections(60);
        assert_eq!(cfg.connections, 60);
        // A cap above the population is a no-op.
        assert_eq!(
            ClientConfig::cluster_m(1)
                .with_max_connections(10_000)
                .connections,
            128
        );
    }

    #[test]
    fn issue_interval_matches_target_rate() {
        let cfg = ClientConfig::cluster_m(1).with_throttle(Throttle::TargetOps(1_000.0));
        // 128 clients at 1000 ops/s aggregate → one op per client every 0.128 s.
        assert!((cfg.issue_interval_secs().unwrap() - 0.128).abs() < 1e-12);
        assert!(ClientConfig::cluster_m(1).issue_interval_secs().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_rate_is_rejected() {
        let _ = ClientConfig::cluster_m(1)
            .with_throttle(Throttle::TargetOps(0.0))
            .issue_interval_secs();
    }
}
