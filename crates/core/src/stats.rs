//! Latency histograms and benchmark statistics.
//!
//! The paper reports average operation latencies on logarithmic axes and
//! maximum sustainable throughput. We record latencies in a log-bucketed
//! histogram (HDR-style: power-of-two buckets with linear sub-buckets,
//! ~1.6 % relative error) so percentiles are available too — useful for
//! the bounded-throughput experiment (§5.6) and extensions.

use crate::ops::OpKind;
use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::collections::BTreeMap;

/// Number of linear sub-buckets per power-of-two bucket. 32 sub-buckets
/// bound the relative quantisation error by 1/32 ≈ 3 %.
const SUB_BUCKETS: usize = 32;
const SUB_BUCKET_BITS: u32 = 5;
/// Number of power-of-two buckets — enough to cover the full `u64` range.
const BUCKETS: usize = 60;

/// A log-bucketed latency histogram over `u64` nanosecond values.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_for(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        // Normalise the value to a mantissa in [32, 64): the implicit top
        // bit plus SUB_BUCKET_BITS explicit bits. Bucket b >= 1 covers
        // values in [32 << (b-1), 64 << (b-1)).
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BUCKET_BITS;
        let bucket = (shift + 1) as usize;
        let sub = (value >> shift) as usize & (SUB_BUCKETS - 1);
        (bucket.min(BUCKETS - 1)) * SUB_BUCKETS + sub
    }

    /// Lower bound of the value range covered by slot `index`.
    fn value_for(index: usize) -> u64 {
        let bucket = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if bucket == 0 {
            sub
        } else {
            (SUB_BUCKETS as u64 + sub) << (bucket - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_for(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact arithmetic mean of the recorded samples.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`), with ~3 % relative
    /// quantisation error.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value_for(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl Snap for Histogram {
    fn snap(&self, w: &mut SnapWriter) {
        // Sparse encoding: most of the 1920 slots are empty in short runs.
        let occupied: Vec<(u64, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u64, c))
            .collect();
        w.put(&occupied);
        w.put_u64(self.total);
        w.put_u128(self.sum);
        w.put_u64(self.min);
        w.put_u64(self.max);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        let occupied: Vec<(u64, u64)> = r.get()?;
        let mut h = Histogram::new();
        for (i, c) in occupied {
            let slot = h.counts.get_mut(i as usize).ok_or(SnapError::BadTag {
                what: "Histogram slot",
                tag: i,
            })?;
            *slot = c;
        }
        h.total = r.u64()?;
        h.sum = r.u128()?;
        h.min = r.u64()?;
        h.max = r.u64()?;
        Ok(h)
    }
}

/// Client-side resilience-policy activity over one benchmark run
/// (retries, hedged reads, circuit-breaker transitions, load shedding).
/// All zero when no policy is configured.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceCounters {
    /// Retry attempts issued (beyond each op's primary attempt).
    pub retries: u64,
    /// Hedged (speculative duplicate) reads issued.
    pub hedges: u64,
    /// Hedged reads that finished before their primary and succeeded.
    pub hedge_wins: u64,
    /// Circuit-breaker state transitions across all targets.
    pub breaker_transitions: u64,
    /// Operations or extra attempts shed by a breaker or the admission
    /// budget (counted as rejections, not errors).
    pub shed: u64,
}

impl ResilienceCounters {
    /// Adds another run's counters into this one.
    pub fn merge(&mut self, other: &ResilienceCounters) {
        self.retries += other.retries;
        self.hedges += other.hedges;
        self.hedge_wins += other.hedge_wins;
        self.breaker_transitions += other.breaker_transitions;
        self.shed += other.shed;
    }
}

impl Snap for ResilienceCounters {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.retries);
        w.put_u64(self.hedges);
        w.put_u64(self.hedge_wins);
        w.put_u64(self.breaker_transitions);
        w.put_u64(self.shed);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(ResilienceCounters {
            retries: r.u64()?,
            hedges: r.u64()?,
            hedge_wins: r.u64()?,
            breaker_transitions: r.u64()?,
            shed: r.u64()?,
        })
    }
}

/// Aggregated results of one benchmark run.
#[derive(Clone, Debug, Default)]
pub struct BenchStats {
    /// Latency histograms per operation kind (nanoseconds).
    per_kind: BTreeMap<OpKind, Histogram>,
    /// Operations rejected by the store, per kind.
    rejected: BTreeMap<OpKind, u64>,
    /// Operations that errored (node down, timeout, lost data), per kind.
    errors: BTreeMap<OpKind, u64>,
    /// Measurement window length in nanoseconds.
    window_ns: u64,
    /// Completed operations per one-second bucket since window start
    /// (the throughput timeline used by the elasticity experiment).
    timeline: Vec<u64>,
    /// Errored operations per one-second bucket since window start.
    error_timeline: Vec<u64>,
    /// Resilience-policy activity (zero without a policy).
    resilience: ResilienceCounters,
}

impl BenchStats {
    /// Creates empty stats.
    pub fn new() -> Self {
        BenchStats::default()
    }

    /// Records a completed operation of `kind` with the given latency.
    pub fn record(&mut self, kind: OpKind, latency_ns: u64) {
        self.per_kind.entry(kind).or_default().record(latency_ns);
    }

    /// Records a completion at `offset_ns` past the window start on the
    /// per-second throughput timeline.
    pub fn record_timeline(&mut self, offset_ns: u64) {
        let bucket = (offset_ns / 1_000_000_000) as usize;
        if bucket >= self.timeline.len() {
            self.timeline.resize(bucket + 1, 0);
        }
        self.timeline[bucket] += 1;
    }

    /// Per-second completed-operation counts since the window start.
    pub fn timeline(&self) -> &[u64] {
        &self.timeline
    }

    /// Records a rejected operation.
    pub fn record_rejection(&mut self, kind: OpKind) {
        *self.rejected.entry(kind).or_default() += 1;
    }

    /// Records an errored operation (connection refused, timed out, or
    /// data lost to a crash) at `offset_ns` past the window start.
    pub fn record_error(&mut self, kind: OpKind, offset_ns: u64) {
        *self.errors.entry(kind).or_default() += 1;
        let bucket = (offset_ns / 1_000_000_000) as usize;
        if bucket >= self.error_timeline.len() {
            self.error_timeline.resize(bucket + 1, 0);
        }
        self.error_timeline[bucket] += 1;
    }

    /// Per-second errored-operation counts since the window start.
    pub fn error_timeline(&self) -> &[u64] {
        &self.error_timeline
    }

    /// Total errored operations.
    pub fn total_errors(&self) -> u64 {
        self.errors.values().sum()
    }

    /// Errored operation count for `kind`.
    pub fn errors(&self, kind: OpKind) -> u64 {
        self.errors.get(&kind).copied().unwrap_or(0)
    }

    /// Fraction of attempted operations that succeeded (1.0 with no
    /// errors; rejections are back-pressure, not failures, and don't
    /// count against availability).
    pub fn availability(&self) -> f64 {
        let ok = self.total_ops();
        let attempted = ok + self.total_errors();
        if attempted == 0 {
            1.0
        } else {
            ok as f64 / attempted as f64
        }
    }

    /// Seconds from `restore_sec` until per-second throughput first
    /// sustains ≥ `threshold` × the pre-fault baseline (the mean of the
    /// seconds strictly before `fault_sec`). `None` when throughput never
    /// recovers inside the window.
    pub fn recovery_secs(
        &self,
        fault_sec: usize,
        restore_sec: usize,
        threshold: f64,
    ) -> Option<u64> {
        let pre: &[u64] = self.timeline.get(..fault_sec)?;
        if pre.is_empty() {
            return None;
        }
        let baseline = pre.iter().sum::<u64>() as f64 / pre.len() as f64;
        let target = baseline * threshold;
        for (i, &ops) in self.timeline.iter().enumerate().skip(restore_sec) {
            if ops as f64 >= target {
                return Some((i - restore_sec) as u64);
            }
        }
        None
    }

    /// Sets the measurement window (for throughput computation).
    pub fn set_window_ns(&mut self, window_ns: u64) {
        self.window_ns = window_ns;
    }

    /// Measurement window in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Total successful operations across kinds.
    pub fn total_ops(&self) -> u64 {
        self.per_kind.values().map(Histogram::count).sum()
    }

    /// Total rejected operations.
    pub fn total_rejected(&self) -> u64 {
        self.rejected.values().sum()
    }

    /// Overall throughput in operations per second.
    pub fn throughput(&self) -> f64 {
        if self.window_ns == 0 {
            0.0
        } else {
            self.total_ops() as f64 * 1e9 / self.window_ns as f64
        }
    }

    /// Mean latency of `kind` in milliseconds, or `None` if no sample.
    pub fn mean_latency_ms(&self, kind: OpKind) -> Option<f64> {
        self.per_kind
            .get(&kind)
            .filter(|h| h.count() > 0)
            .map(|h| h.mean() / 1e6)
    }

    /// Quantile latency of `kind` in milliseconds.
    pub fn quantile_latency_ms(&self, kind: OpKind, q: f64) -> Option<f64> {
        self.per_kind
            .get(&kind)
            .filter(|h| h.count() > 0)
            .map(|h| h.quantile(q) as f64 / 1e6)
    }

    /// Successful operation count for `kind`.
    pub fn ops(&self, kind: OpKind) -> u64 {
        self.per_kind.get(&kind).map_or(0, Histogram::count)
    }

    /// Histogram for `kind`, if any sample was recorded.
    pub fn histogram(&self, kind: OpKind) -> Option<&Histogram> {
        self.per_kind.get(&kind)
    }

    /// Resilience-policy counters (all zero without a policy).
    pub fn resilience(&self) -> &ResilienceCounters {
        &self.resilience
    }

    /// Mutable resilience counters, for the benchmark driver.
    pub fn resilience_mut(&mut self) -> &mut ResilienceCounters {
        &mut self.resilience
    }

    /// Merges another run's stats (used to average repeated executions,
    /// §3: "the reported results are the average of at least 3
    /// independent executions").
    pub fn merge(&mut self, other: &BenchStats) {
        for (kind, hist) in &other.per_kind {
            self.per_kind.entry(*kind).or_default().merge(hist);
        }
        for (kind, n) in &other.rejected {
            *self.rejected.entry(*kind).or_default() += n;
        }
        for (kind, n) in &other.errors {
            *self.errors.entry(*kind).or_default() += n;
        }
        self.window_ns += other.window_ns;
        self.resilience.merge(&other.resilience);
    }
}

impl Snap for BenchStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.per_kind);
        w.put(&self.rejected);
        w.put(&self.errors);
        w.put_u64(self.window_ns);
        w.put(&self.timeline);
        w.put(&self.error_timeline);
        w.put(&self.resilience);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(BenchStats {
            per_kind: r.get()?,
            rejected: r.get()?,
            errors: r.get()?,
            window_ns: r.u64()?,
            timeline: r.get()?,
            error_timeline: r.get()?,
            resilience: r.get()?,
        })
    }
}

/// Utilisation and queue depth of one resource class over one window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResourceSample {
    /// Fraction of the class's server-time spent busy during the window.
    pub utilization: f64,
    /// Waiting requests (not in service) sampled at the window boundary.
    pub queue_depth: f64,
}

impl Snap for ResourceSample {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(self.utilization);
        w.put_f64(self.queue_depth);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(ResourceSample {
            utilization: r.f64()?,
            queue_depth: r.f64()?,
        })
    }
}

/// One telemetry window: op counts, a latency histogram, and per-class
/// resource samples.
#[derive(Clone, Debug, Default)]
pub struct TelemetryWindow {
    ops: u64,
    errors: u64,
    /// Operations the store or a resilience policy rejected/shed in this
    /// window (back-pressure, not failures — excluded from [`Self::ops`]
    /// and [`Self::error_rate`]).
    rejected: u64,
    latency: Histogram,
    /// Samples keyed by resource class (ordered map: iteration order must
    /// not depend on insertion history).
    resources: BTreeMap<String, ResourceSample>,
}

impl TelemetryWindow {
    /// Operations completed in this window.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Operations that errored in this window.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Operations rejected or shed in this window.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Operations attempted in this window that got a response: completed
    /// plus rejected (the per-second `timeline` semantics of
    /// [`BenchStats`]; errors are excluded, matching its throughput
    /// timeline).
    pub fn responded(&self) -> u64 {
        self.ops + self.rejected
    }

    /// Fraction of this window's attempted operations that errored.
    pub fn error_rate(&self) -> f64 {
        let attempted = self.ops + self.errors;
        if attempted == 0 {
            0.0
        } else {
            self.errors as f64 / attempted as f64
        }
    }

    /// Latency histogram of the window's completed operations.
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// `q`-quantile latency of the window in milliseconds.
    pub fn quantile_latency_ms(&self, q: f64) -> f64 {
        self.latency.quantile(q) as f64 / 1e6
    }

    /// Sample for a resource class, if one was taken.
    pub fn resource(&self, class: &str) -> Option<ResourceSample> {
        self.resources.get(class).copied()
    }

    /// All resource classes sampled in this window, in key order.
    pub fn resource_classes(&self) -> impl Iterator<Item = &str> {
        self.resources.keys().map(String::as_str)
    }
}

impl Snap for TelemetryWindow {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.ops);
        w.put_u64(self.errors);
        w.put_u64(self.rejected);
        w.put(&self.latency);
        w.put(&self.resources);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(TelemetryWindow {
            ops: r.u64()?,
            errors: r.u64()?,
            rejected: r.u64()?,
            latency: r.get()?,
            resources: r.get()?,
        })
    }
}

/// Windowed benchmark telemetry: the generalisation of [`BenchStats`]'s
/// one-second `timeline`. Each fixed-size window holds completed/errored
/// op counts, a log-bucketed latency [`Histogram`] (so per-window
/// p50/p95/p99 are available), and per-resource-class utilisation and
/// queue-depth samples taken at window boundaries.
#[derive(Clone, Debug)]
pub struct Telemetry {
    window_ns: u64,
    windows: Vec<TelemetryWindow>,
}

impl Telemetry {
    /// Creates an empty recorder with the given window size.
    ///
    /// # Panics
    /// Panics if `window_ns` is zero.
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0, "telemetry window must be positive");
        Telemetry {
            window_ns,
            windows: Vec::new(),
        }
    }

    /// Window size in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Index of the window containing `offset_ns` past the measurement
    /// start.
    pub fn window_index(&self, offset_ns: u64) -> usize {
        (offset_ns / self.window_ns) as usize
    }

    fn window_at(&mut self, index: usize) -> &mut TelemetryWindow {
        if index >= self.windows.len() {
            self.windows
                .resize_with(index + 1, TelemetryWindow::default);
        }
        &mut self.windows[index]
    }

    /// Records a completed operation at `offset_ns` past the measurement
    /// start with the given latency.
    pub fn record(&mut self, offset_ns: u64, latency_ns: u64) {
        let w = self.window_at((offset_ns / self.window_ns) as usize);
        w.ops += 1;
        w.latency.record(latency_ns);
    }

    /// Records an errored operation at `offset_ns`.
    pub fn record_error(&mut self, offset_ns: u64) {
        self.window_at((offset_ns / self.window_ns) as usize).errors += 1;
    }

    /// Records a rejected/shed operation at `offset_ns`.
    pub fn record_rejection(&mut self, offset_ns: u64) {
        self.window_at((offset_ns / self.window_ns) as usize)
            .rejected += 1;
    }

    /// Stores the boundary sample for `class` in window `index`.
    pub fn sample_resource(&mut self, index: usize, class: &str, sample: ResourceSample) {
        self.window_at(index)
            .resources
            .insert(class.to_string(), sample);
    }

    /// The recorded windows, oldest first.
    pub fn windows(&self) -> &[TelemetryWindow] {
        &self.windows
    }

    /// Throughput of window `index` in operations per second.
    pub fn ops_per_sec(&self, index: usize) -> f64 {
        self.windows
            .get(index)
            .map_or(0.0, |w| w.ops as f64 * 1e9 / self.window_ns as f64)
    }

    /// Mean utilisation of `class` across all windows that sampled it,
    /// reduced with [`pairwise_sum`] so the result is independent of how
    /// callers ordered their windows.
    pub fn mean_utilization(&self, class: &str) -> f64 {
        let samples: Vec<f64> = self
            .windows
            .iter()
            .filter_map(|w| w.resource(class))
            .map(|s| s.utilization)
            .collect();
        if samples.is_empty() {
            0.0
        } else {
            pairwise_sum(&samples) / samples.len() as f64
        }
    }
}

impl Snap for Telemetry {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.window_ns);
        w.put(&self.windows);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        let window_ns = r.u64()?;
        if window_ns == 0 {
            return Err(SnapError::BadTag {
                what: "Telemetry window_ns",
                tag: 0,
            });
        }
        Ok(Telemetry {
            window_ns,
            windows: r.get()?,
        })
    }
}

/// Compensated (Kahan) summation over a float slice.
///
/// The one blessed way to reduce floats in this module: the running
/// compensation term keeps the result independent of magnitude ordering
/// to within one ulp, so aggregate stats stay bit-identical however a
/// caller happens to order its samples. The apm-audit `float-sum` rule
/// bans ad-hoc `fold` reductions here outside kahan/pairwise helpers.
pub fn kahan_sum(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut compensation = 0.0;
    for v in values {
        let y = v - compensation;
        let t = sum + y;
        compensation = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Pairwise (cascade) summation over a float slice — `kahan_sum`'s twin
/// and the other blessed reduction under the apm-audit `float-sum` rule.
///
/// Splitting recursively halves the number of additions any term flows
/// through, bounding the error growth at O(log n) instead of the O(n) of
/// a left fold. Because the reduction tree depends only on the slice
/// *length*, reversing a power-of-two-length slice mirrors the tree and
/// gives the bit-identical result — handy for order-insensitive window
/// averages.
pub fn pairwise_sum(values: &[f64]) -> f64 {
    match values {
        [] => 0.0,
        [a] => *a,
        [a, b] => a + b,
        _ => {
            let mid = values.len() / 2;
            pairwise_sum(&values[..mid]) + pairwise_sum(&values[mid..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_sum_is_order_insensitive_where_naive_fold_is_not() {
        // 1e16 + 1.0 + ... + 1.0 loses every unit under naive folding
        // when the big term comes first; Kahan keeps them all.
        let mut values = vec![1e16];
        values.resize(1001, 1.0);
        let naive: f64 = values.iter().sum();
        let kahan = kahan_sum(values.iter().copied());
        assert_eq!(kahan, 1e16 + 1000.0);
        assert_ne!(naive, kahan, "naive sum should demonstrate the loss");
        // Reversed order gives the identical Kahan result.
        values.reverse();
        assert_eq!(kahan_sum(values.into_iter()), kahan);
    }

    #[test]
    fn pairwise_sum_is_order_insensitive_where_naive_fold_is_not() {
        // A power-of-two length: reversing mirrors the reduction tree,
        // so pairwise summation gives the bit-identical result.
        let mut values = vec![1e16];
        values.resize(1024, 1.0);
        let naive: f64 = values.iter().sum();
        let pairwise = pairwise_sum(&values);
        assert_ne!(naive, 1e16 + 1023.0, "naive sum should demonstrate loss");
        assert!(
            (pairwise - (1e16 + 1023.0)).abs() <= 2.0,
            "pairwise error must stay within a couple of ulps, got {pairwise}"
        );
        values.reverse();
        assert_eq!(pairwise_sum(&values), pairwise);
    }

    #[test]
    fn pairwise_sum_handles_tiny_slices() {
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[1.5]), 1.5);
        assert_eq!(pairwise_sum(&[1.5, 2.5]), 4.0);
        assert_eq!(pairwise_sum(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn telemetry_buckets_ops_and_latencies_by_window() {
        let mut t = Telemetry::new(1_000_000_000);
        t.record(100, 1_000_000); // window 0: 1 ms
        t.record(999_999_999, 3_000_000); // window 0: 3 ms
        t.record(2_500_000_000, 10_000_000); // window 2: 10 ms
        t.record_error(2_600_000_000);
        assert_eq!(t.windows().len(), 3);
        assert_eq!(t.windows()[0].ops(), 2);
        assert_eq!(t.windows()[1].ops(), 0);
        assert_eq!(t.windows()[2].ops(), 1);
        assert_eq!(t.windows()[2].errors(), 1);
        assert!((t.windows()[2].error_rate() - 0.5).abs() < 1e-12);
        assert!((t.ops_per_sec(0) - 2.0).abs() < 1e-12);
        // Per-window quantiles come from the same log-bucketed histogram
        // BenchStats uses, so p99 >= p50 within ~3 % error.
        let w0 = &t.windows()[0];
        assert!(w0.quantile_latency_ms(0.99) >= w0.quantile_latency_ms(0.50));
    }

    #[test]
    fn telemetry_resource_samples_average_pairwise() {
        let mut t = Telemetry::new(1_000_000_000);
        for (i, util) in [0.2, 0.4, 0.6].into_iter().enumerate() {
            t.sample_resource(
                i,
                "cpu",
                ResourceSample {
                    utilization: util,
                    queue_depth: i as f64,
                },
            );
        }
        assert!((t.mean_utilization("cpu") - 0.4).abs() < 1e-12);
        assert_eq!(t.mean_utilization("disk"), 0.0);
        assert_eq!(
            t.windows()[1].resource("cpu"),
            Some(ResourceSample {
                utilization: 0.4,
                queue_depth: 1.0
            })
        );
        assert_eq!(
            t.windows()[0].resource_classes().collect::<Vec<_>>(),
            vec!["cpu"]
        );
    }

    #[test]
    #[should_panic(expected = "window")]
    fn telemetry_zero_window_panics() {
        Telemetry::new(0);
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 20.0).abs() < 1e-9);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn histogram_quantile_error_is_bounded() {
        let mut h = Histogram::new();
        // Exponentially spread values across many decades.
        let values: Vec<u64> = (0..10_000u64).map(|i| 100 + i * i).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = sorted[((q * sorted.len() as f64) as usize).min(sorted.len() - 1)] as f64;
            let approx = h.quantile(q) as f64;
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel < 0.07,
                "quantile {q}: exact {exact}, approx {approx}, rel {rel}"
            );
        }
    }

    #[test]
    fn histogram_handles_huge_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(1.0) >= h.quantile(0.1));
    }

    #[test]
    fn histogram_merge_combines_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn bench_stats_throughput_uses_window() {
        let mut stats = BenchStats::new();
        for _ in 0..1_000 {
            stats.record(OpKind::Insert, 50_000);
        }
        stats.set_window_ns(1_000_000_000); // 1 s
        assert!((stats.throughput() - 1_000.0).abs() < 1e-6);
        assert_eq!(stats.ops(OpKind::Insert), 1_000);
        assert_eq!(stats.ops(OpKind::Read), 0);
        assert!(stats.mean_latency_ms(OpKind::Read).is_none());
        assert!((stats.mean_latency_ms(OpKind::Insert).unwrap() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn bench_stats_tracks_rejections_separately() {
        let mut stats = BenchStats::new();
        stats.record_rejection(OpKind::Insert);
        stats.record_rejection(OpKind::Insert);
        stats.record(OpKind::Insert, 10);
        assert_eq!(stats.total_rejected(), 2);
        assert_eq!(stats.total_ops(), 1);
    }

    #[test]
    fn bench_stats_availability_counts_errors_not_rejections() {
        let mut stats = BenchStats::new();
        for _ in 0..99 {
            stats.record(OpKind::Read, 1_000);
        }
        stats.record_error(OpKind::Read, 500_000_000);
        stats.record_rejection(OpKind::Read);
        assert!((stats.availability() - 0.99).abs() < 1e-9);
        assert_eq!(stats.total_errors(), 1);
        assert_eq!(stats.errors(OpKind::Read), 1);
        assert_eq!(stats.error_timeline(), &[1]);
    }

    #[test]
    fn empty_stats_report_full_availability() {
        assert!((BenchStats::new().availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_secs_finds_first_recovered_second() {
        let mut stats = BenchStats::new();
        // Seconds 0-4: 100 ops/s baseline; 5-9: crashed (10 ops/s);
        // restore at 10; recovery reaches 90 ops/s at second 12.
        let shape = [100, 100, 100, 100, 100, 10, 10, 10, 10, 10, 40, 70, 95, 100];
        for (sec, &ops) in shape.iter().enumerate() {
            for _ in 0..ops {
                stats.record_timeline(sec as u64 * 1_000_000_000);
            }
        }
        assert_eq!(stats.recovery_secs(5, 10, 0.9), Some(2));
        assert_eq!(stats.recovery_secs(5, 10, 0.99), Some(3));
        assert_eq!(stats.recovery_secs(5, 10, 1.2), None);
    }

    #[test]
    fn resilience_counters_merge_and_ride_bench_stats() {
        let mut a = BenchStats::new();
        a.resilience_mut().retries = 3;
        a.resilience_mut().hedges = 2;
        a.resilience_mut().hedge_wins = 1;
        let mut b = BenchStats::new();
        b.resilience_mut().retries = 4;
        b.resilience_mut().breaker_transitions = 2;
        b.resilience_mut().shed = 7;
        a.merge(&b);
        assert_eq!(
            *a.resilience(),
            ResilienceCounters {
                retries: 7,
                hedges: 2,
                hedge_wins: 1,
                breaker_transitions: 2,
                shed: 7,
            }
        );
        assert_eq!(
            *BenchStats::new().resilience(),
            ResilienceCounters::default()
        );
    }

    #[test]
    fn telemetry_tracks_rejections_apart_from_ops_and_errors() {
        let mut t = Telemetry::new(1_000_000_000);
        t.record(100, 1_000_000);
        t.record_rejection(200);
        t.record_rejection(1_200_000_000);
        t.record_error(300);
        assert_eq!(t.windows()[0].ops(), 1);
        assert_eq!(t.windows()[0].rejected(), 1);
        assert_eq!(t.windows()[0].responded(), 2);
        assert_eq!(t.windows()[0].errors(), 1);
        assert_eq!(t.windows()[1].rejected(), 1);
        assert_eq!(t.windows()[1].responded(), 1);
        // Rejections stay out of ops-based rates.
        assert!((t.ops_per_sec(0) - 1.0).abs() < 1e-12);
        assert!((t.windows()[0].error_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_and_telemetry_snapshot_round_trip() {
        let mut stats = BenchStats::new();
        for v in [10u64, 2_000, 3_000_000, u64::MAX / 2] {
            stats.record(OpKind::Read, v);
            stats.record_timeline(v % 7_000_000_000);
        }
        stats.record_rejection(OpKind::Insert);
        stats.record_error(OpKind::Scan, 1_500_000_000);
        stats.set_window_ns(60_000_000_000);
        stats.resilience_mut().retries = 9;
        let mut t = Telemetry::new(1_000_000_000);
        t.record(100, 1_000_000);
        t.record_error(2_600_000_000);
        t.sample_resource(
            1,
            "disk",
            ResourceSample {
                utilization: 0.375,
                queue_depth: 2.5,
            },
        );
        let mut w = SnapWriter::new();
        w.put(&stats);
        w.put(&t);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let stats2: BenchStats = r.get().unwrap();
        let t2: Telemetry = r.get().unwrap();
        r.finish().unwrap();
        // Re-encoding must be byte-identical (the property resume relies on).
        let mut w2 = SnapWriter::new();
        w2.put(&stats2);
        w2.put(&t2);
        assert_eq!(bytes, w2.into_bytes());
        assert_eq!(stats2.total_ops(), stats.total_ops());
        assert_eq!(
            stats2.quantile_latency_ms(OpKind::Read, 0.99),
            stats.quantile_latency_ms(OpKind::Read, 0.99)
        );
        assert_eq!(stats2.timeline(), stats.timeline());
        assert_eq!(t2.windows().len(), t.windows().len());
        assert_eq!(
            t2.windows()[1].resource("disk"),
            t.windows()[1].resource("disk")
        );
    }

    #[test]
    fn bench_stats_merge_sums_windows() {
        let mut a = BenchStats::new();
        a.record(OpKind::Read, 1_000);
        a.set_window_ns(5);
        let mut b = BenchStats::new();
        b.record(OpKind::Read, 3_000);
        b.set_window_ns(7);
        a.merge(&b);
        assert_eq!(a.ops(OpKind::Read), 2);
        assert_eq!(a.window_ns(), 12);
        assert!((a.mean_latency_ms(OpKind::Read).unwrap() - 0.002).abs() < 1e-9);
    }
}
