//! Campaign report containers for the chaos-search harness.
//!
//! The chaos subsystem (generator, oracles, shrinker) lives in the
//! harness crate; this module holds only the *data model* of a search
//! campaign — which schedules were tried, which correctness oracles
//! fired, and what the minimized reproducers look like — so the repro
//! CLI and the experiment tables can consume results without pulling in
//! the simulator. Everything here is plain data with deterministic
//! ordering: serialising the same campaign twice yields identical bytes.

/// Version stamp written into every serialized campaign report. Bump on
/// any structural change so downstream consumers can reject reports
/// they do not understand.
pub const CAMPAIGN_FORMAT_VERSION: u32 = 1;

/// The correctness invariants evaluated over each chaos run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OracleKind {
    /// Every client-acknowledged insert is readable after all
    /// recoveries complete (requires the runner's acked-write ledger).
    Durability,
    /// Logical-operation accounting balances: every issued op resolves
    /// at most once and the in-flight residue is bounded by the client
    /// population.
    Conservation,
    /// Availability over the whole run stays above a lenient floor —
    /// faults may dent throughput but must not zero it.
    AvailabilityFloor,
    /// After the last fault event the per-second throughput returns to
    /// within a band of the fault-free baseline.
    RecoveryConvergence,
}

impl OracleKind {
    /// All oracles, in evaluation order.
    pub const ALL: [OracleKind; 4] = [
        OracleKind::Durability,
        OracleKind::Conservation,
        OracleKind::AvailabilityFloor,
        OracleKind::RecoveryConvergence,
    ];

    /// Stable identifier used in reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Durability => "durability",
            OracleKind::Conservation => "conservation",
            OracleKind::AvailabilityFloor => "availability-floor",
            OracleKind::RecoveryConvergence => "recovery-convergence",
        }
    }
}

/// One oracle's verdict over one run.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleVerdict {
    pub kind: OracleKind,
    pub pass: bool,
    /// Human-readable evidence (counts, ratios, offending keys).
    pub detail: String,
}

/// How one sampled schedule resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleOutcome {
    /// Every oracle held.
    Pass,
    /// At least one oracle fired; a minimized reproducer was attempted.
    Violation,
    /// Two identical replays of the schedule disagreed — a determinism
    /// bug in the stack itself. Shrinking is skipped and the divergence
    /// is localized by checkpoint bisection instead.
    NonDeterministic,
}

impl ScheduleOutcome {
    /// Stable identifier used in reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            ScheduleOutcome::Pass => "pass",
            ScheduleOutcome::Violation => "violation",
            ScheduleOutcome::NonDeterministic => "non-deterministic",
        }
    }
}

/// One fault event of a schedule, flattened to plain data (the
/// simulator's `FaultEvent` is not visible from this crate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosEventRecord {
    /// Offset from the start of the measurement window, nanoseconds.
    pub at_ns: u64,
    /// Target node index (for cluster-wide storms, each node's event is
    /// recorded separately).
    pub node: usize,
    /// Stable name of the fault kind, e.g. `crash` or `fail-slow(x8)`.
    pub kind: String,
}

/// One schedule tried by the campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleRecord {
    /// Zero-based index within the campaign.
    pub index: u32,
    /// The flattened fault events, in dispatch order.
    pub events: Vec<ChaosEventRecord>,
    pub outcome: ScheduleOutcome,
    /// Verdicts in [`OracleKind::ALL`] order (oracles the configuration
    /// disabled are simply absent).
    pub verdicts: Vec<OracleVerdict>,
}

/// A minimized failing reproducer produced by the delta-debugging
/// shrinker.
#[derive(Clone, Debug, PartialEq)]
pub struct MinimizedRepro {
    /// Index of the originating [`ScheduleRecord`].
    pub schedule_index: u32,
    /// Event count of the original failing schedule.
    pub original_events: usize,
    /// Event count after shrinking.
    pub minimized_events: usize,
    /// The minimal failing schedule's events, in dispatch order.
    pub events: Vec<ChaosEventRecord>,
    /// Probe runs the shrinker spent.
    pub probes: u32,
    /// Of those, probes that resumed from a pre-divergence checkpoint
    /// instead of replaying from t=0.
    pub resumed_probes: u32,
    /// Oracles that still fire on the minimized schedule.
    pub failing_oracles: Vec<OracleKind>,
    /// For [`ScheduleOutcome::NonDeterministic`] schedules: the first
    /// divergent checkpoint window located by bisection (no shrinking
    /// was performed).
    pub divergent_checkpoint: Option<u32>,
}

/// A full search campaign over one store.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    /// [`CAMPAIGN_FORMAT_VERSION`] at serialisation time.
    pub version: u32,
    /// Store legend name (`cassandra`, `redis`, …).
    pub store: String,
    /// Campaign seed; the whole report is a pure function of it.
    pub seed: u64,
    /// Schedules sampled.
    pub budget: u32,
    /// Whether a resilience policy was composed under test.
    pub resilient: bool,
    /// One record per sampled schedule, in sample order.
    pub schedules: Vec<ScheduleRecord>,
    /// One minimized reproducer per non-passing schedule.
    pub minimized: Vec<MinimizedRepro>,
}

impl CampaignReport {
    /// Number of schedules whose outcome was not a clean pass.
    pub fn violations(&self) -> usize {
        self.schedules
            .iter()
            .filter(|s| s.outcome != ScheduleOutcome::Pass)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_names_are_stable_and_distinct() {
        let names: Vec<&str> = OracleKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "durability",
                "conservation",
                "availability-floor",
                "recovery-convergence"
            ]
        );
    }

    #[test]
    fn violations_counts_non_passing_schedules() {
        let schedule = |index, outcome| ScheduleRecord {
            index,
            events: Vec::new(),
            outcome,
            verdicts: Vec::new(),
        };
        let report = CampaignReport {
            version: CAMPAIGN_FORMAT_VERSION,
            store: "fixture".into(),
            seed: 7,
            budget: 3,
            resilient: false,
            schedules: vec![
                schedule(0, ScheduleOutcome::Pass),
                schedule(1, ScheduleOutcome::Violation),
                schedule(2, ScheduleOutcome::NonDeterministic),
            ],
            minimized: Vec::new(),
        };
        assert_eq!(report.violations(), 2);
    }
}
