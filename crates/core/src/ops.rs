//! Benchmark operations.
//!
//! The paper's workloads (Table 1) consist of reads, small scans, and
//! inserts — APM data is append-only, so YCSB's update/delete operations
//! are unused (*"we only included insert, read, and scan operations"*, §3).
//! Updates are still modelled because two extension experiments use them.

use crate::record::{MetricKey, Record};
use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

/// Kind of a benchmark operation, in a fixed reporting order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Point lookup of one record by key; all fields are fetched (§3).
    Read,
    /// Range scan of `scan_len` consecutive records from a start key (§3:
    /// scan length 50, all fields).
    Scan,
    /// Append of a new record (the dominant APM operation).
    Insert,
    /// In-place overwrite of an existing record (extension only).
    Update,
}

impl OpKind {
    /// All kinds, in reporting order.
    pub const ALL: [OpKind; 4] = [OpKind::Read, OpKind::Scan, OpKind::Insert, OpKind::Update];

    /// Stable lower-case label used in reports and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Scan => "scan",
            OpKind::Insert => "insert",
            OpKind::Update => "update",
        }
    }

    /// Whether this operation mutates the store.
    pub fn is_write(self) -> bool {
        matches!(self, OpKind::Insert | OpKind::Update)
    }
}

impl Snap for OpKind {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            OpKind::Read => 0,
            OpKind::Scan => 1,
            OpKind::Insert => 2,
            OpKind::Update => 3,
        });
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(OpKind::Read),
            1 => Ok(OpKind::Scan),
            2 => Ok(OpKind::Insert),
            3 => Ok(OpKind::Update),
            tag => Err(SnapError::BadTag {
                what: "OpKind",
                tag: u64::from(tag),
            }),
        }
    }
}

/// A fully-specified operation ready to be issued against a store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Operation {
    /// Fetch the record stored under `key`.
    Read { key: MetricKey },
    /// Fetch up to `len` records starting at `start` in key order.
    Scan { start: MetricKey, len: usize },
    /// Append `record`.
    Insert { record: Record },
    /// Replace the record under `record.key`.
    Update { record: Record },
}

impl Operation {
    /// The operation's kind.
    pub fn kind(&self) -> OpKind {
        match self {
            Operation::Read { .. } => OpKind::Read,
            Operation::Scan { .. } => OpKind::Scan,
            Operation::Insert { .. } => OpKind::Insert,
            Operation::Update { .. } => OpKind::Update,
        }
    }

    /// The key the operation is routed by (scan: the start key).
    pub fn routing_key(&self) -> &MetricKey {
        match self {
            Operation::Read { key } => key,
            Operation::Scan { start, .. } => start,
            Operation::Insert { record } | Operation::Update { record } => &record.key,
        }
    }
}

impl Snap for Operation {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Operation::Read { key } => {
                w.put_u8(0);
                w.put(key);
            }
            Operation::Scan { start, len } => {
                w.put_u8(1);
                w.put(start);
                w.put(len);
            }
            Operation::Insert { record } => {
                w.put_u8(2);
                w.put(record);
            }
            Operation::Update { record } => {
                w.put_u8(3);
                w.put(record);
            }
        }
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Operation::Read { key: r.get()? }),
            1 => Ok(Operation::Scan {
                start: r.get()?,
                len: r.get()?,
            }),
            2 => Ok(Operation::Insert { record: r.get()? }),
            3 => Ok(Operation::Update { record: r.get()? }),
            tag => Err(SnapError::BadTag {
                what: "Operation",
                tag: u64::from(tag),
            }),
        }
    }
}

/// Result of executing an operation against a store, as seen by the
/// benchmark client (used for correctness checks, not timing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpOutcome {
    /// Read found the record.
    Found(Record),
    /// Read missed (only possible for foreign keys — a benchmark error).
    Missing,
    /// Scan returned `n` records.
    Scanned(usize),
    /// Write acknowledged.
    Done,
    /// The store refused the operation (e.g. Redis node out of memory).
    Rejected(RejectReason),
}

/// Why a store rejected an operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Node exhausted its memory budget (§5.1: "one Redis node
    /// consistently run out of memory in the 12 node configuration").
    OutOfMemory,
    /// The store does not implement the operation (Voldemort has no scan
    /// support in its YCSB client, §5.4).
    Unsupported,
    /// Node connection limit exceeded (§6, Voldemort).
    Overloaded,
}

impl OpOutcome {
    /// Whether the outcome counts as a benchmark-visible success.
    pub fn is_ok(&self) -> bool {
        !matches!(self, OpOutcome::Rejected(_) | OpOutcome::Missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    #[test]
    fn kinds_report_write_flag() {
        assert!(!OpKind::Read.is_write());
        assert!(!OpKind::Scan.is_write());
        assert!(OpKind::Insert.is_write());
        assert!(OpKind::Update.is_write());
    }

    #[test]
    fn operation_kind_and_routing_key_agree() {
        let rec = Record::from_id(5);
        let ops = [
            Operation::Read { key: rec.key },
            Operation::Scan {
                start: rec.key,
                len: 50,
            },
            Operation::Insert { record: rec },
            Operation::Update { record: rec },
        ];
        for (op, kind) in ops.iter().zip(OpKind::ALL) {
            assert_eq!(op.kind(), kind);
            assert_eq!(op.routing_key(), &rec.key);
        }
    }

    #[test]
    fn outcome_success_classification() {
        assert!(OpOutcome::Found(Record::from_id(1)).is_ok());
        assert!(OpOutcome::Scanned(50).is_ok());
        assert!(OpOutcome::Done.is_ok());
        assert!(!OpOutcome::Missing.is_ok());
        assert!(!OpOutcome::Rejected(RejectReason::OutOfMemory).is_ok());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = OpKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), OpKind::ALL.len());
    }
}
