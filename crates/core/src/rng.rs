//! The one SplitMix64 in the tree.
//!
//! Three subsystems historically carried private copies of this generator
//! (key scrambling in `keyspace`, random fault schedules in
//! `apm_sim::fault`, resilience jitter in `apm_stores::resilience`). They
//! now all route through this module so RNG state serializes uniformly in
//! snapshots: a [`SplitMix64`] is exactly one `u64` of state, exposed via
//! [`SplitMix64::state`] / [`SplitMix64::from_state`].
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) advances by the golden
//! gamma and finalizes with a Stafford mix; the finalizer alone is a
//! bijective 64-bit hash, which is what key scrambling uses.

/// The additive constant of the SplitMix64 stream (⌊2⁶⁴/φ⌋, odd).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Stateless SplitMix64 step: finalizes `v + GOLDEN_GAMMA`. Bijective, so
/// mixed identifiers never collide. `mix(state)` is precisely the output
/// of a [`SplitMix64`] whose state is `state`.
#[inline]
pub fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A SplitMix64 stream. One word of state; trivially snapshotable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream starting at `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Rebuilds a stream from a snapshotted [`Self::state`].
    pub fn from_state(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }

    /// The raw stream position, for snapshots.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = mix(self.state);
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        out
    }

    /// Next fraction in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_frac(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_matches_the_finalizer() {
        let mut rng = SplitMix64::new(42);
        assert_eq!(rng.next_u64(), mix(42));
        assert_eq!(rng.next_u64(), mix(42u64.wrapping_add(GOLDEN_GAMMA)));
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut a = SplitMix64::new(7);
        a.next_u64();
        a.next_u64();
        let mut b = SplitMix64::from_state(a.state());
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_frac(), b.next_frac());
    }

    #[test]
    fn fracs_stay_in_unit_interval() {
        let mut rng = SplitMix64::new(123);
        for _ in 0..256 {
            let f = rng.next_frac();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn mix_is_injective_on_a_sample() {
        let mut seen = std::collections::HashSet::new();
        for v in 0..10_000u64 {
            assert!(seen.insert(mix(v)), "collision at {v}");
        }
    }
}
