//! The APM record model.
//!
//! Section 3 of the paper fixes the data set: *"records with a single
//! alphanumeric key with a length of 25 bytes and 5 value fields each with
//! 10 bytes. Thus, a single record has a raw size of 75 bytes."* This
//! mirrors the real measurement structure of Figure 2 (metric name, value,
//! min, max, timestamp, duration).

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::fmt;

/// Length in bytes of the alphanumeric record key.
pub const KEY_SIZE: usize = 25;
/// Number of value fields per record.
pub const FIELD_COUNT: usize = 5;
/// Size in bytes of each value field.
pub const FIELD_SIZE: usize = 10;
/// Raw record size: key plus fields (75 bytes, per §3 of the paper).
pub const RAW_RECORD_SIZE: usize = KEY_SIZE + FIELD_COUNT * FIELD_SIZE;

/// Alphabet used when rendering numeric identifiers into alphanumeric keys.
const ALPHABET: &[u8; 36] = b"0123456789abcdefghijklmnopqrstuvwxyz";

/// A fixed-size 25-byte alphanumeric record key.
///
/// Keys order lexicographically by their byte content, which is what every
/// store under test uses for range scans. The key layout produced by
/// [`MetricKey::from_id`] is a single tag byte followed by a base-36
/// rendering of a 64-bit identifier, zero-padded so that numeric order of
/// the identifier equals lexicographic order of the key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey([u8; KEY_SIZE]);

impl MetricKey {
    /// The smallest possible key (all `'0'` bytes).
    pub const MIN: MetricKey = MetricKey([b'0'; KEY_SIZE]);
    /// The largest possible key (all `'z'` bytes).
    pub const MAX: MetricKey = MetricKey([b'z'; KEY_SIZE]);

    /// Builds a key directly from raw bytes.
    ///
    /// # Panics
    /// Panics if any byte is not alphanumeric lower-case (the benchmark
    /// only ever produces such keys; other bytes would break the size
    /// accounting assumptions of the stores).
    pub fn from_bytes(bytes: [u8; KEY_SIZE]) -> Self {
        assert!(
            bytes
                .iter()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()),
            "metric keys must be lower-case alphanumeric"
        );
        MetricKey(bytes)
    }

    /// Builds the canonical benchmark key for record identifier `id`.
    ///
    /// The YCSB convention is `user<fnv(seq)>`; we keep the same shape —
    /// a constant prefix (`"m"` for *metric*) followed by a zero-padded
    /// rendering of the identifier — so that identifiers map to unique,
    /// fixed-width, alphanumeric keys.
    pub fn from_id(id: u64) -> Self {
        let mut buf = [b'0'; KEY_SIZE];
        buf[0] = b'm';
        // Render `id` in base 36, right-aligned.
        let mut v = id;
        let mut i = KEY_SIZE;
        loop {
            i -= 1;
            buf[i] = ALPHABET[(v % 36) as usize];
            v /= 36;
            if v == 0 {
                break;
            }
        }
        MetricKey(buf)
    }

    /// Recovers the numeric identifier from a key produced by
    /// [`MetricKey::from_id`]. Returns `None` for foreign keys.
    pub fn to_id(&self) -> Option<u64> {
        if self.0[0] != b'm' {
            return None;
        }
        let mut v: u64 = 0;
        for &b in &self.0[1..] {
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u64,
                b'a'..=b'z' => (b - b'a') as u64 + 10,
                _ => return None,
            };
            v = v.checked_mul(36)?.checked_add(d)?;
        }
        Some(v)
    }

    /// Raw bytes of the key.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; KEY_SIZE] {
        &self.0
    }

    /// The key's length in bytes (always [`KEY_SIZE`]; provided so size
    /// accounting code reads naturally).
    #[inline]
    pub const fn len(&self) -> usize {
        KEY_SIZE
    }

    /// Fixed-size keys are never empty.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        false
    }
}

impl Snap for MetricKey {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_bytes(&self.0);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(MetricKey(r.bytes(KEY_SIZE)?.try_into().expect("key size")))
    }
}

impl fmt::Debug for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MetricKey({})", String::from_utf8_lossy(&self.0))
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&String::from_utf8_lossy(&self.0))
    }
}

/// The five 10-byte value fields of a record.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldValues(pub [[u8; FIELD_SIZE]; FIELD_COUNT]);

impl FieldValues {
    /// All-zero fields.
    pub const ZERO: FieldValues = FieldValues([[b'0'; FIELD_SIZE]; FIELD_COUNT]);

    /// Deterministically derives field content from a seed, mimicking
    /// YCSB's random field generation while staying reproducible.
    pub fn from_seed(seed: u64) -> Self {
        let mut fields = [[0u8; FIELD_SIZE]; FIELD_COUNT];
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        for field in &mut fields {
            for byte in field.iter_mut() {
                // xorshift64* — cheap, deterministic, good enough for filler.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *byte = ALPHABET[(state % 36) as usize];
            }
        }
        FieldValues(fields)
    }

    /// Total payload size in bytes.
    #[inline]
    pub const fn len(&self) -> usize {
        FIELD_COUNT * FIELD_SIZE
    }

    /// Fixed-size payloads are never empty.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        false
    }
}

impl Snap for FieldValues {
    fn snap(&self, w: &mut SnapWriter) {
        for field in &self.0 {
            w.put_bytes(field);
        }
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        let mut fields = [[0u8; FIELD_SIZE]; FIELD_COUNT];
        for field in &mut fields {
            field.copy_from_slice(r.bytes(FIELD_SIZE)?);
        }
        Ok(FieldValues(fields))
    }
}

impl fmt::Debug for FieldValues {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FieldValues(")?;
        for (i, field) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", String::from_utf8_lossy(field))?;
        }
        write!(f, ")")
    }
}

/// A complete benchmark record: 25-byte key plus five 10-byte fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Record {
    pub key: MetricKey,
    pub fields: FieldValues,
}

impl Record {
    /// Builds the canonical record for identifier `id`.
    pub fn from_id(id: u64) -> Self {
        Record {
            key: MetricKey::from_id(id),
            fields: FieldValues::from_seed(id),
        }
    }

    /// Raw size of the record (always 75 bytes).
    #[inline]
    pub const fn raw_size(&self) -> usize {
        RAW_RECORD_SIZE
    }
}

impl Snap for Record {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.key);
        w.put(&self.fields);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Record {
            key: r.get()?,
            fields: r.get()?,
        })
    }
}

/// The semantic APM measurement of Figure 2: a hierarchical metric name,
/// the measured value with min/max over the agent's aggregation interval,
/// the UNIX timestamp, and the interval duration in seconds.
///
/// ```
/// use apm_core::record::ApmMeasurement;
/// let m = ApmMeasurement {
///     metric: "HostA/AgentX/ServletB/AverageResponseTime".to_string(),
///     value: 4,
///     min: 1,
///     max: 6,
///     timestamp: 1_332_988_833,
///     duration: 15,
/// };
/// let rec = m.to_record(42);
/// assert_eq!(rec.raw_size(), 75);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApmMeasurement {
    /// Hierarchical metric name, e.g. `HostA/AgentX/ServletB/AverageResponseTime`.
    pub metric: String,
    /// Aggregated value over the reporting interval.
    pub value: i64,
    /// Minimum observed value within the interval.
    pub min: i64,
    /// Maximum observed value within the interval.
    pub max: i64,
    /// UNIX timestamp (seconds) of the report.
    pub timestamp: u64,
    /// Interval duration in seconds.
    pub duration: u32,
}

impl ApmMeasurement {
    /// Packs the measurement into the fixed benchmark record layout.
    ///
    /// The 25-byte key identifies the (metric, timestamp) pair via `id`;
    /// the five 10-byte fields carry value/min/max/timestamp/duration as
    /// zero-padded decimal strings (values are clamped to the field width,
    /// which suffices for monitoring data).
    pub fn to_record(&self, id: u64) -> Record {
        let mut fields = [[b'0'; FIELD_SIZE]; FIELD_COUNT];
        pack_decimal(&mut fields[0], self.value.unsigned_abs());
        pack_decimal(&mut fields[1], self.min.unsigned_abs());
        pack_decimal(&mut fields[2], self.max.unsigned_abs());
        pack_decimal(&mut fields[3], self.timestamp);
        pack_decimal(&mut fields[4], self.duration as u64);
        Record {
            key: MetricKey::from_id(id),
            fields: FieldValues(fields),
        }
    }

    /// Recovers the numeric payload from a packed record. The metric name
    /// is not stored in the record fields (it is identified by the key),
    /// so the returned measurement carries an empty name.
    pub fn from_record(rec: &Record) -> ApmMeasurement {
        let f = &rec.fields.0;
        ApmMeasurement {
            metric: String::new(),
            value: unpack_decimal(&f[0]) as i64,
            min: unpack_decimal(&f[1]) as i64,
            max: unpack_decimal(&f[2]) as i64,
            timestamp: unpack_decimal(&f[3]),
            duration: unpack_decimal(&f[4]) as u32,
        }
    }
}

fn pack_decimal(field: &mut [u8; FIELD_SIZE], mut v: u64) {
    for slot in field.iter_mut().rev() {
        *slot = b'0' + (v % 10) as u8;
        v /= 10;
    }
}

fn unpack_decimal(field: &[u8; FIELD_SIZE]) -> u64 {
    field
        .iter()
        .fold(0u64, |acc, &b| acc * 10 + (b - b'0') as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_record_size_is_75_bytes() {
        // §3: "a single record has a raw size of 75 bytes".
        assert_eq!(RAW_RECORD_SIZE, 75);
        assert_eq!(Record::from_id(0).raw_size(), 75);
    }

    #[test]
    fn key_roundtrips_id() {
        for id in [0u64, 1, 35, 36, 12345, u64::MAX] {
            let key = MetricKey::from_id(id);
            assert_eq!(key.to_id(), Some(id), "id {id} failed to round-trip");
        }
    }

    #[test]
    fn key_order_matches_id_order() {
        let ids = [
            0u64,
            1,
            2,
            35,
            36,
            37,
            1000,
            10_000_000,
            u64::MAX - 1,
            u64::MAX,
        ];
        for w in ids.windows(2) {
            assert!(MetricKey::from_id(w[0]) < MetricKey::from_id(w[1]));
        }
    }

    #[test]
    fn key_is_alphanumeric_and_display_matches() {
        let key = MetricKey::from_id(987654321);
        assert!(key.as_bytes().iter().all(|b| b.is_ascii_alphanumeric()));
        assert_eq!(key.to_string().len(), KEY_SIZE);
    }

    #[test]
    #[should_panic(expected = "alphanumeric")]
    fn from_bytes_rejects_non_alphanumeric() {
        let mut bytes = [b'a'; KEY_SIZE];
        bytes[3] = b'!';
        let _ = MetricKey::from_bytes(bytes);
    }

    #[test]
    fn field_values_are_deterministic_per_seed() {
        assert_eq!(FieldValues::from_seed(7), FieldValues::from_seed(7));
        assert_ne!(FieldValues::from_seed(7), FieldValues::from_seed(8));
    }

    #[test]
    fn measurement_roundtrips_through_record() {
        let m = ApmMeasurement {
            metric: "HostA/AgentX/ServletB/AverageResponseTime".into(),
            value: 4,
            min: 1,
            max: 6,
            timestamp: 1_332_988_833,
            duration: 15,
        };
        let rec = m.to_record(99);
        let back = ApmMeasurement::from_record(&rec);
        assert_eq!(back.value, 4);
        assert_eq!(back.min, 1);
        assert_eq!(back.max, 6);
        assert_eq!(back.timestamp, 1_332_988_833);
        assert_eq!(back.duration, 15);
        assert_eq!(rec.key.to_id(), Some(99));
    }

    #[test]
    fn min_max_keys_bracket_generated_keys() {
        for id in [0u64, 42, u64::MAX] {
            let key = MetricKey::from_id(id);
            assert!(MetricKey::MIN <= key && key <= MetricKey::MAX);
        }
    }
}
