//! The APM query layer: §2's monitoring queries over stored measurements.
//!
//! The paper motivates the storage benchmark with concrete queries:
//!
//! > *"What was the maximum number of connections on host X within the
//! > last 10 minutes?"* — an on-line sliding-window aggregate;
//! > *"What was the average CPU utilization of Web servers of type Y
//! > within the last 15 minutes?"* — a cross-series window aggregate;
//! > plus archival versions over months of data.
//!
//! §3 explains how stores serve them: *"the reads often scan a small set
//! of records. For example, for a ten minute scan window with 10 seconds
//! resolution, the number of scanned values is 60."*
//!
//! This module provides the schema that makes those scans work — a
//! series-major key layout where consecutive reporting slots of one
//! metric series are adjacent keys — window arithmetic, and aggregate
//! evaluation over any engine that can range-scan.

use crate::record::{ApmMeasurement, FieldValues, MetricKey, Record};

/// Key codec for time-series data: the 64-bit record id is
/// `series_id << 24 | slot`, so one series' consecutive reporting slots
/// are consecutive keys and a window query is a single small range scan
/// (the §3 access pattern). 2^24 slots at a 10 s interval cover ~5 years.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesCodec {
    /// Agent reporting interval in seconds (paper: 10 s).
    pub interval_secs: u32,
    /// UNIX time of slot 0.
    pub epoch: u64,
}

/// Bits reserved for the slot within a series.
const SLOT_BITS: u32 = 24;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

impl SeriesCodec {
    /// Creates a codec for the given reporting interval and epoch.
    pub fn new(interval_secs: u32, epoch: u64) -> SeriesCodec {
        assert!(interval_secs > 0, "reporting interval must be positive");
        SeriesCodec {
            interval_secs,
            epoch,
        }
    }

    /// Slot index for a UNIX timestamp (clamped below at the epoch).
    pub fn slot_of(&self, timestamp: u64) -> u64 {
        (timestamp.saturating_sub(self.epoch) / u64::from(self.interval_secs)) & SLOT_MASK
    }

    /// UNIX timestamp at the start of `slot`.
    pub fn timestamp_of(&self, slot: u64) -> u64 {
        self.epoch + slot * u64::from(self.interval_secs)
    }

    /// Record key for (`series`, `slot`).
    pub fn key(&self, series: u64, slot: u64) -> MetricKey {
        debug_assert!(slot <= SLOT_MASK);
        MetricKey::from_id((series << SLOT_BITS) | (slot & SLOT_MASK))
    }

    /// Recovers (`series`, `slot`) from a key produced by [`SeriesCodec::key`].
    pub fn decode(&self, key: &MetricKey) -> Option<(u64, u64)> {
        key.to_id().map(|id| (id >> SLOT_BITS, id & SLOT_MASK))
    }

    /// Encodes a measurement as a storable record.
    pub fn record(&self, series: u64, m: &ApmMeasurement) -> Record {
        let slot = self.slot_of(m.timestamp);
        m.to_record((series << SLOT_BITS) | slot)
    }

    /// The scan that answers a window query on one series ending at
    /// `now`: start key and record count (§3's "ten minute window at 10
    /// seconds resolution → 60 values").
    pub fn window_scan(&self, series: u64, now: u64, window_secs: u64) -> (MetricKey, usize) {
        let end_slot = self.slot_of(now);
        let slots = (window_secs / u64::from(self.interval_secs)).max(1);
        let start_slot = end_slot.saturating_sub(slots - 1);
        (self.key(series, start_slot), slots as usize)
    }
}

/// Streaming aggregate over measurement values.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowAggregate {
    pub count: u64,
    pub sum: i64,
    pub min: i64,
    pub max: i64,
}

impl WindowAggregate {
    /// Empty aggregate.
    pub fn new() -> WindowAggregate {
        WindowAggregate {
            count: 0,
            sum: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }

    /// Folds one measurement in, using its pre-aggregated min/max (the
    /// agents already aggregate within their reporting interval, §3).
    pub fn add(&mut self, m: &ApmMeasurement) {
        self.count += 1;
        self.sum += m.value;
        self.min = self.min.min(m.min);
        self.max = self.max.max(m.max);
    }

    /// Merges another aggregate (cross-series combination).
    pub fn merge(&mut self, other: &WindowAggregate) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the interval values, or `None` when empty.
    pub fn avg(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// The §2 query forms.
#[derive(Clone, Debug, PartialEq)]
pub enum ApmQuery {
    /// "What was the maximum `metric` on `series` within the last
    /// `window_secs`?" — one series, one scan.
    WindowMax { series: u64, window_secs: u64 },
    /// "What was the average `metric` across a series set within the
    /// last `window_secs`?" — one scan per series, merged.
    WindowAvgAcross { series: Vec<u64>, window_secs: u64 },
}

/// Executes a query at time `now` against any range-scannable engine.
///
/// `scan` receives a start key and a record count and returns the stored
/// records from that position — the exact operation the benchmark's scan
/// workloads exercise.
pub fn execute<F>(codec: &SeriesCodec, query: &ApmQuery, now: u64, mut scan: F) -> WindowAggregate
where
    F: FnMut(MetricKey, usize) -> Vec<(MetricKey, FieldValues)>,
{
    let mut total = WindowAggregate::new();
    let one_series = |codec: &SeriesCodec, series: u64, window: u64, scan: &mut F| {
        let (start, len) = codec.window_scan(series, now, window);
        let mut agg = WindowAggregate::new();
        for (key, fields) in scan(start, len) {
            // A range scan may run past the series' last slot into the
            // next series: filter by the series id.
            match codec.decode(&key) {
                Some((s, _)) if s == series => {
                    let m = ApmMeasurement::from_record(&Record { key, fields });
                    agg.add(&m);
                }
                _ => {}
            }
        }
        agg
    };
    match query {
        ApmQuery::WindowMax {
            series,
            window_secs,
        } => {
            total.merge(&one_series(codec, *series, *window_secs, &mut scan));
        }
        ApmQuery::WindowAvgAcross {
            series,
            window_secs,
        } => {
            for &s in series {
                total.merge(&one_series(codec, s, *window_secs, &mut scan));
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::ops::Bound;

    const EPOCH: u64 = 1_332_988_800;

    fn codec() -> SeriesCodec {
        SeriesCodec::new(10, EPOCH)
    }

    fn measurement(value: i64, ts: u64) -> ApmMeasurement {
        ApmMeasurement {
            metric: String::new(),
            value,
            min: value - 1,
            max: value + 1,
            timestamp: ts,
            duration: 10,
        }
    }

    /// A reference store: sorted map + range scan.
    fn store_with(series: &[u64], slots: u64) -> BTreeMap<MetricKey, FieldValues> {
        let c = codec();
        let mut map = BTreeMap::new();
        for &s in series {
            for slot in 0..slots {
                let ts = c.timestamp_of(slot);
                // Value = series*100 + slot so aggregates are checkable.
                let rec = c.record(s, &measurement((s * 100 + slot) as i64, ts));
                map.insert(rec.key, rec.fields);
            }
        }
        map
    }

    fn scan_fn(
        map: &BTreeMap<MetricKey, FieldValues>,
    ) -> impl FnMut(MetricKey, usize) -> Vec<(MetricKey, FieldValues)> + '_ {
        move |start, len| {
            map.range((Bound::Included(start), Bound::Unbounded))
                .take(len)
                .map(|(k, v)| (*k, *v))
                .collect()
        }
    }

    #[test]
    fn codec_roundtrips_series_and_slot() {
        let c = codec();
        for (series, slot) in [(0u64, 0u64), (7, 12345), (1 << 30, SLOT_MASK)] {
            let key = c.key(series, slot);
            assert_eq!(c.decode(&key), Some((series, slot)));
        }
    }

    #[test]
    fn consecutive_slots_are_adjacent_keys() {
        let c = codec();
        let k1 = c.key(42, 100);
        let k2 = c.key(42, 101);
        assert!(k1 < k2);
        assert_eq!(k2.to_id().unwrap() - k1.to_id().unwrap(), 1);
    }

    #[test]
    fn ten_minute_window_scans_60_records() {
        // §3: "for a ten minute scan window with 10 seconds resolution,
        // the number of scanned values is 60".
        let c = codec();
        let now = EPOCH + 3_600;
        let (_, len) = c.window_scan(5, now, 600);
        assert_eq!(len, 60);
    }

    #[test]
    fn window_max_finds_the_window_maximum() {
        let map = store_with(&[3], 100);
        let c = codec();
        // Query the last 10 minutes at slot 99 → slots 40..=99... window
        // 600 s = 60 slots → 40..=99; max value = 3*100+99, max field +1.
        let now = c.timestamp_of(99);
        let agg = execute(
            &c,
            &ApmQuery::WindowMax {
                series: 3,
                window_secs: 600,
            },
            now,
            scan_fn(&map),
        );
        assert_eq!(agg.count, 60);
        assert_eq!(agg.max, 300 + 99 + 1);
        assert_eq!(agg.min, 300 + 40 - 1);
    }

    #[test]
    fn window_avg_across_series_merges_hosts() {
        // "Average CPU utilization of Web servers of type Y": three
        // hosts, 15-minute window (90 slots).
        let map = store_with(&[1, 2, 3], 200);
        let c = codec();
        let now = c.timestamp_of(199);
        let agg = execute(
            &c,
            &ApmQuery::WindowAvgAcross {
                series: vec![1, 2, 3],
                window_secs: 900,
            },
            now,
            scan_fn(&map),
        );
        assert_eq!(agg.count, 3 * 90);
        // Mean of (s*100 + slot) over s in 1..=3, slot in 110..=199.
        let expected = (100.0 + 200.0 + 300.0) / 3.0 + (110.0 + 199.0) / 2.0;
        assert!((agg.avg().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn scans_do_not_leak_into_neighbouring_series() {
        let map = store_with(&[1, 2], 50);
        let c = codec();
        // Window larger than the series' data: the scan runs into series
        // 2's keys, which must be filtered out.
        let now = c.timestamp_of(49);
        let agg = execute(
            &c,
            &ApmQuery::WindowMax {
                series: 1,
                window_secs: 10_000,
            },
            now,
            scan_fn(&map),
        );
        assert_eq!(agg.count, 50, "only series 1's records count");
        assert_eq!(agg.max, 100 + 49 + 1);
    }

    #[test]
    fn aggregates_merge_like_bulk() {
        let mut a = WindowAggregate::new();
        let mut b = WindowAggregate::new();
        let mut all = WindowAggregate::new();
        for v in 0..10 {
            let m = measurement(v, EPOCH + v as u64 * 10);
            if v % 2 == 0 {
                a.add(&m);
            } else {
                b.add(&m);
            }
            all.add(&m);
        }
        a.merge(&b);
        assert_eq!(a, all);
        let empty = WindowAggregate::new();
        let before = a;
        a.merge(&empty);
        assert_eq!(a, before, "merging empty is a no-op");
        assert!(empty.avg().is_none());
    }

    #[test]
    fn window_clamps_at_epoch() {
        let c = codec();
        let (start, len) = c.window_scan(9, EPOCH + 20, 600);
        // Only 3 slots exist (0, 1, 2) but the window asks for 60: the
        // start clamps to slot 0.
        assert_eq!(c.decode(&start), Some((9, 0)));
        assert_eq!(len, 60);
    }
}
