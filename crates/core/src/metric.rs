//! Hierarchical metric naming and the agent reporting model.
//!
//! Section 1 of the paper motivates the data volume with a concrete
//! customer scenario: *"The customer's data center has 10K nodes, in which
//! each node can report up to 50K metrics with an average of 10K metrics
//! ... with a modest monitoring interval of 10 seconds, 10 million
//! individual measurements are reported per second."*
//!
//! This module models that scenario: a monitored data centre is a set of
//! hosts, each running an agent that reports a fixed set of hierarchical
//! metrics (`Host/Agent/Component/Metric`) every interval. It is used by
//! the `apm_ingest` example and the capacity-planning experiment, which
//! check the paper's closing claim that 12 storage nodes must sustain ~240K
//! inserts/s for a 240-node monitored system.

use crate::record::ApmMeasurement;

/// Categories of metrics an APM agent reports (§1: "an individual metric
/// for response time, failure rate, resource utilization, etc.").
pub const METRIC_KINDS: &[&str] = &[
    "AverageResponseTime",
    "ResponsesPerInterval",
    "ErrorsPerInterval",
    "StalledTransactions",
    "ConcurrentInvocations",
    "CpuUtilization",
    "HeapUsedBytes",
    "GcPauseMillis",
    "OpenConnections",
    "QueueDepth",
];

/// Components instrumented inside a monitored application (§2: "most
/// notably ... communication methods such as RMI calls, Web service calls,
/// socket connections").
pub const COMPONENT_KINDS: &[&str] = &[
    "Servlet",
    "EjbSession",
    "JdbcQuery",
    "RmiCall",
    "WebService",
    "SocketWrite",
    "MessageQueue",
    "Backend",
];

/// Static description of a monitored data centre.
#[derive(Clone, Debug, PartialEq)]
pub struct MonitoredSystem {
    /// Number of monitored hosts.
    pub hosts: u32,
    /// Metrics reported per host per interval (paper average: 10_000).
    pub metrics_per_host: u32,
    /// Agent aggregation/reporting interval in seconds (paper: 10 s).
    pub interval_secs: u32,
}

impl MonitoredSystem {
    /// The paper's motivating scenario: 10K nodes × 10K metrics @ 10 s.
    pub fn paper_scenario() -> Self {
        MonitoredSystem {
            hosts: 10_000,
            metrics_per_host: 10_000,
            interval_secs: 10,
        }
    }

    /// The paper's closing capacity estimate: 240 monitored nodes served
    /// by 12 storage nodes (5 % overhead budget), 10K metrics @ 10 s.
    pub fn conclusion_scenario() -> Self {
        MonitoredSystem {
            hosts: 240,
            metrics_per_host: 10_000,
            interval_secs: 10,
        }
    }

    /// Sustained insert rate the storage tier must absorb (measurements/s).
    pub fn inserts_per_second(&self) -> u64 {
        u64::from(self.hosts) * u64::from(self.metrics_per_host)
            / u64::from(self.interval_secs.max(1))
    }

    /// Raw data volume produced per day, in bytes (75-byte records).
    pub fn raw_bytes_per_day(&self) -> u64 {
        self.inserts_per_second() * 86_400 * crate::record::RAW_RECORD_SIZE as u64
    }

    /// Total distinct metric name series in the system.
    pub fn series_count(&self) -> u64 {
        u64::from(self.hosts) * u64::from(self.metrics_per_host)
    }
}

/// Generates the hierarchical name of the `index`-th metric on `host`.
///
/// Names follow the Figure-2 convention `HostNNN/AgentN/ComponentNNN/Kind`.
pub fn metric_name(host: u32, index: u32) -> String {
    let agent = index % 4;
    let kind = METRIC_KINDS[(index as usize) % METRIC_KINDS.len()];
    let component_kind =
        COMPONENT_KINDS[(index as usize / METRIC_KINDS.len()) % COMPONENT_KINDS.len()];
    let component = index / (METRIC_KINDS.len() * COMPONENT_KINDS.len()) as u32;
    format!("Host{host:05}/Agent{agent}/{component_kind}{component:04}/{kind}")
}

/// A deterministic stream of agent reports.
///
/// Every call to [`AgentReporter::next_batch`] advances virtual wall time
/// by one interval and produces one [`ApmMeasurement`] per configured
/// metric, with plausible value dynamics (a random walk per series).
#[derive(Clone, Debug)]
pub struct AgentReporter {
    host: u32,
    metrics: u32,
    interval_secs: u32,
    timestamp: u64,
    walk_state: u64,
}

impl AgentReporter {
    /// Creates a reporter for `host` publishing `metrics` series starting
    /// at UNIX time `start_ts`.
    pub fn new(host: u32, metrics: u32, interval_secs: u32, start_ts: u64) -> Self {
        AgentReporter {
            host,
            metrics,
            interval_secs,
            timestamp: start_ts,
            walk_state: (u64::from(host) << 32) | 0xA5A5_5A5A,
        }
    }

    fn next_noise(&mut self) -> u64 {
        // xorshift64* keeps value dynamics deterministic per host.
        self.walk_state ^= self.walk_state << 13;
        self.walk_state ^= self.walk_state >> 7;
        self.walk_state ^= self.walk_state << 17;
        self.walk_state
    }

    /// Produces the next reporting interval's batch of measurements.
    pub fn next_batch(&mut self) -> Vec<ApmMeasurement> {
        let ts = self.timestamp;
        self.timestamp += u64::from(self.interval_secs);
        (0..self.metrics)
            .map(|i| {
                let noise = self.next_noise();
                let value = (noise % 97) as i64 + 1;
                let spread = (noise >> 8) % 7;
                ApmMeasurement {
                    metric: metric_name(self.host, i),
                    value,
                    min: (value - spread as i64).max(0),
                    max: value + spread as i64,
                    timestamp: ts,
                    duration: self.interval_secs,
                }
            })
            .collect()
    }

    /// UNIX timestamp the next batch will carry.
    pub fn next_timestamp(&self) -> u64 {
        self.timestamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_reports_10m_inserts_per_second() {
        // §1: "10 million individual measurements are reported per second".
        assert_eq!(
            MonitoredSystem::paper_scenario().inserts_per_second(),
            10_000_000
        );
    }

    #[test]
    fn conclusion_scenario_reports_240k_inserts_per_second() {
        // §8: "the total number of inserts per second is 240K".
        assert_eq!(
            MonitoredSystem::conclusion_scenario().inserts_per_second(),
            240_000
        );
    }

    #[test]
    fn raw_volume_uses_75_byte_records() {
        let s = MonitoredSystem {
            hosts: 1,
            metrics_per_host: 10,
            interval_secs: 10,
        };
        assert_eq!(s.inserts_per_second(), 1);
        assert_eq!(s.raw_bytes_per_day(), 86_400 * 75);
    }

    #[test]
    fn metric_names_follow_figure2_shape() {
        let name = metric_name(3, 0);
        assert!(name.starts_with("Host00003/Agent0/"));
        assert!(name.ends_with("/AverageResponseTime"));
        assert_eq!(name.split('/').count(), 4);
    }

    #[test]
    fn metric_names_are_unique_per_host() {
        let names: std::collections::HashSet<_> = (0..1000).map(|i| metric_name(1, i)).collect();
        assert_eq!(names.len(), 1000);
    }

    #[test]
    fn reporter_batches_advance_time_and_are_deterministic() {
        let mut a = AgentReporter::new(7, 5, 10, 1_000);
        let mut b = AgentReporter::new(7, 5, 10, 1_000);
        let batch_a = a.next_batch();
        let batch_b = b.next_batch();
        assert_eq!(batch_a, batch_b);
        assert_eq!(batch_a.len(), 5);
        assert!(batch_a
            .iter()
            .all(|m| m.timestamp == 1_000 && m.duration == 10));
        assert_eq!(a.next_timestamp(), 1_010);
        let second = a.next_batch();
        assert!(second.iter().all(|m| m.timestamp == 1_010));
    }

    #[test]
    fn measurements_keep_min_le_value_le_max() {
        let mut r = AgentReporter::new(1, 100, 10, 0);
        for m in r.next_batch() {
            assert!(m.min <= m.value && m.value <= m.max, "violated by {m:?}");
        }
    }
}
