//! The five Table-1 workloads and the operation stream generator.
//!
//! Table 1 of the paper:
//!
//! | Workload | % Read | % Scans | % Inserts |
//! |----------|--------|---------|-----------|
//! | R        | 95     | 0       | 5         |
//! | RW       | 50     | 0       | 50        |
//! | W        | 1      | 0       | 99        |
//! | RS       | 47     | 47      | 6         |
//! | RSW      | 25     | 25      | 50        |
//!
//! §3 further fixes: scan length 50 records, all fields fetched, uniform
//! access, 10 million records loaded per server node, 600-second runs.

use crate::keyspace::{record_for_seq, KeyChooser, KeyDistribution, SplitRng};
use crate::ops::{OpKind, Operation};
use crate::record::MetricKey;
use crate::snap::{SnapError, SnapReader, SnapWriter};

/// The paper's fixed scan length (§3: "a scan-length of 50 records").
pub const SCAN_LENGTH: usize = 50;

/// An operation mix in percent. Parts must sum to 100.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpMix {
    pub read_pct: u8,
    pub scan_pct: u8,
    pub insert_pct: u8,
    pub update_pct: u8,
}

impl OpMix {
    /// Creates a mix, validating that it sums to 100 %.
    pub fn new(
        read_pct: u8,
        scan_pct: u8,
        insert_pct: u8,
        update_pct: u8,
    ) -> Result<Self, MixError> {
        let sum = read_pct as u16 + scan_pct as u16 + insert_pct as u16 + update_pct as u16;
        if sum != 100 {
            return Err(MixError { sum });
        }
        Ok(OpMix {
            read_pct,
            scan_pct,
            insert_pct,
            update_pct,
        })
    }

    /// Whether this mix contains scans (stores without scan support are
    /// excluded from such workloads, §5.4).
    pub fn has_scans(&self) -> bool {
        self.scan_pct > 0
    }

    /// Fraction of operations that are writes.
    pub fn write_fraction(&self) -> f64 {
        (self.insert_pct + self.update_pct) as f64 / 100.0
    }

    /// Picks an operation kind from the mix given a uniform draw in [0,100).
    fn pick(&self, draw: u8) -> OpKind {
        debug_assert!(draw < 100);
        let mut d = draw;
        if d < self.read_pct {
            return OpKind::Read;
        }
        d -= self.read_pct;
        if d < self.scan_pct {
            return OpKind::Scan;
        }
        d -= self.scan_pct;
        if d < self.insert_pct {
            return OpKind::Insert;
        }
        OpKind::Update
    }
}

/// Error produced for a mix that does not sum to 100 %.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixError {
    /// The offending sum.
    pub sum: u16,
}

impl std::fmt::Display for MixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "operation mix must sum to 100%, got {}%", self.sum)
    }
}

impl std::error::Error for MixError {}

/// A named benchmark workload: an operation mix plus key distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// Short name used in figures ("R", "RW", ...).
    pub name: &'static str,
    /// Operation mix.
    pub mix: OpMix,
    /// Key distribution for reads and scan starts.
    pub distribution: KeyDistribution,
    /// Records returned per scan.
    pub scan_length: usize,
}

impl Workload {
    fn table1(name: &'static str, read: u8, scan: u8, insert: u8) -> Workload {
        Workload {
            name,
            mix: OpMix::new(read, scan, insert, 0).expect("Table-1 mixes sum to 100"),
            distribution: KeyDistribution::Uniform,
            scan_length: SCAN_LENGTH,
        }
    }

    /// Workload R: 95 % reads, 5 % inserts (web-style read-intensive).
    pub fn r() -> Workload {
        Workload::table1("R", 95, 0, 5)
    }

    /// Workload RW: 50 % reads, 50 % inserts.
    pub fn rw() -> Workload {
        Workload::table1("RW", 50, 0, 50)
    }

    /// Workload W: 1 % reads, 99 % inserts — the APM use case (§5.3).
    pub fn w() -> Workload {
        Workload::table1("W", 1, 0, 99)
    }

    /// Workload RS: 47 % reads, 47 % scans, 6 % inserts.
    pub fn rs() -> Workload {
        Workload::table1("RS", 47, 47, 6)
    }

    /// Workload RSW: 25 % reads, 25 % scans, 50 % inserts.
    pub fn rsw() -> Workload {
        Workload::table1("RSW", 25, 25, 50)
    }

    /// All five Table-1 workloads in presentation order.
    pub fn all() -> Vec<Workload> {
        vec![
            Workload::r(),
            Workload::rw(),
            Workload::w(),
            Workload::rs(),
            Workload::rsw(),
        ]
    }

    /// Looks a workload up by its Table-1 name (case-insensitive).
    pub fn by_name(name: &str) -> Option<Workload> {
        Workload::all()
            .into_iter()
            .find(|w| w.name.eq_ignore_ascii_case(name))
    }
}

/// Generates the operation stream for one benchmark run.
///
/// The generator owns the shared key-space state: the number of records
/// inserted so far. All simulated clients draw from one generator (the
/// simulator is single-threaded, so no synchronisation is needed), which
/// matches YCSB's global acknowledged-insert counter.
#[derive(Clone, Debug)]
pub struct WorkloadGenerator {
    /// Construction-time config; not part of the snapshot stream.
    workload: Workload, // audit:allow(snap-drift)
    chooser: KeyChooser,
    rng: SplitRng,
    /// Sequence number of the next insert.
    next_seq: u64,
    /// Number of records whose inserts are acknowledged (readable).
    acked: u64,
}

impl WorkloadGenerator {
    /// Creates a generator over a store pre-loaded with `initial_records`.
    pub fn new(workload: Workload, initial_records: u64, seed: u64) -> Self {
        let mut rng = SplitRng::new(seed);
        let chooser = KeyChooser::new(workload.distribution, rng.split(0xC0FFEE));
        WorkloadGenerator {
            workload,
            chooser,
            rng,
            next_seq: initial_records,
            acked: initial_records,
        }
    }

    /// The workload being generated.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Number of records the generator believes exist.
    pub fn record_count(&self) -> u64 {
        self.acked
    }

    /// Iterator over the sequence numbers of the load phase
    /// (`0..initial`), in insert order.
    pub fn load_sequence(initial_records: u64) -> impl Iterator<Item = crate::record::Record> {
        (0..initial_records).map(record_for_seq)
    }

    /// Produces the next operation.
    pub fn next_op(&mut self) -> Operation {
        let draw = (self.rng.next_below(100)) as u8;
        match self.workload.mix.pick(draw) {
            OpKind::Read => {
                let seq = self.chooser.choose(self.acked);
                Operation::Read {
                    key: record_for_seq(seq).key,
                }
            }
            OpKind::Scan => {
                let seq = self.chooser.choose(self.acked);
                Operation::Scan {
                    start: record_for_seq(seq).key,
                    len: self.workload.scan_length,
                }
            }
            OpKind::Insert => {
                let seq = self.next_seq;
                self.next_seq += 1;
                Operation::Insert {
                    record: record_for_seq(seq),
                }
            }
            OpKind::Update => {
                let seq = self.chooser.choose(self.acked);
                Operation::Update {
                    record: record_for_seq(seq),
                }
            }
        }
    }

    /// Acknowledges an insert, making the record eligible for reads.
    ///
    /// The driver calls this when an insert completes; reads issued before
    /// the acknowledgement never target the in-flight record, which is the
    /// YCSB behaviour that keeps reads from missing.
    pub fn ack_insert(&mut self) {
        self.acked += 1;
    }

    /// Expected key for sequence `seq` (test helper re-export).
    pub fn key_for(seq: u64) -> MetricKey {
        record_for_seq(seq).key
    }

    /// Serializes the generator's mutable state (RNG streams, chooser
    /// cache, sequence counters). The workload itself is configuration
    /// and is re-derived from the run config on restore.
    pub fn snap_state(&self, w: &mut SnapWriter) {
        self.chooser.snap_state(w);
        w.put(&self.rng);
        w.put(&self.next_seq);
        w.put(&self.acked);
    }

    /// Restores state written by [`Self::snap_state`] into a generator
    /// built from the same workload/seed configuration.
    pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.chooser.restore_state(r)?;
        self.rng = r.get()?;
        self.next_seq = r.u64()?;
        self.acked = r.u64()?;
        Ok(())
    }
}

/// Returns Table 1 as (name, read %, scan %, insert %) rows — used by the
/// `repro table1` command and the documentation tests.
pub fn table1() -> [(&'static str, u8, u8, u8); 5] {
    [
        ("R", 95, 0, 5),
        ("RW", 50, 0, 50),
        ("W", 1, 0, 99),
        ("RS", 47, 47, 6),
        ("RSW", 25, 25, 50),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn table1_matches_named_constructors() {
        for (name, read, scan, insert) in table1() {
            let w = Workload::by_name(name).unwrap_or_else(|| panic!("missing workload {name}"));
            assert_eq!(w.mix.read_pct, read, "{name} read%");
            assert_eq!(w.mix.scan_pct, scan, "{name} scan%");
            assert_eq!(w.mix.insert_pct, insert, "{name} insert%");
            assert_eq!(
                w.mix.update_pct, 0,
                "{name} has no updates (append-only APM data)"
            );
            assert_eq!(w.scan_length, 50, "{name} scan length (§3)");
        }
    }

    #[test]
    fn invalid_mix_is_rejected() {
        assert!(OpMix::new(50, 0, 49, 0).is_err());
        assert!(OpMix::new(50, 25, 25, 25).is_err());
        let err = OpMix::new(10, 10, 10, 10).unwrap_err();
        assert_eq!(err.sum, 40);
        assert!(err.to_string().contains("40"));
    }

    #[test]
    fn generated_mix_matches_requested_percentages() {
        for workload in Workload::all() {
            let mut generator = WorkloadGenerator::new(workload.clone(), 10_000, 99);
            let mut counts: HashMap<OpKind, u64> = HashMap::new();
            let total = 40_000u64;
            for _ in 0..total {
                let op = generator.next_op();
                if op.kind() == OpKind::Insert {
                    generator.ack_insert();
                }
                *counts.entry(op.kind()).or_default() += 1;
            }
            let pct = |k: OpKind| 100.0 * *counts.get(&k).unwrap_or(&0) as f64 / total as f64;
            assert!(
                (pct(OpKind::Read) - workload.mix.read_pct as f64).abs() < 2.0,
                "{}",
                workload.name
            );
            assert!(
                (pct(OpKind::Scan) - workload.mix.scan_pct as f64).abs() < 2.0,
                "{}",
                workload.name
            );
            assert!(
                (pct(OpKind::Insert) - workload.mix.insert_pct as f64).abs() < 2.0,
                "{}",
                workload.name
            );
        }
    }

    #[test]
    fn inserts_use_fresh_sequential_ids_and_reads_stay_behind_acks() {
        let mut generator = WorkloadGenerator::new(Workload::rw(), 100, 7);
        let mut next_expected = 100u64;
        for _ in 0..5_000 {
            match generator.next_op() {
                Operation::Insert { record } => {
                    assert_eq!(record.key, WorkloadGenerator::key_for(next_expected));
                    next_expected += 1;
                    generator.ack_insert();
                }
                Operation::Read { key } | Operation::Scan { start: key, .. } => {
                    let id = key.to_id().expect("benchmark key");
                    // The read target must be one of the acked records.
                    let acked_ids: bool = (0..generator.record_count())
                        .any(|s| WorkloadGenerator::key_for(s).to_id() == Some(id));
                    // Exhaustive check is quadratic; only sample early on.
                    if generator.record_count() <= 200 {
                        assert!(acked_ids, "read targeted unacked record");
                    }
                }
                Operation::Update { .. } => unreachable!("Table-1 workloads have no updates"),
            }
        }
    }

    #[test]
    fn load_sequence_yields_initial_records_in_seq_order() {
        let records: Vec<_> = WorkloadGenerator::load_sequence(10).collect();
        assert_eq!(records.len(), 10);
        for (seq, rec) in records.iter().enumerate() {
            assert_eq!(rec.key, WorkloadGenerator::key_for(seq as u64));
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mut a = WorkloadGenerator::new(Workload::r(), 1_000, 5);
        let mut b = WorkloadGenerator::new(Workload::r(), 1_000, 5);
        for _ in 0..1_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn generator_state_round_trips_mid_stream() {
        for workload in [Workload::rsw(), Workload::rs()] {
            let mut live = WorkloadGenerator::new(workload.clone(), 1_000, 11);
            for _ in 0..500 {
                if live.next_op().kind() == OpKind::Insert {
                    live.ack_insert();
                }
            }
            let mut w = SnapWriter::new();
            live.snap_state(&mut w);
            let bytes = w.into_bytes();
            let mut restored = WorkloadGenerator::new(workload, 1_000, 11);
            let mut r = SnapReader::new(&bytes);
            restored.restore_state(&mut r).unwrap();
            r.finish().unwrap();
            for _ in 0..500 {
                let a = live.next_op();
                let b = restored.next_op();
                assert_eq!(a, b);
                if a.kind() == OpKind::Insert {
                    live.ack_insert();
                    restored.ack_insert();
                }
            }
        }
    }

    #[test]
    fn write_fraction_reflects_table1() {
        assert!((Workload::w().mix.write_fraction() - 0.99).abs() < 1e-9);
        assert!((Workload::r().mix.write_fraction() - 0.05).abs() < 1e-9);
        assert!(Workload::rs().mix.has_scans());
        assert!(!Workload::rw().mix.has_scans());
    }
}
