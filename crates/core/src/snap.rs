//! apm-snap: a versioned, dependency-free binary snapshot format.
//!
//! Long-horizon simulated runs (compaction-debt accumulation, hour-scale
//! virtual time) are deterministic but expensive to replay from `t = 0`.
//! This module defines the container every checkpoint is written into and
//! the [`Snap`] encoding trait the kernel, the storage engines, the store
//! models, and the benchmark driver implement so a run can be frozen at a
//! virtual-time boundary and resumed byte-identically.
//!
//! ## Container layout (version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "APMS"
//! 4       2     format version (u16 LE)
//! 6       var   scenario id (u64 LE length + UTF-8 bytes)
//! ..      8     config fingerprint (u64 LE) — FNV-1a over the run config
//! ..      1     feature flags (bit 0 = audit, bit 1 = trace)
//! ..      4     checkpoint index (u32 LE)
//! ..      8     virtual time of the checkpoint in ns (u64 LE)
//! ..      8     body length (u64 LE)
//! ..      var   body (Snap-encoded sections)
//! end-8   8     FNV-1a 64 checksum over everything before it (u64 LE)
//! ```
//!
//! All integers are little-endian. Floats are encoded via
//! [`f64::to_bits`], so round-trips are bit-exact. Collections are
//! length-prefixed (`u64` count); map/set entries are written in the
//! container's own iteration order (`BTreeMap`/`BTreeSet` — i.e. sorted),
//! never in hash order, so identical logical state always serializes to
//! identical bytes.
//!
//! The encoding is deliberately schema-free: readers must consume fields
//! in exactly the order writers produced them. Cross-version migration is
//! out of scope — a [`SnapError::VersionMismatch`] tells the caller to
//! regenerate the checkpoint, which a deterministic run can always do.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// First four bytes of every snapshot file.
pub const MAGIC: [u8; 4] = *b"APMS";
/// Current container format version.
pub const VERSION: u16 = 1;

/// Feature-flag bit recorded when the writer was built with `audit`.
pub const FEATURE_AUDIT: u8 = 1 << 0;
/// Feature-flag bit recorded when the writer was built with `trace`.
pub const FEATURE_TRACE: u8 = 1 << 1;

/// FNV-1a 64-bit hash — the checksum and fingerprint primitive used
/// throughout the snapshot layer (same family the kernel auditor uses
/// for its rolling fingerprint).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything that can go wrong opening or decoding a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The reader ran out of bytes mid-field.
    UnexpectedEof {
        /// Bytes the decoder needed.
        wanted: usize,
        /// Bytes left in the buffer.
        remaining: usize,
    },
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The container was written by a different format version.
    VersionMismatch {
        /// Version stored in the container.
        found: u16,
        /// Version this build understands.
        expected: u16,
    },
    /// An enum discriminant had no decoding.
    BadTag {
        /// Which type was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// The trailing FNV-1a checksum does not match the contents.
    ChecksumMismatch {
        /// Checksum stored in the container.
        stored: u64,
        /// Checksum recomputed from the bytes.
        computed: u64,
    },
    /// A section decoder finished with bytes left over.
    TrailingBytes {
        /// Unconsumed byte count.
        remaining: usize,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// The snapshot was taken under different `audit`/`trace` features
    /// than this build — fingerprints could not be compared.
    FeatureMismatch {
        /// Flags stored in the container.
        stored: u8,
        /// Flags of the running build.
        active: u8,
    },
    /// The snapshot belongs to a different run configuration.
    ConfigMismatch {
        /// Fingerprint stored in the container.
        stored: u64,
        /// Fingerprint of the config being resumed.
        active: u64,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof { wanted, remaining } => {
                write!(f, "unexpected EOF: wanted {wanted} bytes, {remaining} left")
            }
            SnapError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapError::VersionMismatch { found, expected } => {
                write!(f, "snapshot format v{found}, this build reads v{expected}")
            }
            SnapError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            SnapError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
            SnapError::BadUtf8 => write!(f, "invalid UTF-8 in snapshot string"),
            SnapError::FeatureMismatch { stored, active } => write!(
                f,
                "snapshot features {stored:#04x} differ from build features {active:#04x}"
            ),
            SnapError::ConfigMismatch { stored, active } => write!(
                f,
                "snapshot config fingerprint {stored:#018x} differs from run config {active:#018x}"
            ),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only byte sink for snapshot encoding.
#[derive(Clone, Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`, little-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` bit-exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes any [`Snap`] value.
    pub fn put<T: Snap>(&mut self, v: &T) {
        v.snap(self);
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes, borrowed.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor over snapshot bytes for decoding.
#[derive(Clone, Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::UnexpectedEof {
                wanted: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("len 16"),
        ))
    }

    /// Reads an `f64` bit-exactly.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }

    /// Reads a length-prefixed string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let len = self.u64()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| SnapError::BadUtf8)
    }

    /// Reads any [`Snap`] value.
    pub fn get<T: Snap>(&mut self) -> Result<T, SnapError> {
        T::restore(self)
    }

    /// Succeeds only when every byte was consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }
}

/// Bit-exact binary encoding into a [`SnapWriter`] / out of a
/// [`SnapReader`]. Implementations must encode deterministically:
/// identical logical state ⇒ identical bytes.
pub trait Snap: Sized {
    /// Appends this value's encoding to `w`.
    fn snap(&self, w: &mut SnapWriter);
    /// Decodes one value from `r`.
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError>;
}

macro_rules! snap_int {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Snap for $ty {
            fn snap(&self, w: &mut SnapWriter) {
                w.$put(*self);
            }
            fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
                r.$get()
            }
        }
    };
}

snap_int!(u8, put_u8, u8);
snap_int!(u16, put_u16, u16);
snap_int!(u32, put_u32, u32);
snap_int!(u64, put_u64, u64);
snap_int!(u128, put_u128, u128);
snap_int!(f64, put_f64, f64);

impl Snap for usize {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(*self as u64);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(r.u64()? as usize)
    }
}

impl Snap for bool {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(u8::from(*self));
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(SnapError::BadTag {
                what: "bool",
                tag: u64::from(tag),
            }),
        }
    }
}

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        r.str()
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.snap(w);
            }
        }
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            tag => Err(SnapError::BadTag {
                what: "Option",
                tag: u64::from(tag),
            }),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        let len = r.u64()? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        let len = r.u64()? as usize;
        let mut out = VecDeque::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push_back(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        let len = r.u64()? as usize;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::restore(r)?;
            let v = V::restore(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snap + Ord> Snap for BTreeSet<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        let len = r.u64()? as usize;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok((A::restore(r)?, B::restore(r)?, C::restore(r)?))
    }
}

impl<const N: usize> Snap for [u8; N] {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_bytes(self);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(r.bytes(N)?.try_into().expect("exact length"))
    }
}

/// Identifying metadata sealed into every snapshot container.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Scenario/run identifier (free-form; the harness uses scenario ids).
    pub scenario: String,
    /// FNV-1a fingerprint of the run configuration, so a snapshot cannot
    /// be resumed against a different config.
    pub config_fingerprint: u64,
    /// [`FEATURE_AUDIT`] | [`FEATURE_TRACE`] bits of the writing build.
    pub features: u8,
    /// Zero-based index of this checkpoint within its run.
    pub checkpoint_index: u32,
    /// Virtual time at which the checkpoint was taken, in nanoseconds.
    pub virtual_time_ns: u64,
}

/// Seals `body` into a versioned, checksummed container.
pub fn seal(header: &SnapshotHeader, body: &[u8]) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u16(VERSION);
    w.put_str(&header.scenario);
    w.put_u64(header.config_fingerprint);
    w.put_u8(header.features);
    w.put_u32(header.checkpoint_index);
    w.put_u64(header.virtual_time_ns);
    w.put_u64(body.len() as u64);
    w.put_bytes(body);
    let checksum = fnv1a64(w.bytes());
    w.put_u64(checksum);
    w.into_bytes()
}

/// Opens a sealed container: verifies magic, version and checksum, then
/// returns the header and the body bytes.
pub fn open(bytes: &[u8]) -> Result<(SnapshotHeader, &[u8]), SnapError> {
    if bytes.len() < MAGIC.len() + 2 + 8 {
        return Err(SnapError::UnexpectedEof {
            wanted: MAGIC.len() + 2 + 8,
            remaining: bytes.len(),
        });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let (contents, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("len 8"));
    let computed = fnv1a64(contents);
    if stored != computed {
        return Err(SnapError::ChecksumMismatch { stored, computed });
    }
    let mut r = SnapReader::new(contents);
    r.bytes(MAGIC.len())?;
    let version = r.u16()?;
    if version != VERSION {
        return Err(SnapError::VersionMismatch {
            found: version,
            expected: VERSION,
        });
    }
    let scenario = r.str()?;
    let config_fingerprint = r.u64()?;
    let features = r.u8()?;
    let checkpoint_index = r.u32()?;
    let virtual_time_ns = r.u64()?;
    let body_len = r.u64()? as usize;
    let body = r.bytes(body_len)?;
    r.finish()?;
    Ok((
        SnapshotHeader {
            scenario,
            config_fingerprint,
            features,
            checkpoint_index,
            virtual_time_ns,
        },
        body,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> SnapshotHeader {
        SnapshotHeader {
            scenario: "test-scenario".to_string(),
            config_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            features: FEATURE_AUDIT | FEATURE_TRACE,
            checkpoint_index: 3,
            virtual_time_ns: 45_000_000_000,
        }
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.put(&0xABu8);
        w.put(&0xBEEFu16);
        w.put(&0xDEAD_BEEFu32);
        w.put(&u64::MAX);
        w.put(&(u128::MAX - 1));
        w.put(&usize::MAX);
        w.put(&true);
        w.put(&false);
        w.put(&-0.0f64);
        w.put(&f64::NAN);
        w.put(&"héllo".to_string());
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get::<u8>().unwrap(), 0xAB);
        assert_eq!(r.get::<u16>().unwrap(), 0xBEEF);
        assert_eq!(r.get::<u32>().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get::<u64>().unwrap(), u64::MAX);
        assert_eq!(r.get::<u128>().unwrap(), u128::MAX - 1);
        assert_eq!(r.get::<usize>().unwrap(), usize::MAX);
        assert!(r.get::<bool>().unwrap());
        assert!(!r.get::<bool>().unwrap());
        assert_eq!(r.get::<f64>().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get::<f64>().unwrap().is_nan());
        assert_eq!(r.get::<String>().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn collections_round_trip() {
        let vec = vec![1u64, 2, 3];
        let deque: VecDeque<u32> = [9u32, 8, 7].into_iter().collect();
        let map: BTreeMap<String, u64> = [("a".to_string(), 1u64), ("b".to_string(), 2)]
            .into_iter()
            .collect();
        let set: BTreeSet<u64> = [5u64, 3, 8].into_iter().collect();
        let opt_some = Some((1u64, 2u64, true));
        let opt_none: Option<u64> = None;
        let arr = [7u8; 25];
        let mut w = SnapWriter::new();
        w.put(&vec);
        w.put(&deque);
        w.put(&map);
        w.put(&set);
        w.put(&opt_some);
        w.put(&opt_none);
        w.put(&arr);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get::<Vec<u64>>().unwrap(), vec);
        assert_eq!(r.get::<VecDeque<u32>>().unwrap(), deque);
        assert_eq!(r.get::<BTreeMap<String, u64>>().unwrap(), map);
        assert_eq!(r.get::<BTreeSet<u64>>().unwrap(), set);
        assert_eq!(r.get::<Option<(u64, u64, bool)>>().unwrap(), opt_some);
        assert_eq!(r.get::<Option<u64>>().unwrap(), opt_none);
        assert_eq!(r.get::<[u8; 25]>().unwrap(), arr);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_input_reports_eof() {
        let mut w = SnapWriter::new();
        w.put(&12345u64);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..4]);
        assert_eq!(
            r.get::<u64>(),
            Err(SnapError::UnexpectedEof {
                wanted: 8,
                remaining: 4
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = SnapWriter::new();
        w.put(&1u8);
        w.put(&2u8);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let _ = r.get::<u8>().unwrap();
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn bad_enum_tags_are_rejected() {
        let bytes = [7u8];
        assert!(matches!(
            SnapReader::new(&bytes).get::<bool>(),
            Err(SnapError::BadTag { what: "bool", .. })
        ));
        assert!(matches!(
            SnapReader::new(&bytes).get::<Option<u8>>(),
            Err(SnapError::BadTag { what: "Option", .. })
        ));
    }

    #[test]
    fn container_seals_and_opens() {
        let body = b"section bytes".to_vec();
        let sealed = seal(&header(), &body);
        let (h, b) = open(&sealed).unwrap();
        assert_eq!(h, header());
        assert_eq!(b, &body[..]);
    }

    #[test]
    fn container_rejects_bad_magic() {
        let mut sealed = seal(&header(), b"x");
        sealed[0] = b'Z';
        assert_eq!(open(&sealed), Err(SnapError::BadMagic));
    }

    #[test]
    fn container_rejects_version_mismatch() {
        // Bump the version field and re-seal the checksum so only the
        // version check can fail.
        let mut sealed = seal(&header(), b"x");
        let v = (VERSION + 1).to_le_bytes();
        sealed[4] = v[0];
        sealed[5] = v[1];
        let len = sealed.len();
        let checksum = fnv1a64(&sealed[..len - 8]).to_le_bytes();
        sealed[len - 8..].copy_from_slice(&checksum);
        assert_eq!(
            open(&sealed),
            Err(SnapError::VersionMismatch {
                found: VERSION + 1,
                expected: VERSION
            })
        );
    }

    #[test]
    fn container_detects_corruption() {
        let mut sealed = seal(&header(), b"section bytes");
        let mid = sealed.len() / 2;
        sealed[mid] ^= 0x40;
        assert!(matches!(
            open(&sealed),
            Err(SnapError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
