//! Key generation and key-choosing distributions.
//!
//! The benchmark follows YCSB's key-space discipline: a *load phase*
//! inserts `initial_records` records with identifiers `0..initial`, and
//! the *transaction phase* appends new identifiers sequentially while
//! reads/scans choose uniformly among the records inserted so far
//! (§3: "All access patterns were uniformly distributed"). Zipfian and
//! latest choosers are provided for the skew ablation extension.
//!
//! Identifiers are scrambled through a 64-bit hash before being rendered
//! into keys (like YCSB's `user<fnv(seq)>`), so insertion order is *not*
//! key order — exactly the property that makes LSM compaction and B-tree
//! splits non-trivial, and scans hit arbitrary record populations.

use crate::record::{MetricKey, Record};
use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

/// Stateless 64-bit mix (SplitMix64 finaliser). Bijective, so scrambled
/// identifiers never collide. Thin alias for [`crate::rng::mix`], the
/// tree's single SplitMix64.
#[inline]
pub fn scramble(id: u64) -> u64 {
    crate::rng::mix(id)
}

/// Produces the benchmark key for sequence number `seq`.
#[inline]
pub fn key_for_seq(seq: u64) -> MetricKey {
    MetricKey::from_id(scramble(seq))
}

/// Produces the full record for sequence number `seq`.
#[inline]
pub fn record_for_seq(seq: u64) -> Record {
    Record::from_id(scramble(seq))
}

/// Key-choosing distribution for read/scan operations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDistribution {
    /// Uniform over all inserted records (the paper's setting).
    Uniform,
    /// Zipfian with the given theta (YCSB default 0.99). Extension.
    Zipfian(f64),
    /// Skewed towards the most recently inserted records. Extension.
    Latest,
}

/// Deterministic xorshift128+ generator — small, fast, seedable, and
/// independent of the `rand` crate's version-to-version stream changes,
/// which keeps recorded experiment output stable.
#[derive(Clone, Debug)]
pub struct SplitRng {
    s0: u64,
    s1: u64,
}

impl SplitRng {
    /// Creates a generator from a seed; two different seeds give
    /// independent streams.
    pub fn new(seed: u64) -> Self {
        // Seed both words through SplitMix so that small seeds work.
        let s0 = scramble(seed).max(1);
        let s1 = scramble(seed.wrapping_add(1)).max(1);
        SplitRng { s0, s1 }
    }

    /// Derives an independent child stream (used to give each simulated
    /// client its own stream without coordination).
    pub fn split(&mut self, tag: u64) -> SplitRng {
        SplitRng::new(self.next_u64() ^ scramble(tag))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping; bias is < 2^-32 for the
        // bounds used here (record counts), irrelevant for benchmarking.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The raw generator state, for snapshots.
    pub fn state(&self) -> (u64, u64) {
        (self.s0, self.s1)
    }

    /// Rebuilds a generator from a snapshotted [`Self::state`].
    pub fn from_state(s0: u64, s1: u64) -> SplitRng {
        SplitRng { s0, s1 }
    }
}

impl Snap for SplitRng {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.s0);
        w.put_u64(self.s1);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(SplitRng {
            s0: r.u64()?,
            s1: r.u64()?,
        })
    }
}

/// Chooses existing record sequence numbers according to a distribution.
///
/// The chooser tracks how many records exist (`0..count`); the driver
/// bumps `count` as inserts are acknowledged, matching YCSB's
/// `AcknowledgedCounterGenerator`.
#[derive(Clone, Debug)]
pub struct KeyChooser {
    /// Construction-time config; not part of the snapshot stream.
    dist: KeyDistribution, // audit:allow(snap-drift)
    rng: SplitRng,
    /// Cached Zipfian state (recomputed when `count` grows by >10 %).
    zipf: Option<ZipfState>,
}

#[derive(Clone, Debug)]
struct ZipfState {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfState {
    fn new(n: u64, theta: f64) -> Self {
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfState {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn sample(&self, u: f64) -> u64 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Direct sum for small n; Euler–Maclaurin style approximation above.
    if n <= 10_000 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        // integral of x^-theta from 10_000 to n
        head + ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta)
    }
}

impl Snap for ZipfState {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.n);
        w.put_f64(self.theta);
        w.put_f64(self.alpha);
        w.put_f64(self.zetan);
        w.put_f64(self.eta);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(ZipfState {
            n: r.u64()?,
            theta: r.f64()?,
            alpha: r.f64()?,
            zetan: r.f64()?,
            eta: r.f64()?,
        })
    }
}

impl KeyChooser {
    /// Creates a chooser with its own RNG stream.
    pub fn new(dist: KeyDistribution, rng: SplitRng) -> Self {
        KeyChooser {
            dist,
            rng,
            zipf: None,
        }
    }

    /// Serializes the mutable chooser state (RNG position + Zipf cache).
    /// The distribution is configuration and is not written.
    pub fn snap_state(&self, w: &mut SnapWriter) {
        w.put(&self.rng);
        w.put(&self.zipf);
    }

    /// Restores state written by [`Self::snap_state`] into a chooser
    /// built with the same distribution.
    pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.rng = r.get()?;
        self.zipf = r.get()?;
        Ok(())
    }

    /// Picks the sequence number of an existing record, given that
    /// records `0..count` currently exist.
    ///
    /// # Panics
    /// Panics if `count == 0` — the benchmark always loads data first.
    pub fn choose(&mut self, count: u64) -> u64 {
        assert!(count > 0, "key chooser requires a non-empty store");
        match self.dist {
            KeyDistribution::Uniform => self.rng.next_below(count),
            KeyDistribution::Zipfian(theta) => {
                let needs_rebuild = match &self.zipf {
                    Some(z) => count > z.n + z.n / 10,
                    None => true,
                };
                if needs_rebuild {
                    self.zipf = Some(ZipfState::new(count, theta));
                }
                let u = self.rng.next_f64();
                let z = self.zipf.as_ref().expect("zipf state built above");
                // Popular items are the *scrambled-first* ids, matching
                // YCSB which scrambles after sampling.
                z.sample(u).min(count - 1)
            }
            KeyDistribution::Latest => {
                // Exponentially decaying preference for recent inserts.
                let u = self.rng.next_f64();
                let back = (-u.ln() * (count as f64 / 16.0)) as u64;
                count - 1 - back.min(count - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_is_injective_on_a_sample() {
        let mut seen = std::collections::HashSet::new();
        for seq in 0..10_000u64 {
            assert!(seen.insert(scramble(seq)), "collision at {seq}");
        }
    }

    #[test]
    fn keys_for_consecutive_seqs_are_not_ordered() {
        // Scrambling must destroy insertion order (YCSB hashed keyspace).
        let ordered = (0..100u64)
            .map(key_for_seq)
            .collect::<Vec<_>>()
            .windows(2)
            .filter(|w| w[0] < w[1])
            .count();
        assert!(ordered > 20 && ordered < 80, "keys look ordered: {ordered}");
    }

    #[test]
    fn rng_streams_are_deterministic_and_seed_dependent() {
        let mut a = SplitRng::new(42);
        let mut b = SplitRng::new(42);
        let mut c = SplitRng::new(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitRng::new(7);
        for bound in [1u64, 2, 3, 100, 1_000_000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn uniform_chooser_covers_the_space() {
        let mut chooser = KeyChooser::new(KeyDistribution::Uniform, SplitRng::new(1));
        let n = 100u64;
        let mut counts = vec![0u32; n as usize];
        for _ in 0..20_000 {
            counts[chooser.choose(n) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(min > 100, "uniform chooser starved a key: min={min}");
        assert!(max < 400, "uniform chooser over-picked a key: max={max}");
    }

    #[test]
    fn zipfian_chooser_is_skewed_towards_low_ids() {
        let mut chooser = KeyChooser::new(KeyDistribution::Zipfian(0.99), SplitRng::new(1));
        let n = 1_000u64;
        let hits_low = (0..10_000).filter(|_| chooser.choose(n) < n / 10).count();
        // Under uniform this would be ~1_000; zipf(0.99) concentrates most mass.
        assert!(hits_low > 5_000, "zipfian not skewed: {hits_low}");
    }

    #[test]
    fn latest_chooser_prefers_recent() {
        let mut chooser = KeyChooser::new(KeyDistribution::Latest, SplitRng::new(1));
        let n = 1_000u64;
        let recent = (0..10_000).filter(|_| chooser.choose(n) >= n - 200).count();
        assert!(recent > 7_000, "latest not recency-biased: {recent}");
    }

    #[test]
    fn choosers_never_exceed_count() {
        for dist in [
            KeyDistribution::Uniform,
            KeyDistribution::Zipfian(0.99),
            KeyDistribution::Latest,
        ] {
            let mut chooser = KeyChooser::new(dist, SplitRng::new(3));
            for count in [1u64, 2, 17, 1_000] {
                for _ in 0..500 {
                    assert!(
                        chooser.choose(count) < count,
                        "{dist:?} exceeded count {count}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn chooser_rejects_empty_store() {
        KeyChooser::new(KeyDistribution::Uniform, SplitRng::new(1)).choose(0);
    }
}
