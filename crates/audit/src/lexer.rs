//! A hand-rolled, dependency-free token-level lexer for Rust sources.
//!
//! The auditor must not pull in `syn`/`proc-macro2` (the workspace builds
//! offline — see DESIGN.md §5), so this module implements exactly the
//! subset of lexing the lint rules need:
//!
//! * comments (line, nested block) and string/char literals are stripped
//!   from the token stream — a `HashMap` inside a doc comment or an error
//!   message never trips a rule — but **string literal contents are kept**
//!   as [`Tok::Str`] tokens, because rule D5 reads experiment ids out of
//!   them and rule D3 needs to see `expect("")`;
//! * every token carries its line number and whether it sits inside test
//!   code (`#[cfg(test)]` / `#[test]` item bodies);
//! * the enclosing function name is tracked so rules can bless helpers by
//!   name (D4 exempts `*kahan*` / `*pairwise*` summation helpers);
//! * `#[cfg(feature = "...")]` attributes are tracked as token regions —
//!   an attribute gates the next braced item/block wholesale, or, when no
//!   brace opens first, the statement/field up to the next `;`/`,` at the
//!   arming depth. Every token carries the set of feature names gating it
//!   (rules S1/S2 read them); `not(...)`-negated gates are not recorded;
//! * `// audit:allow(<rule>)` comments are collected per line; an
//!   annotation silences a rule on its own line and on the following
//!   line, so both trailing and preceding placement work.

/// Kinds of tokens the rules care about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// A string literal's contents (quotes and escapes resolved enough
    /// for id matching; escape sequences are kept verbatim).
    Str(String),
    /// Any single punctuation byte (`.`, `(`, `::` arrives as two `:`).
    Punct(char),
    /// Integer/float literal (contents unparsed).
    Num(String),
    /// Lifetime or char literal — carried so token positions stay dense.
    Other,
}

/// One lexed token with its audit context.
#[derive(Clone, Debug)]
pub struct Token {
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// True inside `#[cfg(test)]` or `#[test]` item bodies.
    pub in_test: bool,
    /// Name of the innermost enclosing `fn`, if any.
    pub in_fn: Option<String>,
    /// Feature names from every enclosing `#[cfg(feature = "...")]`
    /// attribute, outermost first; empty for unconditional code.
    pub cfg_features: Vec<String>,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    /// `(line, rule)` pairs from `// audit:allow(<rule>)` comments.
    pub allows: Vec<(u32, String)>,
}

impl LexedFile {
    /// True when `rule` is allow-listed for `line` (annotation on the
    /// same line or the line directly above).
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| (*l == line || *l + 1 == line) && r == rule)
    }
}

/// Frame for the function-context stack: a brace depth and the function
/// name that owns everything deeper than it.
#[derive(Debug)]
struct FnFrame {
    depth: u32,
    name: String,
}

/// Region marker for test code: once a `#[cfg(test)]` / `#[test]`
/// attribute is seen, the next braced item body is test code.
#[derive(Debug, PartialEq)]
enum TestState {
    Outside,
    /// Attribute seen; waiting for the item's opening brace.
    Armed,
    /// Inside the item body; leaves when depth drops below `open_depth`.
    Inside {
        open_depth: u32,
    },
}

/// Region tracker for one `#[cfg(feature = "...")]` attribute. The gate
/// covers the next braced body (plus the signature tokens before it) —
/// or, if a `;`/`,` at the arming depth arrives first, just that
/// statement or struct field.
#[derive(Debug)]
struct CfgFrame {
    features: Vec<String>,
    state: CfgState,
}

#[derive(Debug, PartialEq)]
enum CfgState {
    /// Attribute seen; waiting for a brace or a terminator.
    Pending { arm_depth: u32, arm_paren: i32 },
    /// Gating a braced body; pops when its `}` closes.
    Block { open_depth: u32 },
}

/// Identifier-and-string content of one `#[...]` attribute, buffered so
/// the `]` handler can classify it (`cfg(test)`, `cfg(feature = "x")`).
#[derive(Debug, Default)]
struct AttrBuf {
    idents: String,
    strings: Vec<String>,
}

/// Lexes one Rust source file.
pub fn lex(source: &str) -> LexedFile {
    let bytes = source.as_bytes();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut depth: u32 = 0;
    let mut fn_stack: Vec<FnFrame> = Vec::new();
    // `Some(name)` after `fn <name>` until its body's `{` opens.
    let mut pending_fn: Option<String> = None;
    let mut prev_ident: Option<String> = None;
    let mut test = TestState::Outside;
    // Attribute scanning state for `#[cfg(test)]` / `#[test]` /
    // `#[cfg(feature = "...")]`.
    let mut attr_buf: Option<AttrBuf> = None;
    // Active feature gates, outermost first.
    let mut cfg_stack: Vec<CfgFrame> = Vec::new();
    // Paren/bracket nesting, so a `,` inside `f(a, b)` or `[a, b]` never
    // terminates a pending cfg gate.
    let mut paren: i32 = 0;

    macro_rules! push_tok {
        ($tok:expr) => {{
            let in_test = matches!(test, TestState::Armed | TestState::Inside { .. });
            let mut cfg_features: Vec<String> = Vec::new();
            for frame in &cfg_stack {
                for feat in &frame.features {
                    if !cfg_features.contains(feat) {
                        cfg_features.push(feat.clone());
                    }
                }
            }
            out.tokens.push(Token {
                tok: $tok,
                line,
                in_test,
                in_fn: fn_stack.last().map(|f| f.name.clone()),
                cfg_features,
            });
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: scan for audit:allow(<rule>).
                let end = source[i..].find('\n').map_or(bytes.len(), |n| i + n);
                let text = &source[i..end];
                let mut rest = text;
                while let Some(pos) = rest.find("audit:allow(") {
                    let inner = &rest[pos + "audit:allow(".len()..];
                    if let Some(close) = inner.find(')') {
                        for rule in inner[..close].split(',') {
                            out.allows.push((line, rule.trim().to_string()));
                        }
                        rest = &inner[close..];
                    } else {
                        break;
                    }
                }
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut nest = 1u32;
                i += 2;
                while i < bytes.len() && nest > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        nest += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        nest -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (s, consumed, newlines) = lex_string(&source[i..]);
                line += newlines;
                if let Some(buf) = attr_buf.as_mut() {
                    buf.strings.push(s.clone());
                }
                push_tok!(Tok::Str(s));
                i += consumed;
            }
            'r' if matches!(bytes.get(i + 1), Some(b'"') | Some(b'#'))
                && is_raw_string_start(&source[i..]) =>
            {
                let (s, consumed, newlines) = lex_raw_string(&source[i..]);
                line += newlines;
                push_tok!(Tok::Str(s));
                i += consumed;
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is ' followed by
                // an identifier not closed by '.
                let rest = &bytes[i + 1..];
                let ident_len = rest
                    .iter()
                    .take_while(|b| b.is_ascii_alphanumeric() || **b == b'_')
                    .count();
                if ident_len > 0 && rest.get(ident_len) != Some(&b'\'') {
                    // Lifetime: skip the tick, the identifier lexes next.
                    i += 1;
                } else {
                    // Char literal (possibly escaped).
                    i += 1;
                    if bytes.get(i) == Some(&b'\\') {
                        i += 2;
                    } else {
                        // Skip one UTF-8 scalar.
                        i += source[i..].chars().next().map_or(1, char::len_utf8);
                    }
                    if bytes.get(i) == Some(&b'\'') {
                        i += 1;
                    }
                    push_tok!(Tok::Other);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let ident = &source[start..i];
                // `fn name` introduces a function context.
                if prev_ident.as_deref() == Some("fn") {
                    pending_fn = Some(ident.to_string());
                }
                prev_ident = Some(ident.to_string());
                if let Some(buf) = attr_buf.as_mut() {
                    buf.idents.push_str(ident);
                }
                push_tok!(Tok::Ident(ident.to_string()));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop a `1..10` range from swallowing the dots.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                push_tok!(Tok::Num(source[start..i].to_string()));
                prev_ident = None;
            }
            '#' if bytes.get(i + 1) == Some(&b'[') => {
                // Attribute: buffer its identifiers and string literals to
                // spot test markers and feature gates.
                attr_buf = Some(AttrBuf::default());
                push_tok!(Tok::Punct('#'));
                i += 1;
            }
            '{' => {
                depth += 1;
                if let Some(name) = pending_fn.take() {
                    fn_stack.push(FnFrame { depth, name });
                }
                if test == TestState::Armed {
                    test = TestState::Inside { open_depth: depth };
                }
                // Every pending feature gate claims this braced body.
                for frame in &mut cfg_stack {
                    if matches!(frame.state, CfgState::Pending { .. }) {
                        frame.state = CfgState::Block { open_depth: depth };
                    }
                }
                push_tok!(Tok::Punct('{'));
                i += 1;
                prev_ident = None;
            }
            '}' => {
                if let TestState::Inside { open_depth } = test {
                    if depth == open_depth {
                        test = TestState::Outside;
                    }
                }
                if fn_stack.last().is_some_and(|f| f.depth == depth) {
                    fn_stack.pop();
                }
                push_tok!(Tok::Punct('}'));
                cfg_stack.retain(
                    |f| !matches!(f.state, CfgState::Block { open_depth } if open_depth == depth),
                );
                depth = depth.saturating_sub(1);
                i += 1;
                prev_ident = None;
            }
            '(' | '[' => {
                paren += 1;
                push_tok!(Tok::Punct(c));
                i += 1;
                if c == '[' {
                    prev_ident = None;
                }
            }
            ')' => {
                paren -= 1;
                push_tok!(Tok::Punct(')'));
                i += 1;
            }
            ']' => {
                paren -= 1;
                if let Some(buf) = attr_buf.take() {
                    let is_test_attr = buf.idents == "test" || buf.idents.starts_with("cfgtest");
                    if is_test_attr && test == TestState::Outside {
                        test = TestState::Armed;
                    }
                    // `#[cfg(feature = "...")]` (incl. `all(...)`/`any(...)`
                    // combinations) arms a feature gate; `cfg_attr` and
                    // `not(...)` forms are skipped — a negated gate does not
                    // put code behind the feature.
                    let is_feature_gate = buf.idents.starts_with("cfg")
                        && !buf.idents.starts_with("cfgattr")
                        && buf.idents.contains("feature")
                        && !buf.idents.contains("not")
                        && !buf.strings.is_empty();
                    if is_feature_gate {
                        cfg_stack.push(CfgFrame {
                            features: buf.strings,
                            state: CfgState::Pending {
                                arm_depth: depth,
                                arm_paren: paren,
                            },
                        });
                    }
                }
                push_tok!(Tok::Punct(']'));
                i += 1;
                prev_ident = None;
            }
            ';' | ',' => {
                // An attribute can arm on a `use`-like item or a struct
                // field; a terminator at the armed depth means the gated
                // item had no body.
                if c == ';' && test == TestState::Armed {
                    test = TestState::Outside;
                }
                push_tok!(Tok::Punct(c));
                cfg_stack.retain(|f| {
                    !matches!(
                        f.state,
                        CfgState::Pending { arm_depth, arm_paren }
                            if arm_depth == depth && arm_paren == paren
                    )
                });
                i += 1;
                prev_ident = None;
            }
            _ => {
                push_tok!(Tok::Punct(c));
                i += 1;
                if c != '(' && c != ')' {
                    prev_ident = None;
                }
            }
        }
    }
    out
}

/// Lexes a regular string literal starting at `"`; returns the contents,
/// bytes consumed, and newlines crossed.
fn lex_string(s: &str) -> (String, usize, u32) {
    let bytes = s.as_bytes();
    let mut i = 1usize;
    let mut newlines = 0u32;
    let mut content = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                if let Some(&next) = bytes.get(i + 1) {
                    content.push('\\');
                    content.push(next as char);
                    if next == b'\n' {
                        newlines += 1;
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            b'"' => {
                i += 1;
                break;
            }
            b'\n' => {
                newlines += 1;
                content.push('\n');
                i += 1;
            }
            _ => {
                let c = s[i..].chars().next().unwrap_or('\u{FFFD}');
                content.push(c);
                i += c.len_utf8();
            }
        }
    }
    (content, i, newlines)
}

/// True when the slice starts a raw string literal (`r"`, `r#"`, ...).
fn is_raw_string_start(s: &str) -> bool {
    let rest = &s[1..];
    let hashes = rest.bytes().take_while(|b| *b == b'#').count();
    rest.as_bytes().get(hashes) == Some(&b'"')
}

/// Lexes a raw string literal starting at `r`; returns contents, bytes
/// consumed, and newlines crossed.
fn lex_raw_string(s: &str) -> (String, usize, u32) {
    let rest = &s[1..];
    let hashes = rest.bytes().take_while(|b| *b == b'#').count();
    let open = 1 + hashes + 1; // r, hashes, quote
    let closer = format!("\"{}", "#".repeat(hashes));
    let body = &s[open..];
    let (content, end) = match body.find(&closer) {
        Some(pos) => (&body[..pos], open + pos + closer.len()),
        None => (body, s.len()),
    };
    let newlines = content.bytes().filter(|b| *b == b'\n').count() as u32;
    (content.to_string(), end, newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(f: &LexedFile) -> Vec<&str> {
        f.tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_produce_idents() {
        let f = lex("// HashMap in a comment\nlet x = \"HashMap\"; /* SystemTime */");
        assert_eq!(idents(&f), vec!["let", "x"]);
        // But the string's content is retained as a Str token.
        assert!(f.tokens.iter().any(|t| t.tok == Tok::Str("HashMap".into())));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let f = lex("/* outer /* inner */ still comment */ fn alive() {}");
        assert_eq!(idents(&f), vec!["fn", "alive"]);
    }

    #[test]
    fn raw_strings_are_single_tokens() {
        let f = lex(r####"let s = r#"quote " inside"#; let t = 1;"####);
        assert_eq!(idents(&f), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(idents(&f).contains(&"str"));
    }

    #[test]
    fn char_literals_are_skipped() {
        let f = lex("let c = 'x'; let esc = '\\n'; let q = '\"'; fn g() {}");
        assert!(idents(&f).contains(&"g"));
        assert!(!f.tokens.iter().any(|t| matches!(&t.tok, Tok::Str(_))));
    }

    #[test]
    fn cfg_test_bodies_are_marked() {
        let src = "fn lib_code() { work(); }\n#[cfg(test)]\nmod tests {\n    fn t() { probe(); }\n}\nfn after() { tail(); }";
        let f = lex(src);
        let probe = f
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("probe".into()))
            .expect("probe token");
        assert!(probe.in_test);
        let work = f
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("work".into()))
            .expect("work token");
        assert!(!work.in_test);
        let tail = f
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("tail".into()))
            .expect("tail token");
        assert!(!tail.in_test, "test region must end at the closing brace");
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = "#[test]\nfn unit() { inside(); }\nfn lib() { outside(); }";
        let f = lex(src);
        let inside = f
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("inside".into()))
            .expect("inside token");
        assert!(inside.in_test);
        let outside = f
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("outside".into()))
            .expect("outside token");
        assert!(!outside.in_test);
    }

    #[test]
    fn enclosing_fn_names_are_tracked() {
        let src = "fn kahan_sum(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }\nfn other() { nope(); }";
        let f = lex(src);
        let fold = f
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("fold".into()))
            .expect("fold token");
        assert_eq!(fold.in_fn.as_deref(), Some("kahan_sum"));
        let nope = f
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("nope".into()))
            .expect("nope token");
        assert_eq!(nope.in_fn.as_deref(), Some("other"));
    }

    #[test]
    fn allow_annotations_apply_to_own_and_next_line() {
        let src = "// audit:allow(unwrap)\nlet x = v.unwrap();\nlet y = v.unwrap(); // audit:allow(unwrap, clock)\n";
        let f = lex(src);
        assert!(f.allowed(2, "unwrap"));
        assert!(f.allowed(3, "unwrap"));
        assert!(f.allowed(3, "clock"));
        assert!(!f.allowed(2, "clock"));
        assert!(!f.allowed(5, "unwrap"));
    }

    #[test]
    fn line_numbers_survive_multiline_strings_and_comments() {
        let src = "let a = \"line\nbreak\";\n/* multi\nline */\nlet probe = 1;";
        let f = lex(src);
        let probe = f
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("probe".into()))
            .expect("probe token");
        assert_eq!(probe.line, 5);
    }
}
