//! A brace-aware item parser over the token stream from [`crate::lexer`].
//!
//! Still no `syn` (the workspace builds offline): this module recovers
//! just enough structure for the S-series rules — struct definitions
//! with named fields and their `#[cfg(feature = "...")]` gates, enum
//! definitions with their variants, `impl` blocks with their target
//! type and method bodies, and `match` expressions with their arms.
//! Everything is positional: an item records the token-index ranges the
//! rules scan, so rules stay cheap token walks over a pre-carved
//! stream rather than a real AST interpretation.
//!
//! The parser is deliberately forgiving: anything it cannot shape (macro
//! bodies, exotic generics) is skipped rather than mis-parsed, because a
//! rule that fires on a phantom item is worse than one that misses an
//! obscure corner — the fixture tests pin the corners that matter.

use std::ops::Range;

use crate::lexer::{LexedFile, Tok, Token};

/// One named field of a struct definition.
#[derive(Clone, Debug)]
pub struct FieldDef {
    pub name: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// Feature gates on the field itself (struct-level gates excluded).
    pub cfg: Vec<String>,
}

/// A struct definition. Tuple and unit structs carry no fields.
#[derive(Clone, Debug)]
pub struct StructDef {
    pub name: String,
    pub line: u32,
    /// Named fields, in declaration order; empty for tuple/unit structs.
    pub fields: Vec<FieldDef>,
    /// True when the struct has a named-field body (`struct S { .. }`).
    pub named: bool,
    pub in_test: bool,
}

/// An enum definition with its variant names.
#[derive(Clone, Debug)]
pub struct EnumDef {
    pub name: String,
    pub line: u32,
    pub variants: Vec<(String, u32)>,
    pub in_test: bool,
}

/// One `fn` inside an `impl` block (or at module level).
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    pub line: u32,
    /// Token-index range of the body, braces included; empty for
    /// body-less trait signatures.
    pub body: Range<usize>,
}

/// An `impl` block: `impl Target { .. }` or `impl Trait for Target { .. }`.
#[derive(Clone, Debug)]
pub struct ImplDef {
    /// Last path segment of the trait, e.g. `Snap` for
    /// `impl core::snap::Snap for T`; `None` for inherent impls.
    pub trait_name: Option<String>,
    /// First identifier of the target type (`Engine`, `Option`, ...).
    pub target: String,
    pub line: u32,
    pub fns: Vec<FnItem>,
    pub in_test: bool,
}

/// One arm of a `match` expression.
#[derive(Clone, Debug)]
pub struct MatchArm {
    pub line: u32,
    /// Token-index range of the pattern (up to, excluding, `=>`).
    pub pat: Range<usize>,
    /// True for a bare `_` (optionally guarded `_ if ..`) catch-all.
    pub wildcard: bool,
}

/// A `match` expression and its arms.
#[derive(Clone, Debug)]
pub struct MatchDef {
    pub line: u32,
    pub arms: Vec<MatchArm>,
    pub in_test: bool,
}

/// Everything [`parse`] recovers from one file.
#[derive(Clone, Debug, Default)]
pub struct Items {
    pub structs: Vec<StructDef>,
    pub enums: Vec<EnumDef>,
    pub impls: Vec<ImplDef>,
    pub matches: Vec<MatchDef>,
}

/// True when `toks[i]` is the identifier `kw`.
fn ident_at(toks: &[Token], i: usize, kw: &str) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Ident(s)) if s == kw)
}

fn punct(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Index of the `}` matching the `{` at `open`, or the stream end.
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Tracks `()`/`[]`/`{}` nesting while scanning a token range. Angle
/// brackets are deliberately *not* tracked — `<` is ambiguous with
/// comparison operators, and every split this parser performs (field
/// commas, arm arrows) tolerates generic-argument commas because the
/// follow-up extraction requires an `ident:`/pattern shape that generic
/// tails never form.
#[derive(Default)]
struct Balance {
    paren: i32,
    bracket: i32,
    brace: i32,
}

impl Balance {
    fn feed(&mut self, toks: &[Token], i: usize) {
        match toks[i].tok {
            Tok::Punct('(') => self.paren += 1,
            Tok::Punct(')') => self.paren -= 1,
            Tok::Punct('[') => self.bracket += 1,
            Tok::Punct(']') => self.bracket -= 1,
            Tok::Punct('{') => self.brace += 1,
            Tok::Punct('}') => self.brace -= 1,
            _ => {}
        }
    }

    fn grounded(&self) -> bool {
        self.paren == 0 && self.bracket == 0 && self.brace == 0
    }
}

/// Parses the item structure of one lexed file.
pub fn parse(lexed: &LexedFile) -> Items {
    let toks = &lexed.tokens;
    let mut out = Items::default();
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Ident(kw) if kw == "struct" => i = parse_struct(toks, i, &mut out),
            Tok::Ident(kw) if kw == "enum" => i = parse_enum(toks, i, &mut out),
            Tok::Ident(kw) if kw == "impl" => i = parse_impl(toks, i, &mut out),
            Tok::Ident(kw) if kw == "match" => i = parse_match(toks, i, &mut out),
            _ => i += 1,
        }
    }
    out
}

/// Skips attribute tokens (`#[...]`) starting at `i`.
fn skip_attrs(toks: &[Token], mut i: usize, end: usize) -> usize {
    while i < end && punct(toks, i, '#') && punct(toks, i + 1, '[') {
        let mut depth = 0i32;
        i += 1;
        while i < end {
            match toks[i].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    i
}

/// `struct Name<..> { fields }` / `struct Name(..);` / `struct Name;`
fn parse_struct(toks: &[Token], kw: usize, out: &mut Items) -> usize {
    let Some(Tok::Ident(name)) = toks.get(kw + 1).map(|t| &t.tok) else {
        return kw + 1;
    };
    let base_cfg = &toks[kw].cfg_features;
    let mut def = StructDef {
        name: name.clone(),
        line: toks[kw].line,
        fields: Vec::new(),
        named: false,
        in_test: toks[kw].in_test,
    };
    // Scan past generics / where clauses for the body opener.
    let mut bal = Balance::default();
    let mut j = kw + 2;
    while j < toks.len() {
        if bal.grounded() {
            match toks[j].tok {
                Tok::Punct(';') => {
                    out.structs.push(def);
                    return j + 1;
                }
                Tok::Punct('(') => {
                    // Tuple struct: no named fields to cross-check.
                    out.structs.push(def);
                    return j;
                }
                Tok::Punct('{') => break,
                _ => {}
            }
        }
        bal.feed(toks, j);
        j += 1;
    }
    if j >= toks.len() {
        return kw + 2;
    }
    let close = matching_brace(toks, j);
    def.named = true;
    // Split the body into `,`-separated field segments.
    let mut seg_start = j + 1;
    let mut bal = Balance::default();
    let mut k = j + 1;
    while k <= close {
        if (k == close || (punct(toks, k, ',') && bal.grounded())) && k > seg_start {
            if let Some(field) = parse_field(toks, seg_start..k, base_cfg) {
                def.fields.push(field);
            }
            seg_start = k + 1;
        }
        if k < close {
            bal.feed(toks, k);
        }
        k += 1;
    }
    out.structs.push(def);
    close + 1
}

/// Extracts `name` from one field segment: the first identifier followed
/// by a single `:` (skipping attributes and visibility modifiers).
fn parse_field(toks: &[Token], seg: Range<usize>, base_cfg: &[String]) -> Option<FieldDef> {
    let mut i = skip_attrs(toks, seg.start, seg.end);
    let mut bal = Balance::default();
    while i < seg.end {
        if let Tok::Ident(name) = &toks[i].tok {
            if bal.grounded() && punct(toks, i + 1, ':') && !punct(toks, i + 2, ':') {
                let cfg = toks[i]
                    .cfg_features
                    .iter()
                    .filter(|f| !base_cfg.contains(f))
                    .cloned()
                    .collect();
                return Some(FieldDef {
                    name: name.clone(),
                    line: toks[i].line,
                    cfg,
                });
            }
        }
        bal.feed(toks, i);
        i += 1;
    }
    None
}

/// `enum Name { Variant, Variant(..), Variant { .. } }`
fn parse_enum(toks: &[Token], kw: usize, out: &mut Items) -> usize {
    let Some(Tok::Ident(name)) = toks.get(kw + 1).map(|t| &t.tok) else {
        return kw + 1;
    };
    let mut def = EnumDef {
        name: name.clone(),
        line: toks[kw].line,
        variants: Vec::new(),
        in_test: toks[kw].in_test,
    };
    let mut bal = Balance::default();
    let mut j = kw + 2;
    while j < toks.len() && !(bal.grounded() && punct(toks, j, '{')) {
        if bal.grounded() && punct(toks, j, ';') {
            return j + 1; // `enum` used oddly; bail out
        }
        bal.feed(toks, j);
        j += 1;
    }
    if j >= toks.len() {
        return kw + 2;
    }
    let close = matching_brace(toks, j);
    let mut k = j + 1;
    let mut at_variant = true;
    let mut bal = Balance::default();
    while k < close {
        if at_variant {
            k = skip_attrs(toks, k, close);
            if let Some(Tok::Ident(v)) = toks.get(k).map(|t| &t.tok) {
                def.variants.push((v.clone(), toks[k].line));
            }
            at_variant = false;
        }
        if k < close {
            if punct(toks, k, ',') && bal.grounded() {
                at_variant = true;
            }
            bal.feed(toks, k);
        }
        k += 1;
    }
    out.enums.push(def);
    close + 1
}

/// `impl<..> [Trait for] Target { fn .. }`
fn parse_impl(toks: &[Token], kw: usize, out: &mut Items) -> usize {
    // `impl` in type position (`-> impl Trait`, `x: impl Fn()`) always
    // follows a punct; a real impl item follows `}`/`;`/`]`/an ident or
    // starts the file.
    if kw > 0 {
        if let Tok::Punct(p) = toks[kw - 1].tok {
            if !matches!(p, '}' | ';' | ']' | '{') {
                return kw + 1;
            }
        }
    }
    // Head: everything up to the body brace.
    let mut bal = Balance::default();
    let mut j = kw + 1;
    let mut for_at: Option<usize> = None;
    while j < toks.len() && !(bal.grounded() && punct(toks, j, '{')) {
        if bal.grounded() && punct(toks, j, ';') {
            return j + 1;
        }
        // `for<'a>` higher-ranked bounds are not the trait/target split.
        if bal.grounded() && ident_at(toks, j, "for") && !punct(toks, j + 1, '<') {
            for_at = Some(j);
        }
        bal.feed(toks, j);
        j += 1;
    }
    if j >= toks.len() {
        return kw + 1;
    }
    let trait_name = for_at.and_then(|f| {
        toks[kw + 1..f].iter().rev().find_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.clone()),
            _ => None,
        })
    });
    let target_from = for_at.map_or(kw + 1, |f| f + 1);
    let target = toks[target_from..j].iter().find_map(|t| match &t.tok {
        Tok::Ident(s) if s != "mut" && s != "dyn" && s != "const" => Some(s.clone()),
        _ => None,
    });
    let Some(target) = target else {
        return j;
    };
    let close = matching_brace(toks, j);
    let mut def = ImplDef {
        trait_name,
        target,
        line: toks[kw].line,
        fns: Vec::new(),
        in_test: toks[kw].in_test,
    };
    // Methods at the impl body's top level.
    let mut k = j + 1;
    let mut bal = Balance::default();
    while k < close {
        if bal.grounded() && ident_at(toks, k, "fn") {
            if let Some(Tok::Ident(fname)) = toks.get(k + 1).map(|t| &t.tok) {
                // Find the body `{` (or a `;` for body-less signatures).
                let mut sig = Balance::default();
                let mut b = k + 2;
                while b < close && !(sig.grounded() && (punct(toks, b, '{') || punct(toks, b, ';')))
                {
                    sig.feed(toks, b);
                    b += 1;
                }
                if b < close && punct(toks, b, '{') {
                    let fn_close = matching_brace(toks, b);
                    def.fns.push(FnItem {
                        name: fname.clone(),
                        line: toks[k].line,
                        body: b..fn_close + 1,
                    });
                    k = fn_close + 1;
                    continue;
                }
                def.fns.push(FnItem {
                    name: fname.clone(),
                    line: toks[k].line,
                    body: 0..0,
                });
                k = b + 1;
                continue;
            }
        }
        bal.feed(toks, k);
        k += 1;
    }
    out.impls.push(def);
    // Return the body start, not `close + 1`: the top-level scanner must
    // descend into method bodies to find the matches inside them.
    j + 1
}

/// `match scrutinee { pat => body, .. }`
fn parse_match(toks: &[Token], kw: usize, out: &mut Items) -> usize {
    // The arms open at the first grounded `{` after the scrutinee.
    let mut bal = Balance::default();
    let mut j = kw + 1;
    while j < toks.len() && !(bal.grounded() && punct(toks, j, '{')) {
        if bal.grounded() && punct(toks, j, ';') {
            return j + 1;
        }
        bal.feed(toks, j);
        j += 1;
    }
    if j >= toks.len() {
        return kw + 1;
    }
    let close = matching_brace(toks, j);
    let mut def = MatchDef {
        line: toks[kw].line,
        arms: Vec::new(),
        in_test: toks[kw].in_test,
    };
    let mut k = j + 1;
    while k < close {
        k = skip_attrs(toks, k, close);
        let pat_start = k;
        // Pattern runs to `=>` at ground level.
        let mut bal = Balance::default();
        while k < close && !(bal.grounded() && punct(toks, k, '=') && punct(toks, k + 1, '>')) {
            bal.feed(toks, k);
            k += 1;
        }
        if k >= close {
            break;
        }
        let pat = pat_start..k;
        let wildcard = ident_at(toks, pat_start, "_")
            && (pat.len() == 1 || ident_at(toks, pat_start + 1, "if"));
        def.arms.push(MatchArm {
            line: toks[pat_start].line,
            pat,
            wildcard,
        });
        k += 2; // past `=>`
                // Body: a block, or an expression up to a grounded `,`.
        if punct(toks, k, '{') {
            k = matching_brace(toks, k) + 1;
            if punct(toks, k, ',') {
                k += 1;
            }
        } else {
            let mut bal = Balance::default();
            while k < close && !(bal.grounded() && punct(toks, k, ',')) {
                bal.feed(toks, k);
                k += 1;
            }
            k += 1; // past `,` (or the arms' close)
        }
    }
    out.matches.push(def);
    // Descend into the arms so nested matches are recorded too.
    j + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn named_struct_fields_are_recovered_in_order() {
        let items = parse(&lex(
            "pub struct Engine {\n    now: SimTime,\n    pub seq: u64,\n    events: BinaryHeap<Reverse<(SimTime, u64, usize)>>,\n}",
        ));
        let s = &items.structs[0];
        assert_eq!(s.name, "Engine");
        assert!(s.named);
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["now", "seq", "events"]);
        assert_eq!(s.fields[1].line, 3);
    }

    #[test]
    fn tuple_and_unit_structs_have_no_named_fields() {
        let items = parse(&lex("pub struct Token(pub u64);\nstruct Marker;"));
        assert_eq!(items.structs.len(), 2);
        assert!(items
            .structs
            .iter()
            .all(|s| !s.named && s.fields.is_empty()));
    }

    #[test]
    fn feature_gated_fields_carry_their_gate() {
        let items = parse(&lex(
            "pub struct Engine {\n    seq: u64,\n    #[cfg(feature = \"audit\")]\n    auditor: KernelAuditor,\n    #[cfg(feature = \"trace\")]\n    tracer: Tracer,\n}",
        ));
        let s = &items.structs[0];
        assert_eq!(s.fields.len(), 3);
        assert!(s.fields[0].cfg.is_empty());
        assert_eq!(s.fields[1].cfg, ["audit"]);
        assert_eq!(s.fields[2].cfg, ["trace"]);
    }

    #[test]
    fn generic_field_types_do_not_split_fields() {
        let items = parse(&lex(
            "struct S { jobs: BTreeMap<u64, Vec<(u64, u64)>>, next: u64 }",
        ));
        let names: Vec<&str> = items.structs[0]
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, ["jobs", "next"]);
    }

    #[test]
    fn enum_variants_are_recovered() {
        let items = parse(&lex(
            "pub enum Outcome { Ok, Failed { code: u32 }, TimedOut(u64), Cancelled }",
        ));
        let e = &items.enums[0];
        assert_eq!(e.name, "Outcome");
        let names: Vec<&str> = e.variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(names, ["Ok", "Failed", "TimedOut", "Cancelled"]);
    }

    #[test]
    fn trait_impl_target_and_methods_are_recovered() {
        let items = parse(&lex(
            "impl core::snap::Snap for Completion {\n    fn snap(&self, w: &mut SnapWriter) { w.put(&self.token); }\n    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> { Ok(Completion { token: r.get()? }) }\n}",
        ));
        let im = &items.impls[0];
        assert_eq!(im.trait_name.as_deref(), Some("Snap"));
        assert_eq!(im.target, "Completion");
        let names: Vec<&str> = im.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["snap", "restore"]);
        assert!(!im.fns[0].body.is_empty());
    }

    #[test]
    fn generic_trait_impls_parse() {
        let items = parse(&lex(
            "impl<T: Snap> Snap for Vec<T> { fn snap(&self, w: &mut SnapWriter) {} }",
        ));
        let im = &items.impls[0];
        assert_eq!(im.trait_name.as_deref(), Some("Snap"));
        assert_eq!(im.target, "Vec");
    }

    #[test]
    fn inherent_impls_have_no_trait() {
        let items = parse(&lex(
            "impl Engine { pub fn snap_state(&self, w: &mut SnapWriter) { w.put(&self.now); } }",
        ));
        let im = &items.impls[0];
        assert_eq!(im.trait_name, None);
        assert_eq!(im.target, "Engine");
        assert_eq!(im.fns[0].name, "snap_state");
    }

    #[test]
    fn match_arms_and_wildcards_are_recovered() {
        let items = parse(&lex(
            "fn f(o: Outcome) -> u32 { match o { Outcome::Ok => 0, Outcome::Failed => { 1 } _ => 2, } }",
        ));
        let m = &items.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert!(!m.arms[0].wildcard);
        assert!(!m.arms[1].wildcard);
        assert!(m.arms[2].wildcard);
    }

    #[test]
    fn nested_matches_are_both_found() {
        let items = parse(&lex(
            "fn f() { match a { X::A => match b { Y::B => 1, _ => 2, }, X::B => 3, } }",
        ));
        assert_eq!(items.matches.len(), 2);
        // The outer match is pushed first (it finishes parsing before the
        // scanner descends); the inner one carries the wildcard arm.
        assert!(!items.matches[0].arms.iter().any(|a| a.wildcard));
        assert!(items.matches[1].arms[1].wildcard);
    }

    #[test]
    fn binding_subpatterns_are_not_wildcards() {
        let items = parse(&lex(
            "fn f(o: Option<u32>) -> u32 { match o { Some(_) => 1, None => 0 } }",
        ));
        assert!(items.matches[0].arms.iter().all(|a| !a.wildcard));
    }

    #[test]
    fn guarded_wildcard_is_still_a_wildcard() {
        let items = parse(&lex(
            "fn f(x: u32) -> u32 { match k { K::A => 1, _ if x > 2 => 2, _ => 3 } }",
        ));
        let m = &items.matches[0];
        assert!(m.arms[1].wildcard && m.arms[2].wildcard);
    }
}
