//! apm-audit — dependency-free determinism & invariant auditor.
//!
//! Static half of the audit story (the dynamic half is the
//! `KernelAuditor` behind apm-sim's `audit` feature): a structural
//! lint pass over the workspace sources enforcing the determinism
//! rules catalogued in DESIGN.md §8. The pipeline is
//! `lexer` (tokens + cfg/test regions) → `items` (structs, impls,
//! matches) → `rules` (D1–D5 token rules, S1–S3 structural rules) →
//! `diag` (human/JSON/GitHub rendering + baseline suppression). Run it
//! with `cargo run -p apm-audit -- --deny-all`.
//!
//! The crate is a library + thin binary so the fixture tests in
//! `tests/fixtures.rs` can drive the rules over inline snippets.

pub mod diag;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use rules::{audit_files, severity, Severity, SourceFile, Violation};
