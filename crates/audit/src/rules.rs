//! The project-specific lint rules: token-level D1–D5 and structural
//! S1–S3.
//!
//! The D rules walk the raw token stream from [`crate::lexer`]; the S
//! rules walk the item structure recovered by [`crate::items`] (structs
//! with fields and feature gates, impl blocks with method bodies, match
//! arms) — still no `syn`. Rules are deliberately scoped by crate
//! (derived from the file path); `bench` joined the D1/D2 net with this
//! revision — it times real hardware, so its wall-clock reads carry
//! explicit `audit:allow(clock)` justifications instead of a blanket
//! exemption. The kernel hot-path modules introduced by the
//! calendar-queue/arena overhaul (`sim::queue`, the future-event list,
//! and `sim::arena`, the flat plan store) sit inside the D1/D2 net via
//! the `sim` crate scope; the fixture suite trips each rule in each of
//! them so a future per-module scope list cannot silently drop the
//! modules that *define* event order.
//!
//! | rule               | issue | scope                                  | default |
//! |--------------------|-------|----------------------------------------|---------|
//! | `clock`            | D1    | sim, stores, storage, bench + obs/snap/chaos | deny |
//! | `hash-order`       | D2    | sim, stores, bench + obs/snap/chaos    | deny    |
//! | `unwrap`           | D3    | all non-test library code              | warn    |
//! | `float-sum`        | D4    | core::stats, core::timeseries         | warn    |
//! | `shape-coverage`   | D5    | harness extensions vs shape            | deny    |
//! | `snap-drift`       | S1    | every file with a Snap codec pair      | deny    |
//! | `feature-symmetry` | S2    | every file with feature-gated fields   | deny    |
//! | `wildcard-match`   | S3    | all non-test, non-bin library code     | deny    |
//!
//! **S1 `snap-drift`** — for a `impl Snap for T` (`snap`/`restore`) or a
//! `snap_state`/`restore_state` pair whose target struct is defined in
//! the same file, every named field of the struct must be referenced in
//! both the encode and the decode body, and the decode must first-mention
//! fields in declaration order. A field added to `Engine` but not to its
//! codec is a CI failure here, not a divergence hunt three days into a
//! resumed run.
//!
//! **S2 `feature-symmetry`** — a field gated `#[cfg(feature = "...")]`
//! may only be accessed (`.field`) from code carrying the same gate, and
//! a feature-gated region inside a snapshot codec body must sit in a
//! function that consults the feature-bits header (`snap_features` /
//! `FEATURE_*`), protecting the default-off byte-identity invariant.
//!
//! **S3 `wildcard-match`** — no `_` arm in a `match` whose patterns name
//! one of the tree's semantic enums ([`PROTECTED_ENUMS`]): a new
//! `OpOutcome`/fault/breaker/plan-step variant must fail compilation at
//! every dispatch site rather than be silently swallowed.
//!
//! The *obs modules* — `core/src/stats.rs` (windowed telemetry),
//! `harness/src/obs.rs` (profiler + trace exporter), and
//! `harness/src/resilience.rs` (policy-on replay experiments) — feed
//! deterministic artifacts (trace fingerprints, telemetry and policy
//! tables), so they inherit the determinism rules even though their
//! crates otherwise don't. The *snap modules* — `core/src/snap.rs`
//! (the sealed snapshot container and Snap codec) and
//! `harness/src/snap.rs` (checkpoint/resume/bisect experiments) —
//! join them: a snapshot byte stream that varies run-to-run breaks
//! resume byte-identity outright. The *chaos modules* —
//! `core/src/chaos.rs` (the campaign report model) and
//! `harness/src/chaos.rs` (generator, oracles, shrinker) — join for
//! the same reason: a campaign report must be a pure function of its
//! seed, and a shrinker probe that replays differently cannot
//! minimize anything.
//!
//! `--deny-all` promotes warnings to errors. Any rule is silenced on a
//! line with `// audit:allow(<rule>)` on that line or the line above.

use crate::items::{self, Items};
use crate::lexer::{LexedFile, Tok};

/// One source file ready for auditing.
pub struct SourceFile {
    /// Path relative to the workspace root, e.g. `crates/sim/src/kernel.rs`.
    pub path: String,
    pub lexed: LexedFile,
}

/// Rule severity before `--deny-all`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    Deny,
    Warn,
}

/// A single finding.
#[derive(Clone, Debug)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

/// Default severity per rule (promoted to Deny by `--deny-all`).
pub fn severity(rule: &str) -> Severity {
    match rule {
        "unwrap" | "float-sum" => Severity::Warn,
        _ => Severity::Deny,
    }
}

/// The audited crate, derived from a workspace-relative path.
fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        parts.next().unwrap_or("")
    } else {
        // Root package sources (`src/`, `tests/`).
        "root"
    }
}

/// Observability modules outside the deterministic crates whose output
/// (trace fingerprints, telemetry windows, resilience tables) must
/// still replay identically.
fn is_obs_path(path: &str) -> bool {
    path.ends_with("core/src/stats.rs")
        || path.ends_with("harness/src/obs.rs")
        || path.ends_with("harness/src/resilience.rs")
        || is_snap_path(path)
        || is_chaos_path(path)
}

/// Snapshot modules: the codec and the checkpoint/resume harness. Both
/// emit byte streams that must be identical across runs, so they carry
/// the same determinism obligations as the simulation crates.
fn is_snap_path(path: &str) -> bool {
    path.ends_with("core/src/snap.rs") || path.ends_with("harness/src/snap.rs")
}

/// Chaos modules: the campaign report model and the search harness.
/// A campaign report must be a pure function of its seed — generator,
/// oracles and shrinker all inherit the determinism rules.
fn is_chaos_path(path: &str) -> bool {
    path.ends_with("core/src/chaos.rs") || path.ends_with("harness/src/chaos.rs")
}

fn is_bin(path: &str) -> bool {
    path.contains("/bin/")
        || path.contains("/benches/")
        || path.ends_with("/main.rs")
        || path == "main.rs"
}

/// Runs every rule over the file set and returns all findings,
/// allow-list already applied, sorted by (file, line).
pub fn audit_files(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        rule_clock(f, &mut out);
        rule_hash_order(f, &mut out);
        rule_unwrap(f, &mut out);
        rule_float_sum(f, &mut out);
        let parsed = items::parse(&f.lexed);
        rule_snap_drift(f, &parsed, &mut out);
        rule_feature_symmetry(f, &parsed, &mut out);
        rule_wildcard_match(f, &parsed, &mut out);
    }
    rule_shape_coverage(files, &mut out);
    out.retain(|v| {
        let file = files.iter().find(|f| f.path == v.file);
        !file.is_some_and(|f| f.lexed.allowed(v.line, v.rule))
    });
    out.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    out
}

/// D1 `clock`: no wall-clock or ambient randomness in the deterministic
/// layers. Flags `Instant::now`, `SystemTime`, `thread_rng`, and argless
/// `rand()`/`random()` calls in sim/stores/storage/bench — tests
/// included, since event-ordering tests must replay identically too.
/// `bench` measures real hardware, so its intentional wall-clock reads
/// carry per-line `audit:allow(clock)` justifications rather than a
/// blanket crate exemption.
fn rule_clock(f: &SourceFile, out: &mut Vec<Violation>) {
    if !matches!(crate_of(&f.path), "sim" | "stores" | "storage" | "bench") && !is_obs_path(&f.path)
    {
        return;
    }
    let toks = &f.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        let flagged = match name.as_str() {
            "SystemTime" | "thread_rng" => Some(format!("`{name}` is wall-clock/ambient state")),
            "Instant" => follows(toks, i, &[":", ":", "now"])
                .then(|| "`Instant::now()` breaks virtual-time determinism".to_string()),
            "rand" | "random" => {
                // Argless call: `rand()` / `random()` with nothing between
                // the parens draws from ambient RNG state.
                (punct_at(toks, i + 1, '(') && punct_at(toks, i + 2, ')'))
                    .then(|| format!("argless `{name}()` uses ambient randomness"))
            }
            _ => None,
        };
        if let Some(msg) = flagged {
            out.push(Violation {
                file: f.path.clone(),
                line: t.line,
                rule: "clock",
                message: format!("{msg}; use sim virtual time / seeded rng"),
            });
        }
    }
}

/// D2 `hash-order`: no `HashMap`/`HashSet` in the sim, stores, and bench
/// crates. Iteration order over hashed collections varies run-to-run,
/// which silently breaks event-ordering determinism — use
/// `BTreeMap`/`BTreeSet` (or sort before iterating and annotate the
/// line). `bench` is covered because its emitted artifacts
/// (`BENCH_*.json`) must serialize identically across runs.
fn rule_hash_order(f: &SourceFile, out: &mut Vec<Violation>) {
    if !matches!(crate_of(&f.path), "sim" | "stores" | "bench") && !is_obs_path(&f.path) {
        return;
    }
    for t in &f.lexed.tokens {
        let Tok::Ident(name) = &t.tok else { continue };
        if name == "HashMap" || name == "HashSet" {
            out.push(Violation {
                file: f.path.clone(),
                line: t.line,
                rule: "hash-order",
                message: format!(
                    "`{name}` has nondeterministic iteration order; use BTree{} \
                     or sort before iterating",
                    &name[4..]
                ),
            });
        }
    }
}

/// D3 `unwrap`: no bare `.unwrap()` or empty `.expect("")` in non-test
/// library code. Panics without context are useless in a long
/// simulation run; say *why* the value is present or propagate the error.
fn rule_unwrap(f: &SourceFile, out: &mut Vec<Violation>) {
    if is_bin(&f.path) {
        return;
    }
    let toks = &f.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        if i == 0 || !punct_at(toks, i - 1, '.') {
            continue;
        }
        let msg = match name.as_str() {
            "unwrap" if punct_at(toks, i + 1, '(') && punct_at(toks, i + 2, ')') => {
                Some("bare `.unwrap()` in library code")
            }
            "expect"
                if punct_at(toks, i + 1, '(')
                    && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Str(s)) if s.is_empty()) =>
            {
                Some("`.expect(\"\")` carries no context")
            }
            _ => None,
        };
        if let Some(msg) = msg {
            out.push(Violation {
                file: f.path.clone(),
                line: t.line,
                rule: "unwrap",
                message: format!("{msg}; add a contextful expect message or propagate the error"),
            });
        }
    }
}

/// D4 `float-sum`: `core::stats` / `core::timeseries` must not narrow to
/// `f32` or run order-sensitive float reductions. `fold` over floats is
/// only blessed inside the compensated-summation helpers (functions
/// whose name mentions `kahan` or `pairwise`).
fn rule_float_sum(f: &SourceFile, out: &mut Vec<Violation>) {
    if f.path != "crates/core/src/stats.rs" && f.path != "crates/core/src/timeseries.rs" {
        return;
    }
    for t in &f.lexed.tokens {
        let Tok::Ident(name) = &t.tok else { continue };
        let blessed = t
            .in_fn
            .as_deref()
            .is_some_and(|f| f.contains("kahan") || f.contains("pairwise"));
        let msg = match name.as_str() {
            "f32" => Some("`f32` narrowing loses precision in aggregate stats"),
            "fold" if !blessed => {
                Some("order-sensitive `fold` reduction outside a blessed kahan/pairwise helper")
            }
            _ => None,
        };
        if let Some(msg) = msg {
            out.push(Violation {
                file: f.path.clone(),
                line: t.line,
                rule: "float-sum",
                message: format!("{msg}; use integer sums or `kahan_sum`"),
            });
        }
    }
}

/// D5 `shape-coverage`: every experiment id registered in
/// `harness/src/extensions.rs::all_extensions` must appear in at least
/// one shape check in `harness/src/shape.rs`. A figure nobody sanity-
/// checks is a figure that can silently drift.
fn rule_shape_coverage(files: &[SourceFile], out: &mut Vec<Violation>) {
    let Some(ext) = files
        .iter()
        .find(|f| f.path.ends_with("harness/src/extensions.rs"))
    else {
        return;
    };
    let Some(shape) = files
        .iter()
        .find(|f| f.path.ends_with("harness/src/shape.rs"))
    else {
        return;
    };
    // Registered ids: non-test "ext-*" string literals inside
    // `all_extensions` (test modules register fakes like "ext-nope").
    let mut ids: Vec<(String, u32)> = Vec::new();
    for t in &ext.lexed.tokens {
        if t.in_test || t.in_fn.as_deref() != Some("all_extensions") {
            continue;
        }
        if let Tok::Str(s) = &t.tok {
            if s.starts_with("ext-") && !ids.iter().any(|(id, _)| id == s) {
                ids.push((s.clone(), t.line));
            }
        }
    }
    // Covered ids: any non-test string literal in shape.rs mentioning
    // the id (the `checks_for` match arms).
    for (id, line) in ids {
        let covered =
            shape.lexed.tokens.iter().any(|t| {
                !t.in_test && matches!(&t.tok, Tok::Str(s) if s == &id || s.contains(&id))
            });
        if !covered {
            out.push(Violation {
                file: ext.path.clone(),
                line,
                rule: "shape-coverage",
                message: format!("experiment `{id}` has no shape check in harness/src/shape.rs"),
            });
        }
    }
}

/// The encode/decode method-name pairs S1 recognizes as a snapshot
/// codec: the `Snap` trait's own pair, and the `snap_state` /
/// `restore_state` convention used by the kernel, the stores, the
/// storage engines, and the drivers.
const CODEC_PAIRS: [(&str, &str); 2] = [("snap", "restore"), ("snap_state", "restore_state")];

/// S1 `snap-drift`: every named field of a snapshotted struct must be
/// referenced in both halves of its codec, and the decode half must
/// first-mention fields in declaration order. Catches the "added a field
/// to `Engine`, forgot the codec" class of resume divergence at lint
/// time. The struct definition must live in the same file as the codec
/// (true throughout this tree); impls whose target is defined elsewhere
/// are skipped rather than guessed at.
fn rule_snap_drift(f: &SourceFile, parsed: &Items, out: &mut Vec<Violation>) {
    let toks = &f.lexed.tokens;
    for imp in parsed.impls.iter().filter(|i| !i.in_test) {
        let pair = CODEC_PAIRS.iter().find(|(enc, dec)| {
            let ok_trait = match &imp.trait_name {
                // `impl Snap for T` carries the pair as trait methods.
                Some(t) => t == "Snap" && *enc == "snap",
                // Inherent/store-trait impls use the *_state convention.
                None => *enc == "snap_state",
            };
            ok_trait
                && imp.fns.iter().any(|m| m.name == *enc && !m.body.is_empty())
                && imp.fns.iter().any(|m| m.name == *dec && !m.body.is_empty())
        });
        // `snap_state` pairs also appear inside trait impls (e.g. the
        // stores' `DistributedStore`); accept the pair wherever it lives.
        let pair = pair.or_else(|| {
            CODEC_PAIRS.iter().find(|(enc, dec)| {
                *enc == "snap_state"
                    && imp.fns.iter().any(|m| m.name == *enc && !m.body.is_empty())
                    && imp.fns.iter().any(|m| m.name == *dec && !m.body.is_empty())
            })
        });
        let Some((enc_name, dec_name)) = pair else {
            continue;
        };
        let Some(def) = parsed
            .structs
            .iter()
            .find(|s| s.named && !s.in_test && s.name == imp.target)
        else {
            continue;
        };
        let enc = imp
            .fns
            .iter()
            .find(|m| m.name == *enc_name)
            .expect("pair matched above");
        let dec = imp
            .fns
            .iter()
            .find(|m| m.name == *dec_name)
            .expect("pair matched above");
        let mentions = |body: &std::ops::Range<usize>, name: &str| {
            toks[body.clone()]
                .iter()
                .position(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
        };
        let mut dec_order: Vec<(usize, &str, u32)> = Vec::new();
        for field in &def.fields {
            // Fields absent from the encode stream (justified config that
            // restore re-derives) don't constrain decode order — restore
            // may consult them for validation at any point.
            let mut streamed = true;
            if mentions(&enc.body, &field.name).is_none() {
                streamed = false;
                out.push(Violation {
                    file: f.path.clone(),
                    line: field.line,
                    rule: "snap-drift",
                    message: format!(
                        "field `{}` of `{}` is never referenced in `{}` — \
                         state that isn't snapshotted silently diverges on resume",
                        field.name, def.name, enc_name
                    ),
                });
            }
            match mentions(&dec.body, &field.name) {
                None => out.push(Violation {
                    file: f.path.clone(),
                    line: field.line,
                    rule: "snap-drift",
                    message: format!(
                        "field `{}` of `{}` is never referenced in `{}` — \
                         the decoder cannot rebuild it",
                        field.name, def.name, dec_name
                    ),
                }),
                Some(pos) if streamed => {
                    let line = toks[dec.body.start + pos].line;
                    dec_order.push((pos, &field.name, line));
                }
                Some(_) => {}
            }
        }
        // Decode first-mention order must match declaration order — a
        // schema-free byte stream is only readable in write order.
        for w in dec_order.windows(2) {
            let ((a_pos, a_name, _), (b_pos, b_name, b_line)) = (&w[0], &w[1]);
            if b_pos < a_pos {
                out.push(Violation {
                    file: f.path.clone(),
                    line: *b_line,
                    rule: "snap-drift",
                    message: format!(
                        "`{}` decodes `{}` before `{}`, but `{}` declares them in the \
                         opposite order — decode order must match the struct declaration",
                        dec_name, b_name, a_name, def.name
                    ),
                });
            }
        }
    }
}

/// Guard identifiers S2 accepts as "this codec consults the feature-bits
/// header": `Engine::snap_features()` and the `FEATURE_*` /
/// `SNAP_FEATURE_*` constants of `core::snap`.
fn is_feature_guard(name: &str) -> bool {
    name == "snap_features" || name.starts_with("FEATURE_") || name.starts_with("SNAP_FEATURE_")
}

/// S2 `feature-symmetry`: (a) a struct field gated behind
/// `#[cfg(feature = "...")]` may only be accessed from code carrying the
/// same gate — asymmetric access either breaks the default-off build or
/// hides feature-on-only behavior in shared paths; (b) a feature-gated
/// region inside a snapshot codec body must live in a function that
/// consults the feature-bits header (`snap_features` / `FEATURE_*`), so
/// optional observer bytes can never be read into a build that didn't
/// write them.
fn rule_feature_symmetry(f: &SourceFile, parsed: &Items, out: &mut Vec<Violation>) {
    let toks = &f.lexed.tokens;
    // (a) gated-field access symmetry, same-file scope.
    for s in parsed.structs.iter().filter(|s| !s.in_test) {
        for field in s.fields.iter().filter(|fd| !fd.cfg.is_empty()) {
            for (i, t) in toks.iter().enumerate() {
                let Tok::Ident(name) = &t.tok else { continue };
                if name != &field.name || t.in_test || i == 0 || !punct_at(toks, i - 1, '.') {
                    continue;
                }
                let missing: Vec<&str> = field
                    .cfg
                    .iter()
                    .filter(|g| !t.cfg_features.contains(g))
                    .map(String::as_str)
                    .collect();
                if !missing.is_empty() {
                    out.push(Violation {
                        file: f.path.clone(),
                        line: t.line,
                        rule: "feature-symmetry",
                        message: format!(
                            "`.{}` is gated behind feature \"{}\" on `{}` but this access \
                             is not under the same `#[cfg(feature = ...)]` gate",
                            field.name,
                            missing.join("\", \""),
                            s.name
                        ),
                    });
                }
            }
        }
    }
    // (b) feature-gated snapshot bytes need the feature-bits header.
    for imp in parsed.impls.iter().filter(|i| !i.in_test) {
        for m in &imp.fns {
            if !CODEC_PAIRS
                .iter()
                .any(|(enc, dec)| m.name == *enc || m.name == *dec)
                || m.body.is_empty()
            {
                continue;
            }
            let body = &toks[m.body.clone()];
            // The fn's own baseline gate (a wholly feature-gated impl or
            // module) is not a *mixed* stream; only gates opening inside
            // the body count.
            let baseline = &toks[m.body.start].cfg_features;
            let gated = body
                .iter()
                .find(|t| t.cfg_features.iter().any(|g| !baseline.contains(g)) && !t.in_test);
            let Some(gated) = gated else { continue };
            let guarded = body
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if is_feature_guard(s)));
            if !guarded {
                out.push(Violation {
                    file: f.path.clone(),
                    line: gated.line,
                    rule: "feature-symmetry",
                    message: format!(
                        "`{}` writes/reads feature-gated snapshot bytes but never consults \
                         the feature-bits header (`snap_features`/`FEATURE_*`) — a build \
                         without the feature would mis-parse the stream (annotate if the \
                         container header already carries the bits)",
                        m.name
                    ),
                });
            }
        }
    }
}

/// The semantic enums S3 protects: op outcomes, kernel completion
/// outcomes and fault modes, fault kinds, plan steps, breaker states and
/// decisions, rejection reasons, attempt kinds, LSM background-job
/// kinds, the observer event kinds, and the chaos oracle/outcome
/// kinds. A `_` arm over any of these swallows future variants
/// silently.
pub const PROTECTED_ENUMS: [&str; 14] = [
    "OpOutcome",
    "Outcome",
    "FaultKind",
    "FailMode",
    "Step",
    "BreakerState",
    "BreakerDecision",
    "RejectReason",
    "AttemptKind",
    "JobKind",
    "HintEventKind",
    "TraceEventKind",
    "OracleKind",
    "ScheduleOutcome",
];

/// S3 `wildcard-match`: no `_` catch-all arms in matches over the
/// protected semantic enums. The enum is identified by `Path::Variant`
/// mentions in the arms themselves (token level — the scrutinee's type
/// is invisible), so `use Enum::*`-style matches escape; the tree
/// doesn't use that style.
fn rule_wildcard_match(f: &SourceFile, parsed: &Items, out: &mut Vec<Violation>) {
    if is_bin(&f.path) {
        return;
    }
    let toks = &f.lexed.tokens;
    for m in parsed.matches.iter().filter(|m| !m.in_test) {
        let mut named: Option<&str> = None;
        for arm in &m.arms {
            for i in arm.pat.clone() {
                let Tok::Ident(name) = &toks[i].tok else {
                    continue;
                };
                if punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':') {
                    if let Some(p) = PROTECTED_ENUMS.iter().find(|p| *p == name) {
                        named = Some(p);
                    }
                }
            }
        }
        let Some(enum_name) = named else { continue };
        for arm in m.arms.iter().filter(|a| a.wildcard) {
            out.push(Violation {
                file: f.path.clone(),
                line: arm.line,
                rule: "wildcard-match",
                message: format!(
                    "`_` arm in a match over `{enum_name}` — a new variant would be \
                     silently swallowed; enumerate the variants (or justify the catch-all)"
                ),
            });
        }
    }
}

/// True when tokens after `i` match the given idents/punct pattern.
/// Pattern entries of length 1 that aren't alphanumeric match puncts.
fn follows(toks: &[crate::lexer::Token], i: usize, pattern: &[&str]) -> bool {
    pattern
        .iter()
        .enumerate()
        .all(|(k, want)| match toks.get(i + 1 + k).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => s == want,
            Some(Tok::Punct(c)) => want.len() == 1 && want.starts_with(*c),
            _ => false,
        })
}

fn punct_at(toks: &[crate::lexer::Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            lexed: lex(src),
        }
    }

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/sim/src/kernel.rs"), "sim");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("tests/determinism.rs"), "root");
    }

    #[test]
    fn clock_rule_scoped_to_deterministic_crates() {
        // bench joined the determinism net; core (pure data structures,
        // no clocks to misuse) stays outside it.
        let bad = file("crates/sim/src/x.rs", "fn f() { let t = Instant::now(); }");
        let bad_bench = file(
            "crates/bench/src/x.rs",
            "fn f() { let t = Instant::now(); }",
        );
        let ok = file("crates/core/src/x.rs", "fn f() { let t = Instant::now(); }");
        let v = audit_files(&[bad, bad_bench, ok]);
        let files: Vec<&str> = v.iter().map(|x| x.file.as_str()).collect();
        assert_eq!(files, ["crates/bench/src/x.rs", "crates/sim/src/x.rs"]);
        assert!(v.iter().all(|x| x.rule == "clock"));
    }

    #[test]
    fn instant_without_now_is_fine() {
        let f = file(
            "crates/sim/src/x.rs",
            "use std::time::Instant; fn f(t: Instant) -> Instant { t }",
        );
        assert!(audit_files(&[f]).is_empty());
    }

    #[test]
    fn unwrap_in_tests_is_fine() {
        let f = file(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests { fn t() { v.unwrap(); } }",
        );
        assert!(audit_files(&[f]).is_empty());
    }

    #[test]
    fn empty_expect_flagged_contextful_expect_fine() {
        let f = file(
            "crates/core/src/x.rs",
            "fn f() { a.expect(\"\"); b.expect(\"queue non-empty: pushed above\"); }",
        );
        let v = audit_files(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unwrap");
    }

    #[test]
    fn float_sum_blessed_helpers_escape() {
        let src = "pub fn kahan_sum(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }\npub fn mean(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }";
        let f = file("crates/core/src/stats.rs", src);
        let v = audit_files(&[f]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "float-sum");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn shape_coverage_cross_file() {
        let ext = file(
            "crates/harness/src/extensions.rs",
            "pub fn all_extensions() -> Vec<(&'static str, &'static str)> {\n    vec![(\"ext-covered\", \"t\"), (\"ext-bare\", \"t\")]\n}",
        );
        let shape = file(
            "crates/harness/src/shape.rs",
            "pub fn checks_for(figure: &str) { match figure { \"ext-covered\" => {}, _ => {} } }",
        );
        let v = audit_files(&[ext, shape]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "shape-coverage");
        assert!(v[0].message.contains("ext-bare"));
    }

    #[test]
    fn obs_modules_inherit_the_determinism_rules() {
        let clock = file(
            "crates/harness/src/obs.rs",
            "fn f() { let t = Instant::now(); }",
        );
        let hash = file(
            "crates/core/src/stats.rs",
            "fn windows() { let m: HashMap<u64, u64> = HashMap::new(); }",
        );
        // The same code in an unscoped harness module stays clean.
        let other = file(
            "crates/harness/src/figures.rs",
            "fn f() { let t = Instant::now(); let m: HashMap<u64, u64> = HashMap::new(); }",
        );
        let v = audit_files(&[clock, hash, other]);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v
            .iter()
            .any(|v| v.rule == "clock" && v.file.ends_with("obs.rs")));
        assert!(v
            .iter()
            .filter(|v| v.rule == "hash-order")
            .all(|v| v.file.ends_with("stats.rs")));
    }

    #[test]
    fn resilience_module_trips_the_clock_rule() {
        let clock = file(
            "crates/harness/src/resilience.rs",
            "fn f() { let t = Instant::now(); }",
        );
        let v = audit_files(&[clock]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].rule == "clock" && v[0].file.ends_with("resilience.rs"));
    }

    #[test]
    fn resilience_module_trips_the_hash_order_rule() {
        let hash = file(
            "crates/harness/src/resilience.rs",
            "fn f() { let m: HashMap<u64, u64> = HashMap::new(); }",
        );
        // The same map in an unscoped harness module stays clean.
        let other = file(
            "crates/harness/src/figures.rs",
            "fn f() { let m: HashMap<u64, u64> = HashMap::new(); }",
        );
        let v = audit_files(&[hash, other]);
        assert!(!v.is_empty(), "scoped module must trip hash-order");
        assert!(v
            .iter()
            .all(|v| v.rule == "hash-order" && v.file.ends_with("resilience.rs")));
    }

    #[test]
    fn allow_annotation_silences() {
        let f = file(
            "crates/sim/src/x.rs",
            "// audit:allow(hash-order)\nuse std::collections::HashMap;\n",
        );
        assert!(audit_files(&[f]).is_empty());
    }
}
