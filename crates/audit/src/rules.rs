//! The project-specific lint rules (D1–D5).
//!
//! Each rule walks the token stream from [`crate::lexer`] — no AST. The
//! rules are deliberately scoped by crate (derived from the file path)
//! so that, e.g., the wall-clock ban applies to the deterministic
//! simulation layers but not to `bench`, which times real hardware.
//!
//! | rule             | issue | scope                                 | default |
//! |------------------|-------|---------------------------------------|---------|
//! | `clock`          | D1    | sim, stores, storage + obs/snap mods  | deny    |
//! | `hash-order`     | D2    | sim, stores + obs/snap modules        | deny    |
//! | `unwrap`         | D3    | all non-test library code             | warn    |
//! | `float-sum`      | D4    | core::stats, core::timeseries        | warn    |
//! | `shape-coverage` | D5    | harness extensions vs shape           | deny    |
//!
//! The *obs modules* — `core/src/stats.rs` (windowed telemetry),
//! `harness/src/obs.rs` (profiler + trace exporter), and
//! `harness/src/resilience.rs` (policy-on replay experiments) — feed
//! deterministic artifacts (trace fingerprints, telemetry and policy
//! tables), so they inherit the determinism rules even though their
//! crates otherwise don't. The *snap modules* — `core/src/snap.rs`
//! (the sealed snapshot container and Snap codec) and
//! `harness/src/snap.rs` (checkpoint/resume/bisect experiments) —
//! join them: a snapshot byte stream that varies run-to-run breaks
//! resume byte-identity outright.
//!
//! `--deny-all` promotes warnings to errors. Any rule is silenced on a
//! line with `// audit:allow(<rule>)` on that line or the line above.

use crate::lexer::{LexedFile, Tok};

/// One source file ready for auditing.
pub struct SourceFile {
    /// Path relative to the workspace root, e.g. `crates/sim/src/kernel.rs`.
    pub path: String,
    pub lexed: LexedFile,
}

/// Rule severity before `--deny-all`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    Deny,
    Warn,
}

/// A single finding.
#[derive(Clone, Debug)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

/// Default severity per rule (promoted to Deny by `--deny-all`).
pub fn severity(rule: &str) -> Severity {
    match rule {
        "unwrap" | "float-sum" => Severity::Warn,
        _ => Severity::Deny,
    }
}

/// The audited crate, derived from a workspace-relative path.
fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        parts.next().unwrap_or("")
    } else {
        // Root package sources (`src/`, `tests/`).
        "root"
    }
}

/// Observability modules outside the deterministic crates whose output
/// (trace fingerprints, telemetry windows, resilience tables) must
/// still replay identically.
fn is_obs_path(path: &str) -> bool {
    path.ends_with("core/src/stats.rs")
        || path.ends_with("harness/src/obs.rs")
        || path.ends_with("harness/src/resilience.rs")
        || is_snap_path(path)
}

/// Snapshot modules: the codec and the checkpoint/resume harness. Both
/// emit byte streams that must be identical across runs, so they carry
/// the same determinism obligations as the simulation crates.
fn is_snap_path(path: &str) -> bool {
    path.ends_with("core/src/snap.rs") || path.ends_with("harness/src/snap.rs")
}

fn is_bin(path: &str) -> bool {
    path.contains("/bin/")
        || path.contains("/benches/")
        || path.ends_with("/main.rs")
        || path == "main.rs"
}

/// Runs every rule over the file set and returns all findings,
/// allow-list already applied, sorted by (file, line).
pub fn audit_files(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        rule_clock(f, &mut out);
        rule_hash_order(f, &mut out);
        rule_unwrap(f, &mut out);
        rule_float_sum(f, &mut out);
    }
    rule_shape_coverage(files, &mut out);
    out.retain(|v| {
        let file = files.iter().find(|f| f.path == v.file);
        !file.is_some_and(|f| f.lexed.allowed(v.line, v.rule))
    });
    out.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    out
}

/// D1 `clock`: no wall-clock or ambient randomness in the deterministic
/// layers. Flags `Instant::now`, `SystemTime`, `thread_rng`, and argless
/// `rand()`/`random()` calls in sim/stores/storage — tests included,
/// since event-ordering tests must replay identically too.
fn rule_clock(f: &SourceFile, out: &mut Vec<Violation>) {
    if !matches!(crate_of(&f.path), "sim" | "stores" | "storage") && !is_obs_path(&f.path) {
        return;
    }
    let toks = &f.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        let flagged = match name.as_str() {
            "SystemTime" | "thread_rng" => Some(format!("`{name}` is wall-clock/ambient state")),
            "Instant" => follows(toks, i, &[":", ":", "now"])
                .then(|| "`Instant::now()` breaks virtual-time determinism".to_string()),
            "rand" | "random" => {
                // Argless call: `rand()` / `random()` with nothing between
                // the parens draws from ambient RNG state.
                (punct_at(toks, i + 1, '(') && punct_at(toks, i + 2, ')'))
                    .then(|| format!("argless `{name}()` uses ambient randomness"))
            }
            _ => None,
        };
        if let Some(msg) = flagged {
            out.push(Violation {
                file: f.path.clone(),
                line: t.line,
                rule: "clock",
                message: format!("{msg}; use sim virtual time / seeded rng"),
            });
        }
    }
}

/// D2 `hash-order`: no `HashMap`/`HashSet` in the sim and stores crates.
/// Iteration order over hashed collections varies run-to-run, which
/// silently breaks event-ordering determinism — use `BTreeMap`/`BTreeSet`
/// (or sort before iterating and annotate the line).
fn rule_hash_order(f: &SourceFile, out: &mut Vec<Violation>) {
    if !matches!(crate_of(&f.path), "sim" | "stores") && !is_obs_path(&f.path) {
        return;
    }
    for t in &f.lexed.tokens {
        let Tok::Ident(name) = &t.tok else { continue };
        if name == "HashMap" || name == "HashSet" {
            out.push(Violation {
                file: f.path.clone(),
                line: t.line,
                rule: "hash-order",
                message: format!(
                    "`{name}` has nondeterministic iteration order; use BTree{} \
                     or sort before iterating",
                    &name[4..]
                ),
            });
        }
    }
}

/// D3 `unwrap`: no bare `.unwrap()` or empty `.expect("")` in non-test
/// library code. Panics without context are useless in a long
/// simulation run; say *why* the value is present or propagate the error.
fn rule_unwrap(f: &SourceFile, out: &mut Vec<Violation>) {
    if is_bin(&f.path) {
        return;
    }
    let toks = &f.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        if i == 0 || !punct_at(toks, i - 1, '.') {
            continue;
        }
        let msg = match name.as_str() {
            "unwrap" if punct_at(toks, i + 1, '(') && punct_at(toks, i + 2, ')') => {
                Some("bare `.unwrap()` in library code")
            }
            "expect"
                if punct_at(toks, i + 1, '(')
                    && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Str(s)) if s.is_empty()) =>
            {
                Some("`.expect(\"\")` carries no context")
            }
            _ => None,
        };
        if let Some(msg) = msg {
            out.push(Violation {
                file: f.path.clone(),
                line: t.line,
                rule: "unwrap",
                message: format!("{msg}; add a contextful expect message or propagate the error"),
            });
        }
    }
}

/// D4 `float-sum`: `core::stats` / `core::timeseries` must not narrow to
/// `f32` or run order-sensitive float reductions. `fold` over floats is
/// only blessed inside the compensated-summation helpers (functions
/// whose name mentions `kahan` or `pairwise`).
fn rule_float_sum(f: &SourceFile, out: &mut Vec<Violation>) {
    if f.path != "crates/core/src/stats.rs" && f.path != "crates/core/src/timeseries.rs" {
        return;
    }
    for t in &f.lexed.tokens {
        let Tok::Ident(name) = &t.tok else { continue };
        let blessed = t
            .in_fn
            .as_deref()
            .is_some_and(|f| f.contains("kahan") || f.contains("pairwise"));
        let msg = match name.as_str() {
            "f32" => Some("`f32` narrowing loses precision in aggregate stats"),
            "fold" if !blessed => {
                Some("order-sensitive `fold` reduction outside a blessed kahan/pairwise helper")
            }
            _ => None,
        };
        if let Some(msg) = msg {
            out.push(Violation {
                file: f.path.clone(),
                line: t.line,
                rule: "float-sum",
                message: format!("{msg}; use integer sums or `kahan_sum`"),
            });
        }
    }
}

/// D5 `shape-coverage`: every experiment id registered in
/// `harness/src/extensions.rs::all_extensions` must appear in at least
/// one shape check in `harness/src/shape.rs`. A figure nobody sanity-
/// checks is a figure that can silently drift.
fn rule_shape_coverage(files: &[SourceFile], out: &mut Vec<Violation>) {
    let Some(ext) = files
        .iter()
        .find(|f| f.path.ends_with("harness/src/extensions.rs"))
    else {
        return;
    };
    let Some(shape) = files
        .iter()
        .find(|f| f.path.ends_with("harness/src/shape.rs"))
    else {
        return;
    };
    // Registered ids: non-test "ext-*" string literals inside
    // `all_extensions` (test modules register fakes like "ext-nope").
    let mut ids: Vec<(String, u32)> = Vec::new();
    for t in &ext.lexed.tokens {
        if t.in_test || t.in_fn.as_deref() != Some("all_extensions") {
            continue;
        }
        if let Tok::Str(s) = &t.tok {
            if s.starts_with("ext-") && !ids.iter().any(|(id, _)| id == s) {
                ids.push((s.clone(), t.line));
            }
        }
    }
    // Covered ids: any non-test string literal in shape.rs mentioning
    // the id (the `checks_for` match arms).
    for (id, line) in ids {
        let covered =
            shape.lexed.tokens.iter().any(|t| {
                !t.in_test && matches!(&t.tok, Tok::Str(s) if s == &id || s.contains(&id))
            });
        if !covered {
            out.push(Violation {
                file: ext.path.clone(),
                line,
                rule: "shape-coverage",
                message: format!("experiment `{id}` has no shape check in harness/src/shape.rs"),
            });
        }
    }
}

/// True when tokens after `i` match the given idents/punct pattern.
/// Pattern entries of length 1 that aren't alphanumeric match puncts.
fn follows(toks: &[crate::lexer::Token], i: usize, pattern: &[&str]) -> bool {
    pattern
        .iter()
        .enumerate()
        .all(|(k, want)| match toks.get(i + 1 + k).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => s == want,
            Some(Tok::Punct(c)) => want.len() == 1 && want.starts_with(*c),
            _ => false,
        })
}

fn punct_at(toks: &[crate::lexer::Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            lexed: lex(src),
        }
    }

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/sim/src/kernel.rs"), "sim");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("tests/determinism.rs"), "root");
    }

    #[test]
    fn clock_rule_scoped_to_deterministic_crates() {
        let bad = file("crates/sim/src/x.rs", "fn f() { let t = Instant::now(); }");
        let ok = file(
            "crates/bench/src/x.rs",
            "fn f() { let t = Instant::now(); }",
        );
        let v = audit_files(&[bad, ok]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "clock");
        assert_eq!(v[0].file, "crates/sim/src/x.rs");
    }

    #[test]
    fn instant_without_now_is_fine() {
        let f = file(
            "crates/sim/src/x.rs",
            "use std::time::Instant; fn f(t: Instant) -> Instant { t }",
        );
        assert!(audit_files(&[f]).is_empty());
    }

    #[test]
    fn unwrap_in_tests_is_fine() {
        let f = file(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests { fn t() { v.unwrap(); } }",
        );
        assert!(audit_files(&[f]).is_empty());
    }

    #[test]
    fn empty_expect_flagged_contextful_expect_fine() {
        let f = file(
            "crates/core/src/x.rs",
            "fn f() { a.expect(\"\"); b.expect(\"queue non-empty: pushed above\"); }",
        );
        let v = audit_files(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unwrap");
    }

    #[test]
    fn float_sum_blessed_helpers_escape() {
        let src = "pub fn kahan_sum(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }\npub fn mean(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }";
        let f = file("crates/core/src/stats.rs", src);
        let v = audit_files(&[f]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "float-sum");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn shape_coverage_cross_file() {
        let ext = file(
            "crates/harness/src/extensions.rs",
            "pub fn all_extensions() -> Vec<(&'static str, &'static str)> {\n    vec![(\"ext-covered\", \"t\"), (\"ext-bare\", \"t\")]\n}",
        );
        let shape = file(
            "crates/harness/src/shape.rs",
            "pub fn checks_for(figure: &str) { match figure { \"ext-covered\" => {}, _ => {} } }",
        );
        let v = audit_files(&[ext, shape]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "shape-coverage");
        assert!(v[0].message.contains("ext-bare"));
    }

    #[test]
    fn obs_modules_inherit_the_determinism_rules() {
        let clock = file(
            "crates/harness/src/obs.rs",
            "fn f() { let t = Instant::now(); }",
        );
        let hash = file(
            "crates/core/src/stats.rs",
            "fn windows() { let m: HashMap<u64, u64> = HashMap::new(); }",
        );
        // The same code in an unscoped harness module stays clean.
        let other = file(
            "crates/harness/src/figures.rs",
            "fn f() { let t = Instant::now(); let m: HashMap<u64, u64> = HashMap::new(); }",
        );
        let v = audit_files(&[clock, hash, other]);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v
            .iter()
            .any(|v| v.rule == "clock" && v.file.ends_with("obs.rs")));
        assert!(v
            .iter()
            .filter(|v| v.rule == "hash-order")
            .all(|v| v.file.ends_with("stats.rs")));
    }

    #[test]
    fn resilience_module_trips_the_clock_rule() {
        let clock = file(
            "crates/harness/src/resilience.rs",
            "fn f() { let t = Instant::now(); }",
        );
        let v = audit_files(&[clock]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].rule == "clock" && v[0].file.ends_with("resilience.rs"));
    }

    #[test]
    fn resilience_module_trips_the_hash_order_rule() {
        let hash = file(
            "crates/harness/src/resilience.rs",
            "fn f() { let m: HashMap<u64, u64> = HashMap::new(); }",
        );
        // The same map in an unscoped harness module stays clean.
        let other = file(
            "crates/harness/src/figures.rs",
            "fn f() { let m: HashMap<u64, u64> = HashMap::new(); }",
        );
        let v = audit_files(&[hash, other]);
        assert!(!v.is_empty(), "scoped module must trip hash-order");
        assert!(v
            .iter()
            .all(|v| v.rule == "hash-order" && v.file.ends_with("resilience.rs")));
    }

    #[test]
    fn allow_annotation_silences() {
        let f = file(
            "crates/sim/src/x.rs",
            "// audit:allow(hash-order)\nuse std::collections::HashMap;\n",
        );
        assert!(audit_files(&[f]).is_empty());
    }
}
