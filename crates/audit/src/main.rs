//! `cargo run -p apm-audit [-- FLAGS] [root]`
//!
//! Lints the workspace sources against the determinism rules (DESIGN.md
//! §8). Flags:
//!
//! * `--deny-all` — promote warn-severity rules (unwrap, float-sum) to
//!   errors; CI runs this mode.
//! * `--format human|json|github` — output format (default `human`).
//!   `github` emits `::error file=,line=` workflow commands so findings
//!   annotate PRs inline.
//! * `--baseline PATH` — suppression file (default
//!   `<root>/audit-baseline.json` when it exists). Suppressions match on
//!   exact `(rule, file, message)`; any suppression matching nothing is
//!   *stale* and fails the run.
//! * `--update-baseline` — rewrite the baseline to suppress exactly the
//!   current findings, then exit 0. An empty finding set writes an empty
//!   baseline, so on a clean tree this is how CI checks freshness
//!   (`--update-baseline` + `git diff --exit-code`).
//! * `--out PATH` — additionally write the JSON report to PATH
//!   regardless of `--format` (CI uploads it as an artifact).
//!
//! Exit code: 1 when any error-severity finding survives the baseline or
//! the baseline is stale; 0 otherwise.

use std::path::PathBuf;
use std::process::ExitCode;

use apm_audit::diag::{self, Baseline, Format, Summary};
use apm_audit::{audit_files, walk};

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut format = Format::Human;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut out_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--update-baseline" => update_baseline = true,
            "--format" => match args.next().as_deref().and_then(Format::parse) {
                Some(f) => format = f,
                None => {
                    eprintln!("apm-audit: --format expects human|json|github");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("apm-audit: --baseline expects a path");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("apm-audit: --out expects a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: apm-audit [--deny-all] [--format human|json|github] \
                     [--baseline PATH] [--update-baseline] [--out PATH] [workspace-root]"
                );
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let files = match walk::workspace_sources(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!(
                "apm-audit: cannot read sources under {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let findings = diag::resolve(&audit_files(&files), deny_all);

    // Default baseline: <root>/audit-baseline.json, but only when it
    // exists — a missing default is not an error, a missing explicit
    // `--baseline` is.
    let baseline_path = baseline_path.or_else(|| {
        let p = root.join("audit-baseline.json");
        p.exists().then_some(p)
    });

    if update_baseline {
        let path = baseline_path.unwrap_or_else(|| root.join("audit-baseline.json"));
        let base = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(&path, base.render()) {
            eprintln!("apm-audit: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "apm-audit: wrote {} ({} suppression(s))",
            path.display(),
            base.suppressions.len()
        );
        return ExitCode::SUCCESS;
    }

    let applied = match &baseline_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("apm-audit: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match Baseline::parse(&text) {
                Ok(b) => b.apply(findings),
                Err(e) => {
                    eprintln!("apm-audit: {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        None => diag::Applied {
            remaining: findings,
            suppressed: 0,
            stale: Vec::new(),
        },
    };

    let summary = Summary::tally(&applied.remaining, files.len(), applied.suppressed);
    print!("{}", diag::render(format, &applied.remaining, summary));

    if let Some(path) = out_path {
        let report = diag::render_json(&applied.remaining, summary);
        if let Err(e) = std::fs::write(&path, report) {
            eprintln!("apm-audit: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let mut failed = summary.errors > 0;
    for s in &applied.stale {
        eprintln!(
            "apm-audit: stale baseline suppression (no matching finding): \
             [{}] {} — {}; rerun with --update-baseline",
            s.rule, s.file, s.message
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
