//! `cargo run -p apm-audit [-- --deny-all] [root]`
//!
//! Lints the workspace sources against the determinism rules (DESIGN.md
//! §8) and prints findings as `file:line: [rule] message`. Exit code is
//! non-zero when any deny-severity finding exists; `--deny-all`
//! promotes warnings (unwrap, float-sum) to errors — CI runs that mode.

use std::path::PathBuf;
use std::process::ExitCode;

use apm_audit::{audit_files, severity, walk, Severity};

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--help" | "-h" => {
                println!("usage: apm-audit [--deny-all] [workspace-root]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let files = match walk::workspace_sources(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!(
                "apm-audit: cannot read sources under {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let violations = audit_files(&files);

    let mut denies = 0usize;
    let mut warns = 0usize;
    for v in &violations {
        let sev = if deny_all {
            Severity::Deny
        } else {
            severity(v.rule)
        };
        let tag = match sev {
            Severity::Deny => {
                denies += 1;
                "error"
            }
            Severity::Warn => {
                warns += 1;
                "warning"
            }
        };
        println!("{}:{}: {tag}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    println!(
        "apm-audit: {} file(s) scanned, {denies} error(s), {warns} warning(s)",
        files.len()
    );
    if denies > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
