//! Shared diagnostics core: rendering, baseline suppression, exit policy.
//!
//! Everything downstream of the rules lives here so the CLI, CI, and the
//! golden-file tests all consume one representation:
//!
//! * [`Format`] — `human` (editor-style `file:line:` lines), `json`
//!   (stable machine-readable report, schema below), `github`
//!   (`::error file=,line=` workflow commands that annotate PRs inline).
//! * [`Baseline`] — a committed `audit-baseline.json` of suppressions.
//!   A suppression matches on exact `(rule, file, message)` — line
//!   numbers are deliberately excluded because they drift with every
//!   edit. A suppression that matches nothing is *stale* and fails the
//!   run, so the baseline can only shrink or be consciously regenerated
//!   via `--update-baseline`.
//!
//! JSON report schema (version 1):
//!
//! ```json
//! {
//!   "tool": "apm-audit",
//!   "version": 1,
//!   "summary": {"files": 0, "errors": 0, "warnings": 0, "suppressed": 0},
//!   "findings": [
//!     {"file": "...", "line": 1, "rule": "...", "severity": "error", "message": "..."}
//!   ]
//! }
//! ```
//!
//! The JSON is emitted and parsed by hand (the crate is dependency-free
//! by design); the parser accepts exactly the subset the renderer
//! produces plus arbitrary whitespace.

use crate::rules::{severity, Severity, Violation};

/// Output format selected by `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `file:line: error: [rule] message` — the default, for humans.
    Human,
    /// Stable machine-readable report (schema in the module docs).
    Json,
    /// GitHub Actions workflow commands (`::error file=,line=`).
    Github,
}

impl Format {
    /// Parse a `--format` argument value.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "human" => Some(Format::Human),
            "json" => Some(Format::Json),
            "github" => Some(Format::Github),
            _ => None,
        }
    }
}

/// A finding with its effective severity resolved (after `--deny-all`).
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
}

/// Resolve raw violations to findings under the given severity policy.
pub fn resolve(violations: &[Violation], deny_all: bool) -> Vec<Finding> {
    violations
        .iter()
        .map(|v| Finding {
            file: v.file.clone(),
            line: v.line,
            rule: v.rule,
            severity: if deny_all {
                Severity::Deny
            } else {
                severity(v.rule)
            },
            message: v.message.clone(),
        })
        .collect()
}

/// Aggregate counts for the report footer / JSON summary.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    pub files: usize,
    pub errors: usize,
    pub warnings: usize,
    pub suppressed: usize,
}

impl Summary {
    pub fn tally(findings: &[Finding], files: usize, suppressed: usize) -> Summary {
        let errors = findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count();
        Summary {
            files,
            errors,
            warnings: findings.len() - errors,
            suppressed,
        }
    }
}

fn severity_str(s: Severity) -> &'static str {
    match s {
        Severity::Deny => "error",
        Severity::Warn => "warning",
    }
}

/// Render findings in the requested format. The returned string is the
/// full stdout payload including the trailing newline (empty only when
/// there is nothing at all to say, which never happens: the human and
/// json formats always carry a summary).
pub fn render(format: Format, findings: &[Finding], summary: Summary) -> String {
    match format {
        Format::Human => {
            let mut out = String::new();
            for f in findings {
                out.push_str(&format!(
                    "{}:{}: {}: [{}] {}\n",
                    f.file,
                    f.line,
                    severity_str(f.severity),
                    f.rule,
                    f.message
                ));
            }
            out.push_str(&format!(
                "apm-audit: {} file(s) scanned, {} error(s), {} warning(s), {} suppressed\n",
                summary.files, summary.errors, summary.warnings, summary.suppressed
            ));
            out
        }
        Format::Json => render_json(findings, summary),
        Format::Github => {
            let mut out = String::new();
            for f in findings {
                // Workflow-command data must not contain raw newlines or
                // `::`; the rules never emit either, but escape anyway.
                let cmd = match f.severity {
                    Severity::Deny => "error",
                    Severity::Warn => "warning",
                };
                out.push_str(&format!(
                    "::{cmd} file={},line={},title=apm-audit {}::{}\n",
                    f.file,
                    f.line,
                    f.rule,
                    gh_escape(&f.message)
                ));
            }
            out.push_str(&format!(
                "apm-audit: {} file(s) scanned, {} error(s), {} warning(s), {} suppressed\n",
                summary.files, summary.errors, summary.warnings, summary.suppressed
            ));
            out
        }
    }
}

/// Escape the message payload of a GitHub workflow command.
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Render the version-1 JSON report.
pub fn render_json(findings: &[Finding], summary: Summary) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"apm-audit\",\n  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"summary\": {{\"files\": {}, \"errors\": {}, \"warnings\": {}, \"suppressed\": {}}},\n",
        summary.files, summary.errors, summary.warnings, summary.suppressed
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"severity\": {}, \"message\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(severity_str(f.severity)),
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Serialize a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// One committed suppression. Matches findings on exact
/// `(rule, file, message)`; line numbers are excluded because they move
/// with every unrelated edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub rule: String,
    pub file: String,
    pub message: String,
}

/// The parsed `audit-baseline.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub suppressions: Vec<Suppression>,
}

/// Result of applying a baseline to a set of findings.
pub struct Applied {
    /// Findings not matched by any suppression — these are reported.
    pub remaining: Vec<Finding>,
    /// Number of findings swallowed by the baseline.
    pub suppressed: usize,
    /// Suppressions that matched nothing: the baseline is stale and the
    /// run fails until it is regenerated with `--update-baseline`.
    pub stale: Vec<Suppression>,
}

impl Baseline {
    /// Partition findings into reported / suppressed and detect stale
    /// suppressions.
    pub fn apply(&self, findings: Vec<Finding>) -> Applied {
        let mut used = vec![false; self.suppressions.len()];
        let mut remaining = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            let hit = self
                .suppressions
                .iter()
                .position(|s| s.rule == f.rule && s.file == f.file && s.message == f.message);
            match hit {
                Some(i) => {
                    used[i] = true;
                    suppressed += 1;
                }
                None => remaining.push(f),
            }
        }
        let stale = self
            .suppressions
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(s, _)| s.clone())
            .collect();
        Applied {
            remaining,
            suppressed,
            stale,
        }
    }

    /// Build a baseline that suppresses exactly the given findings
    /// (deduplicated) — the `--update-baseline` payload.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut suppressions: Vec<Suppression> = Vec::new();
        for f in findings {
            let s = Suppression {
                rule: f.rule.to_string(),
                file: f.file.clone(),
                message: f.message.clone(),
            };
            if !suppressions.contains(&s) {
                suppressions.push(s);
            }
        }
        Baseline { suppressions }
    }

    /// Render as `audit-baseline.json`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n  \"suppressions\": [");
        for (i, s) in self.suppressions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"message\": {}}}",
                json_str(&s.rule),
                json_str(&s.file),
                json_str(&s.message)
            ));
        }
        if !self.suppressions.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parse `audit-baseline.json`. Accepts the subset of JSON the
    /// renderer produces (objects, arrays, strings, integers) with any
    /// whitespace; rejects everything else with a position-tagged error.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let v = Json::parse(src)?;
        let obj = v.as_object().ok_or("baseline root must be an object")?;
        match obj.iter().find(|(k, _)| k == "version").map(|(_, v)| v) {
            Some(Json::Num(1)) => {}
            Some(_) => return Err("unsupported baseline version".into()),
            None => return Err("baseline missing \"version\"".into()),
        }
        let mut out = Baseline::default();
        let Some(sups) = obj
            .iter()
            .find(|(k, _)| k == "suppressions")
            .map(|(_, v)| v)
        else {
            return Ok(out);
        };
        let arr = sups.as_array().ok_or("\"suppressions\" must be an array")?;
        for (i, entry) in arr.iter().enumerate() {
            let e = entry
                .as_object()
                .ok_or_else(|| format!("suppression #{i} must be an object"))?;
            let field = |name: &str| -> Result<String, String> {
                e.iter()
                    .find(|(k, _)| k == name)
                    .and_then(|(_, v)| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("suppression #{i} missing string \"{name}\""))
            };
            out.suppressions.push(Suppression {
                rule: field("rule")?,
                file: field("file")?,
                message: field("message")?,
            });
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON value parser (baseline input only)
// ---------------------------------------------------------------------------

/// A parsed JSON value — just enough structure for the baseline file.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(i64),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn parse(src: &str) -> Result<Json, String> {
        let bytes: Vec<char> = src.chars().collect();
        let mut pos = 0usize;
        let v = parse_value(&bytes, &mut pos)?;
        skip_ws(&bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at offset {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(src: &[char], pos: &mut usize) {
    while *pos < src.len() && src[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn expect(src: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    skip_ws(src, pos);
    if src.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{c}' at offset {pos}", pos = *pos))
    }
}

fn parse_value(src: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(src, pos);
    match src.get(*pos) {
        Some('"') => parse_string(src, pos).map(Json::Str),
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(src, pos);
            if src.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(src, pos)?);
                skip_ws(src, pos);
                match src.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some('{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(src, pos);
            if src.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(src, pos);
                let key = parse_string(src, pos)?;
                expect(src, pos, ':')?;
                let val = parse_value(src, pos)?;
                fields.push((key, val));
                skip_ws(src, pos);
                match src.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == '-' => {
            let start = *pos;
            if src[*pos] == '-' {
                *pos += 1;
            }
            while *pos < src.len() && src[*pos].is_ascii_digit() {
                *pos += 1;
            }
            let text: String = src[start..*pos].iter().collect();
            text.parse::<i64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number at offset {start}: {e}"))
        }
        _ => Err(format!("unexpected input at offset {pos}", pos = *pos)),
    }
}

fn parse_string(src: &[char], pos: &mut usize) -> Result<String, String> {
    if src.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = src.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = src
                    .get(*pos)
                    .copied()
                    .ok_or("unterminated escape in string")?;
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'u' => {
                        let hex: String = src
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")?
                            .iter()
                            .collect();
                        *pos += 4;
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                    }
                    other => return Err(format!("unsupported escape '\\{other}'")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32, msg: &str) -> Finding {
        Finding {
            file: file.into(),
            line,
            rule,
            severity: Severity::Deny,
            message: msg.into(),
        }
    }

    #[test]
    fn json_roundtrips_through_baseline_parser() {
        let base = Baseline {
            suppressions: vec![Suppression {
                rule: "clock".into(),
                file: "crates/bench/src/runner.rs".into(),
                message: "wall-clock `Instant::now()` with \"quotes\"".into(),
            }],
        };
        let text = base.render();
        let back = Baseline::parse(&text).expect("parse rendered baseline");
        assert_eq!(base, back);
    }

    #[test]
    fn empty_baseline_roundtrips() {
        let base = Baseline::default();
        let back = Baseline::parse(&base.render()).unwrap();
        assert_eq!(base, back);
    }

    #[test]
    fn baseline_apply_partitions_and_flags_stale() {
        let base = Baseline {
            suppressions: vec![
                Suppression {
                    rule: "clock".into(),
                    file: "a.rs".into(),
                    message: "m1".into(),
                },
                Suppression {
                    rule: "clock".into(),
                    file: "gone.rs".into(),
                    message: "m2".into(),
                },
            ],
        };
        let applied = base.apply(vec![
            finding("clock", "a.rs", 3, "m1"),
            finding("unwrap", "b.rs", 9, "m3"),
        ]);
        assert_eq!(applied.suppressed, 1);
        assert_eq!(applied.remaining.len(), 1);
        assert_eq!(applied.remaining[0].file, "b.rs");
        assert_eq!(applied.stale.len(), 1);
        assert_eq!(applied.stale[0].file, "gone.rs");
    }

    #[test]
    fn github_format_escapes_payload() {
        let f = vec![finding("clock", "a.rs", 3, "bad%\nthing")];
        let out = render(Format::Github, &f, Summary::tally(&f, 1, 0));
        assert!(out.contains("::error file=a.rs,line=3,title=apm-audit clock::bad%25%0Athing"));
    }

    #[test]
    fn json_report_escapes_strings() {
        let f = vec![finding("clock", "a.rs", 3, "say \"hi\"\\")];
        let out = render_json(&f, Summary::tally(&f, 1, 0));
        assert!(out.contains(r#""message": "say \"hi\"\\""#), "{out}");
        // The report must itself parse with the baseline JSON parser.
        Json::parse(&out).expect("report is valid JSON");
    }
}
