//! Workspace source discovery — `std::fs` only, no walkdir.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::lex;
use crate::rules::SourceFile;

/// Collects every `.rs` file under the workspace root that the audit
/// covers: `crates/*/src`, `crates/*/tests`, root `src/` and `tests/`.
/// `target/` and hidden directories are never entered. Paths come back
/// workspace-relative with `/` separators, sorted for stable output.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: BTreeSet<PathBuf> = BTreeSet::new();
    for top in ["src", "tests"] {
        collect_rs(&root.join(top), &mut paths)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            for sub in ["src", "tests", "benches"] {
                collect_rs(&entry.path().join(sub), &mut paths)?;
            }
        }
    }
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let source = fs::read_to_string(&p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.push(SourceFile {
            path: rel,
            lexed: lex(&source),
        });
    }
    Ok(out)
}

/// Recursively gathers `.rs` files below `dir` (no-op when absent).
fn collect_rs(dir: &Path, out: &mut BTreeSet<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if entry.file_type()?.is_dir() {
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.insert(path);
        }
    }
    Ok(())
}
