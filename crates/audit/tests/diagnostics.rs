//! Golden-file test for the machine-readable diagnostics format.
//!
//! The JSON report is a contract: CI uploads it as an artifact and
//! future tooling parses it. Any schema or rendering change must be
//! deliberate — this test pins the exact bytes for a fixed finding set.
//! When the format changes intentionally, update
//! `tests/golden/diagnostics.json` to match.

use apm_audit::diag::{render, render_json, resolve, Baseline, Format, Summary};
use apm_audit::{audit_files, lexer::lex, SourceFile};

fn file(path: &str, src: &str) -> SourceFile {
    SourceFile {
        path: path.to_string(),
        lexed: lex(src),
    }
}

/// A fixed finding set: one deny (clock) and one warn (unwrap).
fn fixture_findings() -> (Vec<SourceFile>, Vec<apm_audit::diag::Finding>) {
    let files = vec![
        file("crates/sim/src/a.rs", "fn f() { let t = Instant::now(); }"),
        file(
            "crates/core/src/b.rs",
            "pub fn g(v: Option<u64>) -> u64 {\n    v.unwrap()\n}",
        ),
    ];
    let findings = resolve(&audit_files(&files), false);
    (files, findings)
}

#[test]
fn json_report_matches_golden() {
    let (files, findings) = fixture_findings();
    let summary = Summary::tally(&findings, files.len(), 0);
    let got = render_json(&findings, summary);
    let want = include_str!("golden/diagnostics.json");
    assert_eq!(
        got, want,
        "JSON diagnostics format drifted; if intentional, update \
         crates/audit/tests/golden/diagnostics.json"
    );
}

#[test]
fn golden_report_parses_as_baseline_compatible_json() {
    // The baseline parser accepts the same JSON subset the renderer
    // emits, so the golden file doubles as a parser fixture: a baseline
    // built from the report's own findings suppresses all of them.
    let (_, findings) = fixture_findings();
    let base = Baseline::from_findings(&findings);
    let reparsed = Baseline::parse(&base.render()).expect("baseline roundtrip");
    let applied = reparsed.apply(findings);
    assert_eq!(applied.remaining.len(), 0);
    assert_eq!(applied.suppressed, 2);
    assert!(applied.stale.is_empty());
}

#[test]
fn github_format_emits_workflow_commands() {
    let (files, findings) = fixture_findings();
    let summary = Summary::tally(&findings, files.len(), 0);
    let out = render(Format::Github, &findings, summary);
    assert!(
        out.contains("::warning file=crates/core/src/b.rs,line=2,title=apm-audit unwrap::"),
        "{out}"
    );
    assert!(
        out.contains("::error file=crates/sim/src/a.rs,line=1,title=apm-audit clock::"),
        "{out}"
    );
}
