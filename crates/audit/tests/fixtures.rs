//! Fixture-driven rule tests: minimal source snippets that must trip
//! each rule D1–D5, plus allow-list escapes that must pass. These are
//! the auditor's own regression suite — if a rule stops firing on its
//! fixture, the lint has silently rotted.

use apm_audit::{audit_files, lexer::lex, severity, Severity, SourceFile};

fn file(path: &str, src: &str) -> SourceFile {
    SourceFile {
        path: path.to_string(),
        lexed: lex(src),
    }
}

fn rules_hit(files: &[SourceFile]) -> Vec<&'static str> {
    audit_files(files).into_iter().map(|v| v.rule).collect()
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_instant_now_in_sim_trips_clock() {
    let f = file(
        "crates/sim/src/bad.rs",
        "fn stamp() -> Instant { let t = Instant::now(); t }",
    );
    assert_eq!(rules_hit(&[f]), ["clock"]);
}

#[test]
fn d1_system_time_and_thread_rng_trip_clock() {
    let f = file(
        "crates/storage/src/bad.rs",
        "fn f() { let t = SystemTime::now(); let mut r = thread_rng(); }",
    );
    assert_eq!(rules_hit(&[f]), ["clock", "clock"]);
}

#[test]
fn d1_argless_random_trips_clock() {
    let f = file("crates/stores/src/bad.rs", "fn f() -> f64 { random() }");
    assert_eq!(rules_hit(&[f]), ["clock"]);
}

#[test]
fn d1_seeded_rand_call_with_args_is_fine() {
    let f = file(
        "crates/stores/src/ok.rs",
        "fn f(rng: &mut SplitRng) -> u64 { rng.next_u64() }",
    );
    assert!(rules_hit(&[f]).is_empty());
}

#[test]
fn d1_does_not_apply_outside_deterministic_crates() {
    // core holds pure data structures with no clock to misuse; bench is
    // inside the determinism net since the S-rules PR.
    let f = file(
        "crates/core/src/shape.rs",
        "fn wall() -> Instant { Instant::now() }",
    );
    assert!(rules_hit(&[f]).is_empty());
}

#[test]
fn d1_applies_to_bench() {
    let f = file(
        "crates/bench/src/runner.rs",
        "fn wall() -> Instant { Instant::now() }",
    );
    assert_eq!(rules_hit(&[f]), ["clock"]);
}

#[test]
fn d1_snap_codec_trips_clock() {
    // The snapshot codec must serialize identically across runs — no
    // wall-clock stamps in the container.
    let f = file(
        "crates/core/src/snap.rs",
        "fn stamp() -> u64 { SystemTime::now().elapsed().as_nanos() as u64 }",
    );
    assert_eq!(rules_hit(&[f]), ["clock"]);
}

#[test]
fn d1_snap_harness_trips_clock() {
    let f = file(
        "crates/harness/src/snap.rs",
        "fn jitter() { let t = Instant::now(); }",
    );
    assert_eq!(rules_hit(&[f]), ["clock"]);
}

#[test]
fn d1_chaos_modules_trip_clock() {
    // A campaign report must be a pure function of its seed — no
    // wall-clock reads anywhere in the chaos search stack.
    let model = file(
        "crates/core/src/chaos.rs",
        "fn stamp() -> u64 { SystemTime::now().elapsed().as_nanos() as u64 }",
    );
    let harness = file(
        "crates/harness/src/chaos.rs",
        "fn jitter() { let t = Instant::now(); }",
    );
    let v = audit_files(&[model, harness]);
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v
        .iter()
        .all(|x| x.rule == "clock" && x.file.contains("/chaos.rs")));
}

#[test]
fn d1_allow_escape_passes() {
    let f = file(
        "crates/sim/src/ok.rs",
        "fn f() {\n    // justified: diagnostics only. audit:allow(clock)\n    let t = Instant::now();\n}",
    );
    assert!(rules_hit(&[f]).is_empty());
}

#[test]
fn d1_clock_covers_the_kernel_hot_path_modules() {
    // The calendar queue and plan arena carry the kernel's event order
    // and plan storage; a wall-clock read in either is a determinism
    // break exactly like one in kernel.rs. Crate scoping covers them —
    // these fixtures pin that down so a future per-module scope list
    // cannot silently drop the hot path.
    let queue = file(
        "crates/sim/src/queue.rs",
        "fn f() { let t = Instant::now(); }",
    );
    let arena = file(
        "crates/sim/src/arena.rs",
        "fn f() { let t = Instant::now(); }",
    );
    assert_eq!(rules_hit(&[queue, arena]), ["clock", "clock"]);
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_hashmap_in_stores_trips_hash_order() {
    let f = file(
        "crates/stores/src/bad.rs",
        "use std::collections::HashMap;\nstruct S { jobs: HashMap<u64, usize> }",
    );
    assert_eq!(rules_hit(&[f]), ["hash-order", "hash-order"]);
}

#[test]
fn d2_hashset_in_sim_trips_hash_order() {
    let f = file(
        "crates/sim/src/bad.rs",
        "fn f() { let s: std::collections::HashSet<u64> = Default::default(); }",
    );
    assert_eq!(rules_hit(&[f]), ["hash-order"]);
}

#[test]
fn d2_hash_order_covers_the_kernel_hot_path_modules() {
    // Bucket scans in the calendar queue and chain walks in the plan
    // arena feed event order directly; hashed iteration in either would
    // leak host randomization into the schedule. The arena's intern
    // table is a fixed chained vector for exactly this reason.
    let queue = file(
        "crates/sim/src/queue.rs",
        "fn f() { let m: std::collections::HashMap<u64, u64> = Default::default(); }",
    );
    let arena = file(
        "crates/sim/src/arena.rs",
        "fn f() { let s: std::collections::HashSet<u64> = Default::default(); }",
    );
    assert_eq!(rules_hit(&[arena, queue]), ["hash-order", "hash-order"]);
}

#[test]
fn d2_btreemap_is_fine() {
    let f = file(
        "crates/stores/src/ok.rs",
        "use std::collections::BTreeMap;\nstruct S { jobs: BTreeMap<u64, usize> }",
    );
    assert!(rules_hit(&[f]).is_empty());
}

#[test]
fn d2_hashmap_outside_sim_and_stores_is_fine() {
    let f = file(
        "crates/harness/src/ok.rs",
        "use std::collections::HashMap;\nfn f() -> HashMap<u64, u64> { HashMap::new() }",
    );
    assert!(rules_hit(&[f]).is_empty());
}

#[test]
fn d2_snap_modules_trip_hash_order() {
    // A hashed map serialized in snapshot order would make two runs of
    // the same scenario produce different snapshot bytes.
    let codec = file(
        "crates/core/src/snap.rs",
        "fn f() { let m: std::collections::HashMap<u64, u64> = Default::default(); }",
    );
    let harness = file(
        "crates/harness/src/snap.rs",
        "fn f() { let s: std::collections::HashSet<u64> = Default::default(); }",
    );
    // The same collections in an unscoped harness module stay clean.
    let other = file(
        "crates/harness/src/figures.rs",
        "fn f() { let m: std::collections::HashMap<u64, u64> = Default::default(); }",
    );
    let v = audit_files(&[codec, harness, other]);
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v
        .iter()
        .all(|v| v.rule == "hash-order" && v.file.contains("/snap.rs")));
}

#[test]
fn d2_chaos_modules_trip_hash_order() {
    // The shrinker memoizes probe verdicts by subset; a hashed map
    // there would reorder probe execution between runs.
    let f = file(
        "crates/harness/src/chaos.rs",
        "fn f() { let m: std::collections::HashMap<u64, u64> = Default::default(); }",
    );
    assert_eq!(rules_hit(&[f]), ["hash-order"]);
}

#[test]
fn d2_allow_escape_passes() {
    let f = file(
        "crates/stores/src/ok.rs",
        "fn f() {\n    // Cardinality only, never iterated. audit:allow(hash-order)\n    let s: std::collections::HashSet<u64> = Default::default();\n}",
    );
    assert!(rules_hit(&[f]).is_empty());
}

#[test]
fn d2_mention_in_comment_or_string_is_fine() {
    let f = file(
        "crates/sim/src/ok.rs",
        "// a HashMap would be wrong here\nfn f() -> &'static str { \"HashMap\" }",
    );
    assert!(rules_hit(&[f]).is_empty());
}

// ---------------------------------------------------------------- D3

#[test]
fn d3_bare_unwrap_in_library_code_trips() {
    let f = file(
        "crates/core/src/bad.rs",
        "pub fn f(v: Option<u64>) -> u64 { v.unwrap() }",
    );
    assert_eq!(rules_hit(&[f]), ["unwrap"]);
}

#[test]
fn d3_empty_expect_trips() {
    let f = file(
        "crates/core/src/bad.rs",
        "pub fn f(v: Option<u64>) -> u64 { v.expect(\"\") }",
    );
    assert_eq!(rules_hit(&[f]), ["unwrap"]);
}

#[test]
fn d3_contextful_expect_is_fine() {
    let f = file(
        "crates/core/src/ok.rs",
        "pub fn f(v: Option<u64>) -> u64 { v.expect(\"pushed on the line above\") }",
    );
    assert!(rules_hit(&[f]).is_empty());
}

#[test]
fn d3_unwrap_inside_tests_is_fine() {
    let f = file(
        "crates/core/src/ok.rs",
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}",
    );
    assert!(rules_hit(&[f]).is_empty());
}

#[test]
fn d3_allow_escape_passes() {
    let f = file(
        "crates/core/src/ok.rs",
        "pub fn f(v: Option<u64>) -> u64 {\n    // infallible: v is checked by the caller. audit:allow(unwrap)\n    v.unwrap()\n}",
    );
    assert!(rules_hit(&[f]).is_empty());
}

#[test]
fn d3_is_warn_severity_by_default() {
    assert_eq!(severity("unwrap"), Severity::Warn);
    assert_eq!(severity("hash-order"), Severity::Deny);
}

// ---------------------------------------------------------------- D4

#[test]
fn d4_f32_narrowing_in_stats_trips_float_sum() {
    let f = file(
        "crates/core/src/stats.rs",
        "pub fn mean(v: &[f64]) -> f32 { v[0] as f32 }",
    );
    assert_eq!(rules_hit(&[f]), ["float-sum", "float-sum"]);
}

#[test]
fn d4_fold_outside_blessed_helper_trips() {
    let f = file(
        "crates/core/src/timeseries.rs",
        "pub fn total(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }",
    );
    assert_eq!(rules_hit(&[f]), ["float-sum"]);
}

#[test]
fn d4_fold_inside_kahan_helper_is_blessed() {
    let f = file(
        "crates/core/src/stats.rs",
        "pub fn kahan_sum(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }",
    );
    assert!(rules_hit(&[f]).is_empty());
}

#[test]
fn d4_scoped_to_stats_and_timeseries_only() {
    let f = file(
        "crates/core/src/record.rs",
        "pub fn parse(b: &[u8]) -> u64 { b.iter().fold(0, |a, x| a * 10 + u64::from(*x)) }",
    );
    assert!(rules_hit(&[f]).is_empty());
}

// ---------------------------------------------------------------- D5

#[test]
fn d5_uncovered_extension_trips_shape_coverage() {
    let ext = file(
        "crates/harness/src/extensions.rs",
        "pub fn all_extensions() -> Vec<(&'static str, &'static str)> {\n    vec![(\"ext-checked\", \"a\"), (\"ext-naked\", \"b\")]\n}",
    );
    let shape = file(
        "crates/harness/src/shape.rs",
        "pub fn checks_for(id: &str) { match id { \"ext-checked\" => {}, _ => {} } }",
    );
    let v = audit_files(&[ext, shape]);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "shape-coverage");
    assert!(v[0].message.contains("ext-naked"));
}

#[test]
fn d5_ids_in_test_modules_are_ignored() {
    let ext = file(
        "crates/harness/src/extensions.rs",
        "pub fn all_extensions() -> Vec<(&'static str, &'static str)> {\n    vec![(\"ext-real\", \"a\")]\n}\n#[cfg(test)]\nmod tests {\n    fn t() { assert!(generate(\"ext-nope\").is_none()); }\n}",
    );
    let shape = file(
        "crates/harness/src/shape.rs",
        "pub fn checks_for(id: &str) { match id { \"ext-real\" => {}, _ => {} } }",
    );
    assert!(audit_files(&[ext, shape]).is_empty());
}

#[test]
fn d5_allow_escape_passes() {
    let ext = file(
        "crates/harness/src/extensions.rs",
        "pub fn all_extensions() -> Vec<(&'static str, &'static str)> {\n    // shape pending calibration. audit:allow(shape-coverage)\n    vec![(\"ext-wip\", \"a\")]\n}",
    );
    let shape = file(
        "crates/harness/src/shape.rs",
        "pub fn checks_for(_: &str) {}",
    );
    assert!(audit_files(&[ext, shape]).is_empty());
}

// ------------------------------------------------------- end-to-end

#[test]
fn multiple_rules_sort_by_file_and_line() {
    let a = file(
        "crates/sim/src/a.rs",
        "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }",
    );
    let b = file(
        "crates/core/src/b.rs",
        "pub fn f(v: Option<u64>) -> u64 { v.unwrap() }",
    );
    let v = audit_files(&[a, b]);
    let got: Vec<(&str, u32, &str)> = v
        .iter()
        .map(|v| (v.file.as_str(), v.line, v.rule))
        .collect();
    assert_eq!(
        got,
        [
            ("crates/core/src/b.rs", 1, "unwrap"),
            ("crates/sim/src/a.rs", 1, "hash-order"),
            ("crates/sim/src/a.rs", 2, "clock"),
        ]
    );
}

// ---------------------------------------------------------------- S1

/// A struct + codec pair that is in sync: the baseline every S1 fixture
/// perturbs.
const SNAP_CLEAN: &str = "pub struct Counter {
    hits: u64,
    misses: u64,
}
impl Snap for Counter {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.hits);
        w.put_u64(self.misses);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        let hits = r.u64()?;
        let misses = r.u64()?;
        Ok(Counter { hits, misses })
    }
}
";

#[test]
fn s1_clean_snap_impl_passes() {
    let f = file("crates/sim/src/counter.rs", SNAP_CLEAN);
    assert!(rules_hit(&[f]).is_empty());
}

#[test]
fn s1_seeded_drift_regression() {
    // The end-to-end guarantee: add a field to a Snap struct without
    // touching the codec, and S1 must fire — in both halves, at the
    // inserted field's exact file and line.
    let drifted = SNAP_CLEAN.replace("misses: u64,", "misses: u64,\n    evictions: u64,");
    assert_ne!(drifted, SNAP_CLEAN, "seed edit must apply");
    let line = drifted
        .lines()
        .position(|l| l.contains("evictions"))
        .expect("inserted field present") as u32
        + 1;
    let v = audit_files(&[file("crates/sim/src/counter.rs", &drifted)]);
    assert_eq!(v.len(), 2, "one finding per codec half: {v:?}");
    for finding in &v {
        assert_eq!(finding.rule, "snap-drift");
        assert_eq!(finding.file, "crates/sim/src/counter.rs");
        assert_eq!(finding.line, line);
        assert!(
            finding.message.contains("`evictions`"),
            "{}",
            finding.message
        );
    }
    assert!(v[0].message.contains("snap"));
    assert!(v[1].message.contains("restore"));
}

#[test]
fn s1_decode_order_mismatch_trips() {
    let swapped = SNAP_CLEAN.replace(
        "let hits = r.u64()?;\n        let misses = r.u64()?;",
        "let misses = r.u64()?;\n        let hits = r.u64()?;",
    );
    assert_ne!(swapped, SNAP_CLEAN, "swap edit must apply");
    let v = audit_files(&[file("crates/sim/src/counter.rs", &swapped)]);
    assert_eq!(
        rules_hit(&[file("crates/sim/src/counter.rs", &swapped)]),
        ["snap-drift"]
    );
    assert!(v[0].message.contains("decode order"), "{}", v[0].message);
}

#[test]
fn s1_snap_state_pair_is_covered_too() {
    // The `snap_state`/`restore_state` convention (kernel, stores,
    // storage engines) is held to the same standard as `impl Snap`.
    let src = "pub struct Pool {
    frames: u64,
    hand: u64,
}
impl Pool {
    pub fn snap_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.frames);
    }
    pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.frames = r.u64()?;
        Ok(())
    }
}
";
    let v = audit_files(&[file("crates/storage/src/pool.rs", src)]);
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v
        .iter()
        .all(|x| x.rule == "snap-drift" && x.message.contains("`hand`")));
}

#[test]
fn s1_allow_escape_passes() {
    let justified = SNAP_CLEAN.replace(
        "misses: u64,",
        "misses: u64,\n    // config, not snapshotted. audit:allow(snap-drift)\n    limit: u64,",
    );
    assert_ne!(justified, SNAP_CLEAN, "edit must apply");
    assert!(rules_hit(&[file("crates/sim/src/counter.rs", &justified)]).is_empty());
}

#[test]
fn s1_ignores_test_code_and_foreign_structs() {
    // A Snap impl whose struct lives in another file is skipped (no
    // definition to cross-check), and test-module impls are exempt.
    let foreign = "impl Snap for Elsewhere {
    fn snap(&self, w: &mut SnapWriter) {}
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> { Ok(Elsewhere) }
}
";
    assert!(rules_hit(&[file("crates/sim/src/x.rs", foreign)]).is_empty());
}

// ---------------------------------------------------------------- S2

#[test]
fn s2_ungated_access_to_gated_field_trips() {
    let src = "pub struct Engine {
    now: u64,
    #[cfg(feature = \"trace\")]
    tracer: u32,
}
impl Engine {
    fn tick(&mut self) {
        self.now += 1;
        self.tracer += 1;
    }
}
";
    let v = audit_files(&[file("crates/sim/src/engine.rs", src)]);
    assert_eq!(
        rules_hit(&[file("crates/sim/src/engine.rs", src)]),
        ["feature-symmetry"]
    );
    assert_eq!(v[0].line, 9);
    assert!(v[0].message.contains("`.tracer`"), "{}", v[0].message);
}

#[test]
fn s2_similarly_gated_access_passes() {
    let src = "pub struct Engine {
    now: u64,
    #[cfg(feature = \"trace\")]
    tracer: u32,
}
impl Engine {
    #[cfg(feature = \"trace\")]
    fn tick(&mut self) {
        self.tracer += 1;
    }
}
";
    assert!(rules_hit(&[file("crates/sim/src/engine.rs", src)]).is_empty());
}

#[test]
fn s2_unguarded_feature_gated_snap_bytes_trip() {
    let src = "pub struct S {
    a: u64,
}
impl S {
    fn snap_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.a);
        #[cfg(feature = \"audit\")]
        w.put_u8(1);
    }
    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.a = r.u64()?;
        #[cfg(feature = \"audit\")]
        {
            r.u8()?;
        }
        Ok(())
    }
}
";
    assert_eq!(
        rules_hit(&[file("crates/stores/src/s.rs", src)]),
        ["feature-symmetry", "feature-symmetry"]
    );
}

#[test]
fn s2_feature_bits_guard_passes() {
    let src = "pub struct S {
    a: u64,
}
impl S {
    fn snap_state(&self, w: &mut SnapWriter) {
        w.put_u8(Engine::snap_features());
        w.put_u64(self.a);
        #[cfg(feature = \"audit\")]
        w.put_u8(1);
    }
    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let bits = r.u8()?;
        if bits != Engine::snap_features() {
            return Err(SnapError::FeatureMismatch { bits });
        }
        self.a = r.u64()?;
        #[cfg(feature = \"audit\")]
        {
            r.u8()?;
        }
        Ok(())
    }
}
";
    assert!(rules_hit(&[file("crates/stores/src/s.rs", src)]).is_empty());
}

#[test]
fn s2_allow_escape_passes() {
    let src = "pub struct S {
    a: u64,
}
impl S {
    fn snap_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.a);
        // container header carries the bits
        #[cfg(feature = \"audit\")] // audit:allow(feature-symmetry)
        w.put_u8(1);
    }
    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.a = r.u64()?;
        Ok(())
    }
}
";
    assert!(rules_hit(&[file("crates/stores/src/s.rs", src)]).is_empty());
}

// ---------------------------------------------------------------- S3

#[test]
fn s3_wildcard_over_protected_enum_trips() {
    let src = "fn f(o: OpOutcome) -> u32 {
    match o {
        OpOutcome::Done => 1,
        _ => 0,
    }
}
";
    let v = audit_files(&[file("crates/stores/src/m.rs", src)]);
    assert_eq!(
        rules_hit(&[file("crates/stores/src/m.rs", src)]),
        ["wildcard-match"]
    );
    assert_eq!(v[0].line, 4);
    assert!(v[0].message.contains("`OpOutcome`"), "{}", v[0].message);
}

#[test]
fn s3_wildcard_guard_arm_trips_too() {
    let src = "fn f(k: FaultKind) -> u32 {
    match k {
        FaultKind::Crash => 1,
        _ if true => 2,
    }
}
";
    assert_eq!(
        rules_hit(&[file("crates/sim/src/m.rs", src)]),
        ["wildcard-match"]
    );
}

#[test]
fn s3_chaos_enums_are_protected() {
    // A `_` over the oracle or outcome kinds would let a new oracle be
    // added without every report/CLI dispatch site seeing it.
    let oracle = "fn f(k: OracleKind) -> u32 {
    match k {
        OracleKind::Durability => 1,
        _ => 0,
    }
}
";
    let outcome = "fn g(o: ScheduleOutcome) -> u32 {
    match o {
        ScheduleOutcome::Pass => 1,
        _ => 0,
    }
}
";
    assert_eq!(
        rules_hit(&[file("crates/harness/src/chaos.rs", oracle)]),
        ["wildcard-match"]
    );
    assert_eq!(
        rules_hit(&[file("crates/core/src/chaos.rs", outcome)]),
        ["wildcard-match"]
    );
}

#[test]
fn s3_unprotected_enum_and_binding_patterns_pass() {
    let src = "fn f(o: Option<u64>, c: Color) -> u64 {
    let x = match c {
        Color::Red => 1,
        _ => 0,
    };
    match o {
        Some(n) => n,
        _ => x,
    }
}
";
    assert!(rules_hit(&[file("crates/stores/src/m.rs", src)]).is_empty());
}

#[test]
fn s3_test_code_is_exempt() {
    let src = "#[cfg(test)]
mod tests {
    fn f(o: OpOutcome) -> u32 {
        match o {
            OpOutcome::Done => 1,
            _ => 0,
        }
    }
}
";
    assert!(rules_hit(&[file("crates/stores/src/m.rs", src)]).is_empty());
}

#[test]
fn s3_allow_escape_passes() {
    let src = "fn f(o: OpOutcome) -> u32 {
    match o {
        OpOutcome::Done => 1,
        // domain constrained by caller. audit:allow(wildcard-match)
        _ => 0,
    }
}
";
    assert!(rules_hit(&[file("crates/stores/src/m.rs", src)]).is_empty());
}
