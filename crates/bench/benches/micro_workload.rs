//! Microbenchmarks of workload generation, statistics, and the raw
//! simulator event loop.

use apm_bench::runner::{black_box, Group};
use apm_core::stats::{BenchStats, Histogram};
use apm_core::workload::{Workload, WorkloadGenerator};
use apm_sim::kernel::{Engine, Token};
use apm_sim::plan::Plan;
use apm_sim::time::SimDuration;

fn bench_workload_gen() {
    let group = Group::new("workload");
    for workload in [Workload::r(), Workload::w(), Workload::rsw()] {
        let name = format!("next_op_{}", workload.name);
        let mut generator = WorkloadGenerator::new(workload.clone(), 1_000_000, 7);
        group.bench(&name, || {
            let op = generator.next_op();
            if op.kind() == apm_core::ops::OpKind::Insert {
                generator.ack_insert();
            }
            black_box(op.kind())
        });
    }
}

fn bench_histogram() {
    let group = Group::new("histogram");
    let mut h = Histogram::new();
    let mut v = 1u64;
    group.bench("record", || {
        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
        h.record(black_box(v % 100_000_000));
    });
    for v in 0..1_000_000u64 {
        h.record(v * 131 % 100_000_000);
    }
    group.bench("quantile_p99", || black_box(h.quantile(0.99)));
    let mut stats = BenchStats::new();
    group.bench("bench_stats_record", || {
        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
        stats.record(apm_core::ops::OpKind::Insert, v % 10_000_000);
    });
}

fn bench_kernel() {
    let group = Group::new("kernel");
    // One iteration = submit and complete a closed loop of 1000 plans on
    // a contended resource: measures events/second of the simulator.
    group.bench("closed_loop_1000_ops", || {
        let mut engine = Engine::new();
        let cpu = engine.add_resource("cpu", 8);
        let plan = engine.prepare(
            &Plan::build()
                .acquire(cpu, SimDuration::from_micros(100))
                .finish(),
        );
        for i in 0..64 {
            engine.submit_prepared(plan, Token(i));
        }
        let mut batch = std::collections::VecDeque::new();
        let mut completed = 0u64;
        while completed < 1_000 {
            if batch.is_empty() && !engine.drain_completions(&mut batch) {
                panic!("closed loop starved");
            }
            let c = batch.pop_front().expect("closed loop");
            completed += 1;
            engine.submit_prepared(plan, c.token);
        }
        black_box(engine.now())
    });
}

fn main() {
    bench_workload_gen();
    bench_histogram();
    bench_kernel();
}
