//! The committed perf trajectory: measures raw kernel event throughput
//! and the wall-clock cost of a reduced store matrix, then emits
//! `BENCH_kernel.json` (see `runner::Artifact`). CI and PR authors rerun
//! this with `cargo bench -p apm-bench --bench kernel` and commit the
//! refreshed artifact so kernel speedups and regressions stay visible in
//! history.
//!
//! `cargo bench -p apm-bench --bench kernel -- compare` measures the same
//! metrics but diffs them against the committed artifact instead of
//! overwriting it, writing `BENCH_kernel.compare.json` for CI upload.

use apm_bench::bench_profile;
use apm_bench::runner::{black_box, Artifact, Group};
use apm_core::workload::Workload;
use apm_harness::experiment::{run_point, StoreKind};
use apm_sim::kernel::{Engine, Token};
use apm_sim::plan::Plan;
use apm_sim::time::SimDuration;
use apm_sim::ClusterSpec;
use std::collections::VecDeque;

/// Closed loop of 1000 plan completions on a contended resource — the
/// simulator's hottest path. Returns mean ns per whole loop.
fn kernel_closed_loop(group: &Group) -> f64 {
    group.bench("closed_loop_1000_ops", || {
        let mut engine = Engine::new();
        let cpu = engine.add_resource("cpu", 8);
        let plan = engine.prepare(
            &Plan::build()
                .acquire(cpu, SimDuration::from_micros(100))
                .finish(),
        );
        for i in 0..64 {
            engine.submit_prepared(plan, Token(i));
        }
        let mut batch = VecDeque::new();
        let mut completed = 0u64;
        while completed < 1_000 {
            if batch.is_empty() && !engine.drain_completions(&mut batch) {
                panic!("closed loop starved");
            }
            let c = batch.pop_front().expect("closed loop");
            completed += 1;
            engine.submit_prepared(plan, c.token);
        }
        black_box(engine.now())
    })
}

/// The reduced matrix: every store at one Workload-RW point (Cluster M,
/// 2 nodes, bench profile). Returns total wall milliseconds for one pass.
fn reduced_matrix(group: &Group) -> f64 {
    let profile = bench_profile();
    let workload = Workload::rw();
    group.bench_slow("reduced_matrix_6_stores", 3, || {
        let mut total = 0.0;
        for kind in StoreKind::ALL {
            let point = run_point(kind, ClusterSpec::cluster_m(), 2, &workload, &profile);
            total += point.throughput();
        }
        black_box(total)
    })
}

fn main() {
    let compare = std::env::args().any(|a| a == "compare");
    let group = Group::new("kernel");
    let loop_ns = kernel_closed_loop(&group);
    let matrix_ms = reduced_matrix(&group);

    let mut artifact = Artifact::new("kernel");
    // 1000 completions per closed-loop iteration.
    artifact.record("kernel_events_per_sec", 1_000.0 * 1e9 / loop_ns, "events/s");
    artifact.record("kernel_closed_loop_1000_ops", loop_ns / 1e3, "us/iter");
    artifact.record("reduced_matrix_wall", matrix_ms, "ms/pass");

    if compare {
        // Diff against the committed trajectory; never overwrite it.
        let committed = Artifact::out_dir().join("BENCH_kernel.json");
        match artifact.compare_against(&committed) {
            Ok(json) => {
                let out = Artifact::out_dir().join("BENCH_kernel.compare.json");
                if let Err(e) = std::fs::write(&out, json) {
                    eprintln!("failed to write comparison: {e}");
                    std::process::exit(1);
                }
                println!("wrote {}", out.display());
            }
            Err(e) => {
                eprintln!("failed to load committed artifact: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    match artifact.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write artifact: {e}");
            std::process::exit(1);
        }
    }
}
