//! Microbenchmarks of hashing and client-side routing.

use apm_core::keyspace::key_for_seq;
use apm_stores::hashes::{fnv1a64, md5, murmur2_64a};
use apm_stores::routing::{JedisHash, JedisRing, PartitionMap, RdbmsShards, RegionMap, SiteMap, TokenAssignment, TokenRing};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashes");
    group.throughput(Throughput::Elements(1));
    let key = key_for_seq(12345);
    group.bench_function("md5_25b", |b| b.iter(|| black_box(md5(key.as_bytes()))));
    group.bench_function("murmur2_25b", |b| b.iter(|| black_box(murmur2_64a(key.as_bytes(), 0))));
    group.bench_function("fnv1a_25b", |b| b.iter(|| black_box(fnv1a64(key.as_bytes()))));
    group.finish();
}

fn bench_routers(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group.throughput(Throughput::Elements(1));
    let token_ring = TokenRing::new(12, TokenAssignment::Optimal);
    let jedis = JedisRing::new(12, JedisHash::Murmur);
    let rdbms = RdbmsShards::new(12);
    let partitions = PartitionMap::new(12);
    let regions = RegionMap::new(12, 4);
    let sites = SiteMap::new(12);
    let mut i = 0u64;
    group.bench_function("token_ring", |b| {
        b.iter(|| {
            i += 1;
            black_box(token_ring.route(&key_for_seq(i)))
        })
    });
    group.bench_function("jedis_ring", |b| {
        b.iter(|| {
            i += 1;
            black_box(jedis.route(&key_for_seq(i)))
        })
    });
    group.bench_function("rdbms_shards", |b| {
        b.iter(|| {
            i += 1;
            black_box(rdbms.route(&key_for_seq(i)))
        })
    });
    group.bench_function("partition_map", |b| {
        b.iter(|| {
            i += 1;
            black_box(partitions.route(&key_for_seq(i)))
        })
    });
    group.bench_function("region_map", |b| {
        b.iter(|| {
            i += 1;
            black_box(regions.route(&key_for_seq(i)))
        })
    });
    group.bench_function("site_map", |b| {
        b.iter(|| {
            i += 1;
            black_box(sites.route(&key_for_seq(i)))
        })
    });
    group.finish();
}

fn bench_ring_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_build");
    group.sample_size(20);
    group.bench_function("jedis_12_shards", |b| {
        b.iter(|| black_box(JedisRing::new(12, JedisHash::Murmur).shards()))
    });
    group.bench_function("token_ring_random_12", |b| {
        b.iter(|| black_box(TokenRing::new(12, TokenAssignment::Random { seed: 3 }).nodes()))
    });
    group.finish();
}

criterion_group!(benches, bench_hashes, bench_routers, bench_ring_construction);
criterion_main!(benches);
