//! Microbenchmarks of hashing and client-side routing.

use apm_bench::runner::{black_box, Group};
use apm_core::keyspace::key_for_seq;
use apm_stores::hashes::{fnv1a64, md5, murmur2_64a};
use apm_stores::routing::{
    JedisHash, JedisRing, PartitionMap, RdbmsShards, RegionMap, SiteMap, TokenAssignment, TokenRing,
};

fn bench_hashes() {
    let group = Group::new("hashes");
    let key = key_for_seq(12345);
    group.bench("md5_25b", || black_box(md5(key.as_bytes())));
    group.bench("murmur2_25b", || black_box(murmur2_64a(key.as_bytes(), 0)));
    group.bench("fnv1a_25b", || black_box(fnv1a64(key.as_bytes())));
}

fn bench_routers() {
    let group = Group::new("routing");
    let token_ring = TokenRing::new(12, TokenAssignment::Optimal);
    let jedis = JedisRing::new(12, JedisHash::Murmur);
    let rdbms = RdbmsShards::new(12);
    let partitions = PartitionMap::new(12);
    let regions = RegionMap::new(12, 4);
    let sites = SiteMap::new(12);
    let mut i = 0u64;
    group.bench("token_ring", || {
        i += 1;
        black_box(token_ring.route(&key_for_seq(i)))
    });
    group.bench("jedis_ring", || {
        i += 1;
        black_box(jedis.route(&key_for_seq(i)))
    });
    group.bench("rdbms_shards", || {
        i += 1;
        black_box(rdbms.route(&key_for_seq(i)))
    });
    group.bench("partition_map", || {
        i += 1;
        black_box(partitions.route(&key_for_seq(i)))
    });
    group.bench("region_map", || {
        i += 1;
        black_box(regions.route(&key_for_seq(i)))
    });
    group.bench("site_map", || {
        i += 1;
        black_box(sites.route(&key_for_seq(i)))
    });
}

fn bench_ring_construction() {
    let group = Group::new("ring_build");
    group.bench("jedis_12_shards", || {
        black_box(JedisRing::new(12, JedisHash::Murmur).shards())
    });
    group.bench("token_ring_random_12", || {
        black_box(TokenRing::new(12, TokenAssignment::Random { seed: 3 }).nodes())
    });
}

fn main() {
    bench_hashes();
    bench_routers();
    bench_ring_construction();
}
