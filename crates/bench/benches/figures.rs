//! One benchmark per paper figure: runs a reduced-resolution slice of the
//! figure's experiment end to end (load → closed-loop run → statistics).
//!
//! The authoritative tables come from `repro <figN>`; these benches keep
//! every figure's pipeline exercised under `cargo bench` and report how
//! long the harness itself takes per figure-point.

use apm_bench::bench_profile;
use apm_core::driver::Throttle;
use apm_core::workload::Workload;
use apm_harness::experiment::{run_point, run_point_throttled, StoreKind};
use apm_harness::figures::{disk_usage, table1_table};
use apm_sim::ClusterSpec;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Benchmarks one representative point of a node-sweep figure: the
/// figure's workload at 2 nodes for the paper's headline store.
fn sweep_point(c: &mut Criterion, id: &str, workload: Workload, store: StoreKind) {
    let profile = bench_profile();
    c.bench_function(id, |b| {
        b.iter(|| {
            let point = run_point(store, ClusterSpec::cluster_m(), 2, &workload, &profile);
            black_box(point.throughput())
        })
    });
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1", |b| b.iter(|| black_box(table1_table().to_csv().len())));
}

fn bench_workload_figures(c: &mut Criterion) {
    // Figures 3-5 share the Workload R experiment; 6-8 RW; 9-11 W;
    // 12-13 RS; 14 RSW. One store per figure keeps `cargo bench` fast
    // while covering every pipeline.
    sweep_point(c, "fig03_throughput_r", Workload::r(), StoreKind::Cassandra);
    sweep_point(c, "fig04_readlat_r", Workload::r(), StoreKind::Voldemort);
    sweep_point(c, "fig05_writelat_r", Workload::r(), StoreKind::HBase);
    sweep_point(c, "fig06_throughput_rw", Workload::rw(), StoreKind::VoltDb);
    sweep_point(c, "fig07_readlat_rw", Workload::rw(), StoreKind::Redis);
    sweep_point(c, "fig08_writelat_rw", Workload::rw(), StoreKind::Mysql);
    sweep_point(c, "fig09_throughput_w", Workload::w(), StoreKind::Cassandra);
    sweep_point(c, "fig10_readlat_w", Workload::w(), StoreKind::HBase);
    sweep_point(c, "fig11_writelat_w", Workload::w(), StoreKind::Voldemort);
    sweep_point(c, "fig12_throughput_rs", Workload::rs(), StoreKind::Mysql);
    sweep_point(c, "fig13_scanlat_rs", Workload::rs(), StoreKind::Cassandra);
    sweep_point(c, "fig14_throughput_rsw", Workload::rsw(), StoreKind::VoltDb);
}

fn bench_bounded_throughput(c: &mut Criterion) {
    // Figures 15/16: one bounded-load point (70 % of a precomputed max).
    let profile = bench_profile();
    let max = run_point(StoreKind::Cassandra, ClusterSpec::cluster_m(), 2, &Workload::r(), &profile)
        .throughput();
    c.bench_function("fig15_16_bounded_70pct", |b| {
        b.iter(|| {
            let point = run_point_throttled(
                StoreKind::Cassandra,
                ClusterSpec::cluster_m(),
                2,
                &Workload::r(),
                &profile,
                Throttle::TargetOps(max * 0.7),
            );
            black_box(point.throughput())
        })
    });
}

fn bench_disk_usage(c: &mut Criterion) {
    // Figure 17: the load-only experiment.
    let profile = bench_profile();
    let mut group = c.benchmark_group("fig17");
    group.sample_size(10);
    group.bench_function("disk_usage_table", |b| {
        b.iter(|| black_box(disk_usage("fig17", &profile).to_csv().len()))
    });
    group.finish();
}

fn bench_cluster_d(c: &mut Criterion) {
    // Figures 18-20: one Cluster-D point per workload extreme.
    let profile = bench_profile();
    let mut group = c.benchmark_group("fig18_20_cluster_d");
    group.sample_size(10);
    for workload in [Workload::r(), Workload::w()] {
        group.bench_function(format!("cassandra_{}", workload.name), |b| {
            b.iter(|| {
                let point =
                    run_point(StoreKind::Cassandra, ClusterSpec::cluster_d(), 4, &workload, &profile);
                black_box(point.throughput())
            })
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(6))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_table1, bench_workload_figures, bench_bounded_throughput, bench_disk_usage, bench_cluster_d
}
criterion_main!(benches);
