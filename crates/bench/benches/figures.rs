//! One benchmark per paper figure: runs a reduced-resolution slice of the
//! figure's experiment end to end (load → closed-loop run → statistics).
//!
//! The authoritative tables come from `repro <figN>`; these benches keep
//! every figure's pipeline exercised under `cargo bench` and report how
//! long the harness itself takes per figure-point.

use apm_bench::bench_profile;
use apm_bench::runner::{black_box, Group};
use apm_core::driver::Throttle;
use apm_core::workload::Workload;
use apm_harness::experiment::{run_point, run_point_throttled, StoreKind};
use apm_harness::figures::{disk_usage, table1_table};
use apm_sim::ClusterSpec;

/// Benchmarks one representative point of a node-sweep figure: the
/// figure's workload at 2 nodes for the paper's headline store.
fn sweep_point(group: &Group, id: &str, workload: Workload, store: StoreKind) {
    let profile = bench_profile();
    group.bench_slow(id, 3, || {
        let point = run_point(store, ClusterSpec::cluster_m(), 2, &workload, &profile);
        black_box(point.throughput())
    });
}

fn bench_table1(group: &Group) {
    group.bench("table1", || black_box(table1_table().to_csv().len()));
}

fn bench_workload_figures(group: &Group) {
    // Figures 3-5 share the Workload R experiment; 6-8 RW; 9-11 W;
    // 12-13 RS; 14 RSW. One store per figure keeps `cargo bench` fast
    // while covering every pipeline.
    sweep_point(
        group,
        "fig03_throughput_r",
        Workload::r(),
        StoreKind::Cassandra,
    );
    sweep_point(
        group,
        "fig04_readlat_r",
        Workload::r(),
        StoreKind::Voldemort,
    );
    sweep_point(group, "fig05_writelat_r", Workload::r(), StoreKind::HBase);
    sweep_point(
        group,
        "fig06_throughput_rw",
        Workload::rw(),
        StoreKind::VoltDb,
    );
    sweep_point(group, "fig07_readlat_rw", Workload::rw(), StoreKind::Redis);
    sweep_point(group, "fig08_writelat_rw", Workload::rw(), StoreKind::Mysql);
    sweep_point(
        group,
        "fig09_throughput_w",
        Workload::w(),
        StoreKind::Cassandra,
    );
    sweep_point(group, "fig10_readlat_w", Workload::w(), StoreKind::HBase);
    sweep_point(
        group,
        "fig11_writelat_w",
        Workload::w(),
        StoreKind::Voldemort,
    );
    sweep_point(
        group,
        "fig12_throughput_rs",
        Workload::rs(),
        StoreKind::Mysql,
    );
    sweep_point(
        group,
        "fig13_scanlat_rs",
        Workload::rs(),
        StoreKind::Cassandra,
    );
    sweep_point(
        group,
        "fig14_throughput_rsw",
        Workload::rsw(),
        StoreKind::VoltDb,
    );
}

fn bench_bounded_throughput(group: &Group) {
    // Figures 15/16: one bounded-load point (70 % of a precomputed max).
    let profile = bench_profile();
    let max = run_point(
        StoreKind::Cassandra,
        ClusterSpec::cluster_m(),
        2,
        &Workload::r(),
        &profile,
    )
    .throughput();
    group.bench_slow("fig15_16_bounded_70pct", 3, || {
        let point = run_point_throttled(
            StoreKind::Cassandra,
            ClusterSpec::cluster_m(),
            2,
            &Workload::r(),
            &profile,
            Throttle::TargetOps(max * 0.7),
        );
        black_box(point.throughput())
    });
}

fn bench_disk_usage(group: &Group) {
    // Figure 17: the load-only experiment.
    let profile = bench_profile();
    group.bench_slow("fig17_disk_usage_table", 3, || {
        black_box(disk_usage("fig17", &profile).to_csv().len())
    });
}

fn bench_cluster_d(group: &Group) {
    // Figures 18-20: one Cluster-D point per workload extreme.
    let profile = bench_profile();
    for workload in [Workload::r(), Workload::w()] {
        let name = format!("fig18_20_cluster_d_cassandra_{}", workload.name);
        group.bench_slow(&name, 3, || {
            let point = run_point(
                StoreKind::Cassandra,
                ClusterSpec::cluster_d(),
                4,
                &workload,
                &profile,
            );
            black_box(point.throughput())
        });
    }
}

fn main() {
    let group = Group::new("figures");
    bench_table1(&group);
    bench_workload_figures(&group);
    bench_bounded_throughput(&group);
    bench_disk_usage(&group);
    bench_cluster_d(&group);
}
