//! Microbenchmarks of the storage engine substrates.

use apm_bench::runner::{black_box, Group};
use apm_core::keyspace::record_for_seq;
use apm_storage::bloom::Bloom;
use apm_storage::btree::{BTree, BTreeConfig};
use apm_storage::bufferpool::{Access, BufferPool, PageId};
use apm_storage::hashstore::HashStore;
use apm_storage::lsm::{JobKind, LsmConfig, LsmTree};

const N: u64 = 100_000;

fn settle(tree: &mut LsmTree, job: Option<apm_storage::lsm::BackgroundJob>) {
    let mut next = job;
    while let Some(j) = next {
        next = match j.kind {
            JobKind::Flush => tree.complete_flush(j.id),
            JobKind::Compaction => tree.complete_compaction(j.id),
        };
    }
}

fn loaded_lsm() -> LsmTree {
    let mut tree = LsmTree::new(LsmConfig {
        memtable_flush_bytes: 75 * 10_000,
        ..LsmConfig::default()
    });
    for seq in 0..N {
        let r = record_for_seq(seq);
        let (_, job) = tree.insert(r.key, r.fields);
        settle(&mut tree, job);
    }
    tree
}

fn loaded_btree() -> BTree {
    let mut tree = BTree::new(BTreeConfig::default());
    for seq in 0..N {
        let r = record_for_seq(seq);
        tree.insert(r.key, r.fields);
    }
    tree
}

fn bench_lsm() {
    let group = Group::new("lsm");
    let mut tree = loaded_lsm();
    let mut seq = N;
    group.bench("insert", || {
        let r = record_for_seq(seq);
        seq += 1;
        let (receipt, job) = tree.insert(r.key, r.fields);
        settle(&mut tree, job);
        black_box(receipt);
    });
    let mut i = 0u64;
    group.bench("get_hit", || {
        i = (i + 7919) % N;
        let key = record_for_seq(i).key;
        black_box(tree.get(&key).0)
    });
    group.bench("scan50", || {
        i = (i + 7919) % N;
        let key = record_for_seq(i).key;
        black_box(tree.scan(&key, 50).0.len())
    });
}

fn bench_btree() {
    let group = Group::new("btree");
    let mut tree = loaded_btree();
    let mut seq = N;
    group.bench("insert", || {
        let r = record_for_seq(seq);
        seq += 1;
        black_box(tree.insert(r.key, r.fields).1.read.len())
    });
    let mut i = 0u64;
    group.bench("get_hit", || {
        i = (i + 7919) % N;
        let key = record_for_seq(i).key;
        black_box(tree.get(&key).0)
    });
    group.bench("scan50", || {
        i = (i + 7919) % N;
        let key = record_for_seq(i).key;
        black_box(tree.scan(&key, 50).0.len())
    });
}

fn bench_bloom() {
    let group = Group::new("bloom");
    let mut bloom = Bloom::with_capacity(N as usize, 10);
    for seq in 0..N {
        bloom.insert(&record_for_seq(seq).key);
    }
    let mut i = 0u64;
    group.bench("probe_hit", || {
        i = (i + 7919) % N;
        black_box(bloom.may_contain(&record_for_seq(i).key))
    });
    group.bench("probe_miss", || {
        i = (i + 7919) % N;
        black_box(bloom.may_contain(&record_for_seq(N + i).key))
    });
}

fn bench_hashstore() {
    let group = Group::new("hashstore");
    let mut store = HashStore::new(None);
    for seq in 0..N {
        let r = record_for_seq(seq);
        store.insert(r.key, r.fields).unwrap();
    }
    let mut i = 0u64;
    group.bench("get", || {
        i = (i + 7919) % N;
        black_box(store.get(&record_for_seq(i).key).0)
    });
    group.bench("scan50", || {
        i = (i + 7919) % N;
        black_box(store.scan(&record_for_seq(i).key, 50).0.len())
    });
}

fn bench_bufferpool() {
    let group = Group::new("bufferpool");
    let mut pool = BufferPool::new(10_000);
    let mut i = 0u64;
    group.bench("access_thrash", || {
        i = (i + 7919) % 100_000;
        black_box(pool.access(PageId(i), Access::Read).hit)
    });
}

fn main() {
    bench_lsm();
    bench_btree();
    bench_bloom();
    bench_hashstore();
    bench_bufferpool();
}
