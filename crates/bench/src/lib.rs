//! # apm-bench
//!
//! Self-timing benchmarks for the reproduction (the workspace builds
//! offline, so no criterion; [`runner`] provides the harness):
//!
//! - `benches/figures.rs` — one benchmark per paper figure, running a
//!   reduced-resolution version of its experiment end to end (the
//!   full-resolution tables come from the `repro` binary; these benches
//!   track the harness's own performance and act as smoke tests that
//!   every figure's pipeline stays runnable).
//! - `benches/micro_storage.rs` — storage engine hot paths (LSM insert /
//!   get, B+tree insert / get / scan, bloom probes, hash store ops).
//! - `benches/micro_routing.rs` — hashing and client-side routing (MD5,
//!   MurmurHash, token ring, Jedis ring, region map).
//! - `benches/micro_workload.rs` — workload generation, histogram
//!   recording, and raw simulator event throughput.
//!
//! Run with `cargo bench -p apm-bench` (or `--bench micro_storage` etc.).

pub mod runner;

/// A tiny experiment profile shared by the figure benches: small enough
/// that one iteration completes in a fraction of a second.
pub fn bench_profile() -> apm_harness::ExperimentProfile {
    apm_harness::ExperimentProfile {
        scale: 0.0005,
        data_factor: 1.0,
        warmup_secs: 0.2,
        measure_secs: 1.0,
        seed: 1,
    }
}
