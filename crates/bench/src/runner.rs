//! A minimal self-timing bench harness: runs a closure in batches until a
//! wall-clock budget is spent and reports ns/iter. No statistics beyond
//! best-batch and mean — these benches track trends and act as smoke
//! tests, not as a rigorous measurement apparatus.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const BUDGET: Duration = Duration::from_millis(300);
/// Warmup time per benchmark.
const WARMUP: Duration = Duration::from_millis(50);

/// A named group of benchmarks, printed criterion-style as
/// `group/name ... ns/iter`.
pub struct Group {
    name: &'static str,
}

impl Group {
    pub fn new(name: &'static str) -> Group {
        Group { name }
    }

    /// Times `f` (one logical iteration per call), prints the result, and
    /// returns the mean ns/iter so callers can fold it into an artifact.
    pub fn bench<R, F: FnMut() -> R>(&self, name: &str, mut f: F) -> f64 {
        // Warmup + batch-size calibration. Measuring real hardware is the
        // bench harness's job; nothing here feeds back into simulation.
        let start = Instant::now(); // audit:allow(clock)
        let mut calib_iters = 0u64;
        while start.elapsed() < WARMUP {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = WARMUP.as_nanos() as u64 / calib_iters.max(1);
        let batch = (10_000_000 / per_iter.max(1)).clamp(1, 1_000_000);

        let mut batches: Vec<f64> = Vec::new();
        let mut total_iters = 0u64;
        let begin = Instant::now(); // audit:allow(clock)
        while begin.elapsed() < BUDGET {
            let t0 = Instant::now(); // audit:allow(clock)
            for _ in 0..batch {
                black_box(f());
            }
            batches.push(t0.elapsed().as_nanos() as f64 / batch as f64);
            total_iters += batch;
        }
        let mean = batches.iter().sum::<f64>() / batches.len() as f64;
        let best = batches.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{}/{name:<28} {mean:>12.1} ns/iter (best {best:>10.1}, {total_iters} iters)",
            self.name
        );
        mean
    }

    /// Times `f` once per iteration for slow benchmarks (whole-experiment
    /// pipelines); runs a fixed small number of iterations and returns the
    /// mean ms/iter.
    pub fn bench_slow<R, F: FnMut() -> R>(&self, name: &str, iters: u32, mut f: F) -> f64 {
        black_box(f()); // warmup
        let mut times: Vec<f64> = Vec::new();
        for _ in 0..iters.max(1) {
            // Wall-clock by design: this times the real pipeline.
            let t0 = Instant::now(); // audit:allow(clock)
            black_box(f());
            times.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{}/{name:<28} {mean:>12.2} ms/iter (best {best:>10.2}, {} iters)",
            self.name,
            times.len()
        );
        mean
    }
}

/// A committed benchmark artifact: named measurements serialized as a flat
/// JSON object (`BENCH_<name>.json`). The repo commits one per tracked
/// trajectory so speedups and regressions are visible in history.
pub struct Artifact {
    name: &'static str,
    entries: Vec<(String, f64, &'static str)>,
}

impl Artifact {
    pub fn new(name: &'static str) -> Artifact {
        Artifact {
            name,
            entries: Vec::new(),
        }
    }

    /// Records one measurement under `key` with a human-readable unit.
    pub fn record(&mut self, key: &str, value: f64, unit: &'static str) {
        self.entries.push((key.to_string(), value, unit));
    }

    /// Serializes the artifact as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"artifact\": \"{}\",\n", self.name));
        out.push_str("  \"measurements\": {\n");
        for (i, (key, value, unit)) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            out.push_str(&format!(
                "    \"{key}\": {{ \"value\": {value:.3}, \"unit\": \"{unit}\" }}{comma}\n"
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into the `BENCH_OUT` directory if set,
    /// else into the workspace root (the nearest ancestor of the current
    /// directory holding a `Cargo.lock` — `cargo bench` starts benches in
    /// the *package* root, not the workspace root).
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let path = Self::out_dir().join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// The directory artifacts are written to / compared against:
    /// `BENCH_OUT` if set, else the workspace root.
    pub fn out_dir() -> std::path::PathBuf {
        std::env::var_os("BENCH_OUT")
            .map(std::path::PathBuf::from)
            .or_else(|| {
                let mut dir = std::env::current_dir().ok()?;
                loop {
                    if dir.join("Cargo.lock").is_file() {
                        return Some(dir);
                    }
                    if !dir.pop() {
                        return None;
                    }
                }
            })
            .unwrap_or_else(|| std::path::PathBuf::from("."))
    }

    /// Parses a committed `BENCH_<name>.json` back into `(key, value, unit)`
    /// entries. Hand-rolled for exactly the flat shape [`Artifact::to_json`]
    /// emits — one `"key": { "value": N, "unit": "U" }` line per metric —
    /// so the bench crate stays dependency-free.
    pub fn load(path: &std::path::Path) -> std::io::Result<Vec<(String, f64, String)>> {
        let text = std::fs::read_to_string(path)?;
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix('"') else {
                continue;
            };
            let Some((key, rest)) = rest.split_once('"') else {
                continue;
            };
            let Some(value_idx) = rest.find("\"value\":") else {
                continue;
            };
            let after_value = rest[value_idx + "\"value\":".len()..].trim_start();
            let num: String = after_value
                .chars()
                .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
                .collect();
            let Ok(value) = num.parse::<f64>() else {
                continue;
            };
            let unit = rest
                .find("\"unit\":")
                .and_then(|i| rest[i + "\"unit\":".len()..].trim_start().strip_prefix('"'))
                .and_then(|u| u.split_once('"'))
                .map(|(u, _)| u.to_string())
                .unwrap_or_default();
            entries.push((key.to_string(), value, unit));
        }
        Ok(entries)
    }

    /// Diffs this (freshly measured) artifact against the committed
    /// baseline at `path`, printing one line per metric and returning the
    /// comparison rendered as JSON for upload. Metrics whose key ends in
    /// `_per_sec` count up as improvement; everything else (latencies,
    /// wall times) counts down. Never touches the committed file.
    pub fn compare_against(&self, path: &std::path::Path) -> std::io::Result<String> {
        let committed = Self::load(path)?;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"artifact\": \"{}\",\n", self.name));
        out.push_str("  \"comparison\": {\n");
        println!("\n{} vs committed {}:", self.name, path.display());
        for (i, (key, fresh, unit)) in self.entries.iter().enumerate() {
            let base = committed
                .iter()
                .find(|(k, _, _)| k == key)
                .map(|&(_, v, _)| v);
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            match base {
                Some(base) if base != 0.0 => {
                    let delta = (fresh - base) / base * 100.0;
                    let higher_is_better = key.ends_with("_per_sec");
                    let improved = (delta > 0.0) == higher_is_better;
                    let tag = if delta.abs() < 2.0 {
                        "~unchanged"
                    } else if improved {
                        "improved"
                    } else {
                        "regressed"
                    };
                    println!(
                        "  {key:<28} {base:>14.3} -> {fresh:>14.3} {unit:<9} {delta:>+7.1}%  {tag}"
                    );
                    out.push_str(&format!(
                        "    \"{key}\": {{ \"committed\": {base:.3}, \"fresh\": {fresh:.3}, \
                         \"delta_pct\": {delta:.1}, \"unit\": \"{unit}\" }}{comma}\n"
                    ));
                }
                _ => {
                    println!("  {key:<28} {:>14} -> {fresh:>14.3} {unit}", "(new)");
                    out.push_str(&format!(
                        "    \"{key}\": {{ \"committed\": null, \"fresh\": {fresh:.3}, \
                         \"unit\": \"{unit}\" }}{comma}\n"
                    ));
                }
            }
        }
        out.push_str("  }\n}\n");
        Ok(out)
    }
}
