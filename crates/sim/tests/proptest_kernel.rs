//! Randomized-property tests of the discrete-event kernel's invariants,
//! driven by seeded `SplitRng` case loops (the workspace builds offline,
//! so no proptest; the case index is printed on failure).

use apm_core::keyspace::SplitRng;
use apm_sim::kernel::{Engine, Token};
use apm_sim::plan::{Plan, Step};
use apm_sim::time::SimDuration;

const CASES: u64 = 128;

/// A randomly-shaped leaf plan: 1–5 steps, each either a short delay or
/// an acquire of a random resource.
fn random_leaf(rng: &mut SplitRng) -> Vec<(u8, u64)> {
    let len = 1 + rng.next_below(5) as usize;
    (0..len)
        .map(|_| (rng.next_below(2) as u8, 1 + rng.next_below(4_999)))
        .collect()
}

fn build_plan(leaf: &[(u8, u64)], resources: &[apm_sim::ResourceId]) -> Plan {
    let steps = leaf
        .iter()
        .map(|&(kind, amount)| match kind {
            0 => Step::Delay(SimDuration::from_nanos(amount)),
            _ => Step::Acquire {
                resource: resources[(amount % resources.len() as u64) as usize],
                service: SimDuration::from_nanos(amount),
            },
        })
        .collect();
    Plan(steps)
}

#[test]
fn every_submitted_plan_completes_exactly_once() {
    let mut root = SplitRng::new(0x6F6E_6365);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let mut engine = Engine::new();
        let n_resources = 1 + rng.next_below(3) as usize;
        let resources: Vec<_> = (0..n_resources)
            .map(|i| engine.add_resource(format!("r{i}"), 1 + rng.next_below(3) as u32))
            .collect();
        let n_plans = 1 + rng.next_below(39) as usize;
        for i in 0..n_plans {
            let leaf = random_leaf(&mut rng);
            engine.submit(build_plan(&leaf, &resources), Token(i as u64));
        }
        let completions = engine.run_to_idle();
        assert_eq!(completions.len(), n_plans, "case {case}");
        let mut tokens: Vec<u64> = completions.iter().map(|c| c.token.0).collect();
        tokens.sort_unstable();
        let expect: Vec<u64> = (0..n_plans as u64).collect();
        assert_eq!(tokens, expect, "case {case}: every token exactly once");
    }
}

#[test]
fn latency_is_at_least_the_plan_floor() {
    let mut root = SplitRng::new(0x666C_6F6F);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let mut engine = Engine::new();
        let r = engine.add_resource("r", 1);
        let leaf = random_leaf(&mut rng);
        let plan = build_plan(&leaf, &[r]);
        let floor = plan.min_duration();
        engine.submit(plan, Token(0));
        let c = engine.next_completion().expect("completes");
        assert!(
            c.latency() >= floor,
            "case {case}: latency {} below floor {}",
            c.latency(),
            floor
        );
    }
}

#[test]
fn completions_are_time_ordered() {
    let mut root = SplitRng::new(0x6F72_6465);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let mut engine = Engine::new();
        let r = engine.add_resource("r", 2);
        let n_plans = 2 + rng.next_below(28) as usize;
        for i in 0..n_plans {
            let leaf = random_leaf(&mut rng);
            engine.submit(build_plan(&leaf, &[r]), Token(i as u64));
        }
        let completions = engine.run_to_idle();
        for w in completions.windows(2) {
            assert!(
                w[0].finished <= w[1].finished,
                "case {case}: completions out of order"
            );
        }
    }
}

#[test]
fn capacity_one_resource_serialises_work() {
    let mut root = SplitRng::new(0x7365_7269);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        let n_jobs = 2 + rng.next_below(18) as usize;
        let services: Vec<u64> = (0..n_jobs).map(|_| 1 + rng.next_below(9_999)).collect();
        for (i, &svc) in services.iter().enumerate() {
            engine.submit(
                Plan(vec![Step::Acquire {
                    resource: disk,
                    service: SimDuration::from_nanos(svc),
                }]),
                Token(i as u64),
            );
        }
        engine.run_to_idle();
        // A capacity-1 server finishing all jobs takes exactly the sum.
        let total: u64 = services.iter().sum();
        assert_eq!(engine.now().as_nanos(), total, "case {case}");
        assert_eq!(engine.served(disk), services.len() as u64, "case {case}");
        // Fully busy until the end.
        assert!((engine.utilization(disk) - 1.0).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn quorum_latency_never_exceeds_join_all() {
    let mut root = SplitRng::new(0x716A_6F69);
    for case in 0..CASES {
        let mut rng = root.split(case);
        let n_branches = 2 + rng.next_below(6) as usize;
        let branch_delays: Vec<u64> = (0..n_branches)
            .map(|_| 1 + rng.next_below(99_999))
            .collect();
        let need = (1 + rng.next_below(3) as usize).min(branch_delays.len());
        let branches: Vec<Plan> = branch_delays
            .iter()
            .map(|&d| Plan(vec![Step::Delay(SimDuration::from_nanos(d))]))
            .collect();
        let mut all_engine = Engine::new();
        all_engine.submit(Plan::build().join_all(branches.clone()).finish(), Token(0));
        let all = all_engine.next_completion().unwrap().latency();
        let mut q_engine = Engine::new();
        q_engine.submit(Plan::build().join_quorum(branches, need).finish(), Token(0));
        let quorum = q_engine.next_completion().unwrap().latency();
        assert!(
            quorum <= all,
            "case {case}: quorum {quorum} beats join_all {all}"
        );
    }
}
