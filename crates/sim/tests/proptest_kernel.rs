//! Property-based tests of the discrete-event kernel's invariants.

use apm_sim::kernel::{Engine, Token};
use apm_sim::plan::{Plan, Step};
use apm_sim::time::SimDuration;
use proptest::prelude::*;

/// A randomly-shaped plan: sequences of acquires/delays with occasional
/// joins one level deep.
fn leaf_plan() -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((0u8..2, 1u64..5_000), 1..6)
}

fn build_plan(leaf: &[(u8, u64)], resources: &[apm_sim::ResourceId]) -> Plan {
    let steps = leaf
        .iter()
        .map(|&(kind, amount)| match kind {
            0 => Step::Delay(SimDuration::from_nanos(amount)),
            _ => Step::Acquire {
                resource: resources[(amount % resources.len() as u64) as usize],
                service: SimDuration::from_nanos(amount),
            },
        })
        .collect();
    Plan(steps)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn every_submitted_plan_completes_exactly_once(
        leaves in prop::collection::vec(leaf_plan(), 1..40),
        capacities in prop::collection::vec(1u32..4, 1..4),
    ) {
        let mut engine = Engine::new();
        let resources: Vec<_> = capacities
            .iter()
            .enumerate()
            .map(|(i, &c)| engine.add_resource(format!("r{i}"), c))
            .collect();
        for (i, leaf) in leaves.iter().enumerate() {
            engine.submit(build_plan(leaf, &resources), Token(i as u64));
        }
        let completions = engine.run_to_idle();
        prop_assert_eq!(completions.len(), leaves.len());
        let mut tokens: Vec<u64> = completions.iter().map(|c| c.token.0).collect();
        tokens.sort_unstable();
        let expect: Vec<u64> = (0..leaves.len() as u64).collect();
        prop_assert_eq!(tokens, expect, "every token exactly once");
    }

    #[test]
    fn latency_is_at_least_the_plan_floor(
        leaf in leaf_plan(),
    ) {
        let mut engine = Engine::new();
        let r = engine.add_resource("r", 1);
        let plan = build_plan(&leaf, &[r]);
        let floor = plan.min_duration();
        engine.submit(plan, Token(0));
        let c = engine.next_completion().expect("completes");
        prop_assert!(c.latency() >= floor, "latency {} below floor {}", c.latency(), floor);
    }

    #[test]
    fn completions_are_time_ordered(
        leaves in prop::collection::vec(leaf_plan(), 2..30),
    ) {
        let mut engine = Engine::new();
        let r = engine.add_resource("r", 2);
        for (i, leaf) in leaves.iter().enumerate() {
            engine.submit(build_plan(leaf, &[r]), Token(i as u64));
        }
        let completions = engine.run_to_idle();
        for w in completions.windows(2) {
            prop_assert!(w[0].finished <= w[1].finished, "completions out of order");
        }
    }

    #[test]
    fn capacity_one_resource_serialises_work(
        services in prop::collection::vec(1u64..10_000, 2..20),
    ) {
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        for (i, &svc) in services.iter().enumerate() {
            engine.submit(
                Plan(vec![Step::Acquire { resource: disk, service: SimDuration::from_nanos(svc) }]),
                Token(i as u64),
            );
        }
        engine.run_to_idle();
        // A capacity-1 server finishing all jobs takes exactly the sum.
        let total: u64 = services.iter().sum();
        prop_assert_eq!(engine.now().as_nanos(), total);
        prop_assert_eq!(engine.served(disk), services.len() as u64);
        // Fully busy until the end.
        prop_assert!((engine.utilization(disk) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quorum_latency_never_exceeds_join_all(
        branch_delays in prop::collection::vec(1u64..100_000, 2..8),
        need in 1usize..4,
    ) {
        let need = need.min(branch_delays.len());
        let branches: Vec<Plan> = branch_delays
            .iter()
            .map(|&d| Plan(vec![Step::Delay(SimDuration::from_nanos(d))]))
            .collect();
        let mut all_engine = Engine::new();
        all_engine.submit(Plan::build().join_all(branches.clone()).finish(), Token(0));
        let all = all_engine.next_completion().unwrap().latency();
        let mut q_engine = Engine::new();
        q_engine.submit(Plan::build().join_quorum(branches, need).finish(), Token(0));
        let quorum = q_engine.next_completion().unwrap().latency();
        prop_assert!(quorum <= all, "quorum {quorum} beats join_all {all}");
    }
}
