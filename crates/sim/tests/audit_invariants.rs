//! Kernel invariant checks under the `audit` feature.
//!
//! Compile-gated: `cargo test -p apm-sim --features audit`. Each test
//! drives the real engine — not the auditor in isolation — through
//! queueing, quorum joins, deadlines, and fault windows, and lets the
//! embedded `KernelAuditor` verify monotonicity, tie-breaking, op
//! conservation, and fault causality on every event pop. The twice-run
//! tests then assert the event-pop *fingerprints* match across runs:
//! determinism checked at the granularity of single events.
#![cfg(feature = "audit")]

use apm_sim::{Engine, FailMode, Plan, SimDuration, SimTime, Token};

fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

/// A workload with everything that can perturb event ordering: a
/// contended resource, equal-time submissions, quorum joins,
/// fire-and-forget branches, a deadline, and a crash/restore window.
fn drive(engine: &mut Engine) -> Vec<(u64, u64)> {
    let cpu = engine.add_resource("cpu", 2);
    let disk = engine.add_resource("disk", 1);

    // Contended equal-time submissions (exercise FIFO tie-breaking).
    for i in 0..8 {
        engine.submit(Plan::build().acquire(cpu, us(50)).finish(), Token(i));
    }
    // Quorum join with fire-and-forget repair branches.
    for i in 8..12 {
        let branches = vec![
            Plan::build().acquire(disk, us(30)).finish(),
            Plan::build().acquire(cpu, us(20)).finish(),
            Plan::build().acquire(cpu, us(40)).finish(),
        ];
        engine.submit(Plan::build().join_quorum(branches, 2).finish(), Token(i));
        engine.submit(
            Plan::build()
                .join_quorum(vec![Plan::build().acquire(disk, us(5)).finish()], 0)
                .finish(),
            Token(100 + i),
        );
    }
    // Deadline that fires mid-queue.
    engine.submit_with_deadline(
        Plan::build().acquire(disk, us(500)).finish(),
        Token(40),
        us(120),
    );

    // Crash the disk mid-run with a stalled queue, then restore.
    let mut completions: Vec<(u64, u64)> = engine
        .run_until(SimTime(60_000))
        .into_iter()
        .map(|c| (c.token.0, c.finished.as_nanos()))
        .collect();
    engine.fail_resource(disk, FailMode::Stall);
    engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(50));
    completions.extend(
        engine
            .run_until(SimTime(200_000))
            .into_iter()
            .map(|c| (c.token.0, c.finished.as_nanos())),
    );
    engine.restore_resource(disk);
    // Reject-mode crash on the cpu after the restore traffic clears.
    engine.submit(
        Plan::build().delay(us(300)).acquire(cpu, us(10)).finish(),
        Token(60),
    );
    engine.fail_resource(cpu, FailMode::Reject { latency: us(1) });
    completions.extend(
        engine
            .run_to_idle()
            .into_iter()
            .map(|c| (c.token.0, c.finished.as_nanos())),
    );
    engine.restore_resource(cpu);
    completions
}

#[test]
fn invariants_hold_through_faults_joins_and_deadlines() {
    let mut engine = Engine::new();
    let completions = drive(&mut engine);
    assert!(!completions.is_empty());
    let auditor = engine.auditor();
    assert!(auditor.pops() > 0);
    assert_eq!(auditor.issued(), auditor.completed());
    auditor.assert_conserved();
}

#[test]
fn identical_runs_pop_identical_event_sequences() {
    let mut a = Engine::new();
    let mut b = Engine::new();
    let ca = drive(&mut a);
    let cb = drive(&mut b);
    assert_eq!(ca, cb, "completion streams diverged");
    assert_eq!(
        a.auditor().fingerprint(),
        b.auditor().fingerprint(),
        "event-pop sequences diverged between identical runs"
    );
    assert_eq!(a.auditor().pops(), b.auditor().pops());
    a.auditor().assert_conserved();
    b.auditor().assert_conserved();
}

#[test]
fn stalled_work_is_not_counted_complete_until_it_finishes() {
    let mut engine = Engine::new();
    let r = engine.add_resource("r", 1);
    engine.fail_resource(r, FailMode::Stall);
    engine.submit(Plan::build().acquire(r, us(10)).finish(), Token(1));
    // Drain: the op is parked behind the stalled resource.
    engine.run_to_idle();
    assert_eq!(engine.auditor().issued(), 1);
    assert_eq!(engine.auditor().completed(), 0);
    // After restore it finishes and the books balance.
    engine.restore_resource(r);
    engine.run_to_idle();
    engine.auditor().assert_conserved();
}
