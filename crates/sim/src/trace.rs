//! Span tracing for the event kernel (`trace` feature).
//!
//! When the crate is built with `--features trace`, [`crate::Engine`]
//! records every per-op lifecycle transition — submit, enqueue,
//! service-start, service-end, completion, and resource fault
//! transitions — as a [`TraceEvent`] stamped with the *virtual* clock.
//! Events carry the op [`Token`] and the [`ResourceId`] they touched, so
//! the steps of a multi-resource plan (client CPU → NIC → server → back)
//! can be reassembled into nested spans by an exporter (see the Chrome
//! trace-event writer in the harness).
//!
//! Two properties the feature guarantees:
//!
//! * **Bounded memory** — events land in a pre-allocated ring buffer
//!   ([`Tracer::with_capacity`]); when it fills, the oldest events are
//!   overwritten and counted in [`Tracer::dropped`]. No allocation
//!   happens per event.
//! * **Determinism** — every recorded event (including ones later
//!   evicted from the ring) is folded into a rolling
//!   [`Tracer::fingerprint`]; two runs of the same seeded workload must
//!   produce equal fingerprints. The recorder itself only ever reads the
//!   virtual clock, so enabling tracing cannot perturb the simulation.

use crate::kernel::{Outcome, ResourceId, Token};
use crate::time::SimTime;
use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};

/// Default ring capacity: 64 Ki events ≈ 2 MiB.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Which lifecycle transition a [`TraceEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A top-level plan entered the kernel (span open).
    Submit,
    /// A plan step queued behind a busy or stalled resource.
    Enqueue,
    /// A resource began serving a plan step.
    ServiceStart,
    /// A resource finished serving a plan step.
    ServiceEnd,
    /// A top-level plan finished (span close) with its [`Outcome`].
    Complete(Outcome),
    /// A resource failed (crash or blackhole).
    ResourceDown,
    /// A failed resource was restored.
    ResourceRestored,
    /// A resource's service-time multiplier changed (fail-slow).
    Slowdown,
}

impl TraceEventKind {
    /// Small stable code folded into the trace fingerprint.
    fn code(self) -> u64 {
        match self {
            TraceEventKind::Submit => 1,
            TraceEventKind::Enqueue => 2,
            TraceEventKind::ServiceStart => 3,
            TraceEventKind::ServiceEnd => 4,
            TraceEventKind::Complete(Outcome::Ok) => 5,
            TraceEventKind::Complete(Outcome::Failed) => 6,
            TraceEventKind::Complete(Outcome::TimedOut) => 7,
            TraceEventKind::ResourceDown => 8,
            TraceEventKind::ResourceRestored => 9,
            TraceEventKind::Slowdown => 10,
            TraceEventKind::Complete(Outcome::Cancelled) => 11,
        }
    }
}

/// One recorded lifecycle transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual timestamp of the transition.
    pub at: SimTime,
    /// Token of the plan involved; `None` for resource fault transitions.
    pub token: Option<Token>,
    /// Resource involved; `None` for submit/complete (plan-level events).
    pub resource: Option<ResourceId>,
    /// Which transition happened.
    pub kind: TraceEventKind,
}

/// Bounded ring buffer of [`TraceEvent`]s plus a whole-run fingerprint;
/// embedded in [`crate::Engine`] behind the `trace` feature.
#[derive(Clone, Debug)]
pub struct Tracer {
    // Declaration order is the snapshot stream order (audited by S1).
    /// Ring size; `buf` never grows past it.
    capacity: usize,
    /// Ring storage, pre-allocated to `capacity`.
    buf: Vec<TraceEvent>,
    /// Index of the next write when the ring is full.
    head: usize,
    /// Events recorded over the whole run (kept + evicted).
    recorded: u64,
    /// Events overwritten after the ring filled.
    dropped: u64,
    /// FNV-style rolling hash over every recorded event.
    fingerprint: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// Creates a tracer whose ring holds at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Tracer {
            buf: Vec::with_capacity(capacity),
            head: 0,
            recorded: 0,
            dropped: 0,
            fingerprint: 0,
            capacity,
        }
    }

    /// Records one event: folds it into the fingerprint and stores it in
    /// the ring, overwriting the oldest event once full.
    pub(crate) fn record(&mut self, event: TraceEvent) {
        self.recorded += 1;
        self.fingerprint = self.fingerprint.wrapping_mul(0x0000_0100_0000_01b3)
            ^ event.at.as_nanos().wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ event.token.map_or(0, |t| t.0.rotate_left(17))
            ^ event
                .resource
                .map_or(0, |r| u64::from(r.0 + 1).rotate_left(41))
            ^ event.kind.code();
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.dropped += 1;
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events recorded over the run, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted from the ring after it filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Rolling hash over every recorded event (kept *and* evicted).
    /// Equal seeds must yield equal fingerprints across runs.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Serializes the tracer — ring contents, eviction cursor, counters,
    /// and the rolling fingerprint — so a resumed run traces seamlessly.
    pub fn snap_state(&self, w: &mut SnapWriter) {
        w.put(&self.capacity);
        w.put(&self.buf);
        w.put(&self.head);
        w.put_u64(self.recorded);
        w.put_u64(self.dropped);
        w.put_u64(self.fingerprint);
    }

    /// Rebuilds a tracer from [`Tracer::snap_state`] bytes.
    pub fn restore_state(r: &mut SnapReader) -> Result<Tracer, SnapError> {
        let capacity: usize = r.get()?;
        let buf: Vec<TraceEvent> = r.get()?;
        let head: usize = r.get()?;
        if capacity == 0 || buf.len() > capacity || (head != 0 && head >= buf.len()) {
            return Err(SnapError::BadTag {
                what: "Tracer ring",
                tag: head as u64,
            });
        }
        let mut t = Tracer {
            buf,
            head,
            recorded: r.u64()?,
            dropped: r.u64()?,
            fingerprint: r.u64()?,
            capacity,
        };
        t.buf.reserve(capacity - t.buf.len());
        Ok(t)
    }
}

impl Snap for TraceEventKind {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            TraceEventKind::Submit => 1,
            TraceEventKind::Enqueue => 2,
            TraceEventKind::ServiceStart => 3,
            TraceEventKind::ServiceEnd => 4,
            TraceEventKind::Complete(Outcome::Ok) => 5,
            TraceEventKind::Complete(Outcome::Failed) => 6,
            TraceEventKind::Complete(Outcome::TimedOut) => 7,
            TraceEventKind::ResourceDown => 8,
            TraceEventKind::ResourceRestored => 9,
            TraceEventKind::Slowdown => 10,
            TraceEventKind::Complete(Outcome::Cancelled) => 11,
        });
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            1 => Ok(TraceEventKind::Submit),
            2 => Ok(TraceEventKind::Enqueue),
            3 => Ok(TraceEventKind::ServiceStart),
            4 => Ok(TraceEventKind::ServiceEnd),
            5 => Ok(TraceEventKind::Complete(Outcome::Ok)),
            6 => Ok(TraceEventKind::Complete(Outcome::Failed)),
            7 => Ok(TraceEventKind::Complete(Outcome::TimedOut)),
            8 => Ok(TraceEventKind::ResourceDown),
            9 => Ok(TraceEventKind::ResourceRestored),
            10 => Ok(TraceEventKind::Slowdown),
            11 => Ok(TraceEventKind::Complete(Outcome::Cancelled)),
            tag => Err(SnapError::BadTag {
                what: "TraceEventKind",
                tag: u64::from(tag),
            }),
        }
    }
}

impl Snap for TraceEvent {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.at);
        w.put(&self.token);
        w.put(&self.resource);
        w.put(&self.kind);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(TraceEvent {
            at: r.get()?,
            token: r.get()?,
            resource: r.get()?,
            kind: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64, token: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime(ns),
            token: Some(Token(token)),
            resource: None,
            kind,
        }
    }

    #[test]
    fn ring_keeps_newest_events_and_counts_drops() {
        let mut t = Tracer::with_capacity(3);
        for i in 0..5u64 {
            t.record(ev(i, i, TraceEventKind::Submit));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 2);
        let kept: Vec<u64> = t.events().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest events evicted first");
    }

    #[test]
    fn fingerprint_covers_evicted_events() {
        let mut small = Tracer::with_capacity(2);
        let mut large = Tracer::with_capacity(100);
        for i in 0..10u64 {
            let e = ev(i * 7, i, TraceEventKind::Enqueue);
            small.record(e);
            large.record(e);
        }
        assert_eq!(
            small.fingerprint(),
            large.fingerprint(),
            "fingerprint must not depend on ring capacity"
        );
    }

    #[test]
    fn fingerprint_distinguishes_kind_token_resource_and_time() {
        let base = ev(10, 1, TraceEventKind::Submit);
        let variants = [
            ev(11, 1, TraceEventKind::Submit),
            ev(10, 2, TraceEventKind::Submit),
            ev(10, 1, TraceEventKind::Complete(Outcome::Ok)),
            TraceEvent {
                resource: Some(ResourceId(0)),
                ..base
            },
        ];
        let fp = |e: TraceEvent| {
            let mut t = Tracer::with_capacity(4);
            t.record(e);
            t.fingerprint()
        };
        for v in variants {
            assert_ne!(fp(base), fp(v), "{v:?} must hash differently");
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        Tracer::with_capacity(0);
    }
}
