//! Deterministic fault injection: a [`FaultSchedule`] lists node-level
//! fault transitions (crash/restart, disk slowdown, network partition,
//! fail-slow degradation) at fixed simulated times.
//!
//! The schedule itself is pure data — the benchmark runner walks it and
//! translates each [`FaultEvent`] into kernel resource-state changes
//! ([`crate::Engine::fail_resource`] and friends) plus a store-level
//! recovery hook, so that the same schedule replayed against the same
//! seed yields byte-identical results.

use crate::time::{SimDuration, SimTime};
use apm_core::rng::SplitMix64;

/// Client-visible latency of a connection-refused error from a crashed
/// node (TCP reset plus client error handling).
pub const CRASH_ERROR_LATENCY: SimDuration = SimDuration::from_micros(500);

/// A node-level fault transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Process crash: every resource on the node refuses requests until
    /// [`FaultKind::Restart`].
    Crash,
    /// Process restart: resources come back; stores run their recovery
    /// path (WAL replay, hinted handoff, region reassignment).
    Restart,
    /// The node's disk degrades to `factor`× service times (a failing
    /// drive, a background scrub, a noisy neighbour).
    DiskSlow {
        /// Service-time multiplier, ≥ 2 to be observable.
        factor: u32,
    },
    /// The disk recovers to full speed.
    DiskRestore,
    /// Network partition: the node's NIC blackholes traffic (requests
    /// stall; pair the run with an op deadline for client timeouts).
    PartitionStart,
    /// The partition heals; stalled traffic drains.
    PartitionEnd,
    /// Fail-slow: every resource on the node degrades to `factor`×
    /// (thermal throttling, memory pressure) while still answering.
    FailSlow {
        /// Service-time multiplier, ≥ 2 to be observable.
        factor: u32,
    },
    /// The fail-slow degradation ends.
    FailSlowEnd,
}

/// One scheduled fault transition on one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the transition happens.
    pub at: SimTime,
    /// Which cluster node (index into the store's server list).
    pub node: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// An ordered list of fault transitions, applied by the benchmark
/// runner at exact simulated times.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (no faults — the default for every experiment).
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// True when the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events sorted by time (ties keep insertion order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Adds one event, keeping the list time-sorted (stable for ties).
    pub fn push(&mut self, event: FaultEvent) {
        let pos = self.events.partition_point(|e| e.at <= event.at);
        self.events.insert(pos, event);
    }

    /// Node `node` crashes at `at` and restarts at `until`.
    pub fn crash(mut self, node: usize, at: SimTime, until: SimTime) -> FaultSchedule {
        assert!(at < until, "crash must precede restart");
        self.push(FaultEvent {
            at,
            node,
            kind: FaultKind::Crash,
        });
        self.push(FaultEvent {
            at: until,
            node,
            kind: FaultKind::Restart,
        });
        self
    }

    /// Node `node` crashes at `at` and never restarts within the run.
    pub fn crash_forever(mut self, node: usize, at: SimTime) -> FaultSchedule {
        self.push(FaultEvent {
            at,
            node,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Node `node`'s disk runs `factor`× slower between `at` and `until`.
    pub fn slow_disk(
        mut self,
        node: usize,
        at: SimTime,
        until: SimTime,
        factor: u32,
    ) -> FaultSchedule {
        assert!(at < until, "slowdown must precede restore");
        self.push(FaultEvent {
            at,
            node,
            kind: FaultKind::DiskSlow { factor },
        });
        self.push(FaultEvent {
            at: until,
            node,
            kind: FaultKind::DiskRestore,
        });
        self
    }

    /// Node `node` is network-partitioned between `at` and `until`.
    pub fn partition(mut self, node: usize, at: SimTime, until: SimTime) -> FaultSchedule {
        assert!(at < until, "partition must precede heal");
        self.push(FaultEvent {
            at,
            node,
            kind: FaultKind::PartitionStart,
        });
        self.push(FaultEvent {
            at: until,
            node,
            kind: FaultKind::PartitionEnd,
        });
        self
    }

    /// Node `node` fail-slows to `factor`× between `at` and `until`.
    pub fn fail_slow(
        mut self,
        node: usize,
        at: SimTime,
        until: SimTime,
        factor: u32,
    ) -> FaultSchedule {
        assert!(at < until, "degradation must precede recovery");
        self.push(FaultEvent {
            at,
            node,
            kind: FaultKind::FailSlow { factor },
        });
        self.push(FaultEvent {
            at: until,
            node,
            kind: FaultKind::FailSlowEnd,
        });
        self
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Merges another schedule into this one, keeping the combined list
    /// time-sorted (ties keep `self`'s events first, then `other`'s in
    /// order — the same stable rule as [`FaultSchedule::push`]). This is
    /// how composed scenarios are built: sample independent fault
    /// windows, then merge them into one schedule.
    pub fn merge(mut self, other: FaultSchedule) -> FaultSchedule {
        for event in other.events {
            self.push(event);
        }
        self
    }

    /// A cluster-wide "deadline storm": every one of `nodes` fail-slows
    /// to `factor`× between `at` and `until` simultaneously. Paired with
    /// a client-side op deadline, the storm surfaces as a burst of
    /// timeouts rather than a partial slowdown.
    pub fn storm(
        mut self,
        nodes: usize,
        at: SimTime,
        until: SimTime,
        factor: u32,
    ) -> FaultSchedule {
        for node in 0..nodes {
            self = self.fail_slow(node, at, until, factor);
        }
        self
    }

    /// A seeded random schedule: `count` fault windows drawn uniformly
    /// over `(start, end)` and over `nodes`, mixing crashes, disk
    /// slowdowns, partitions, and fail-slow episodes. Deterministic in
    /// `seed`.
    pub fn random(
        seed: u64,
        nodes: usize,
        start: SimTime,
        end: SimTime,
        count: u32,
    ) -> FaultSchedule {
        assert!(nodes > 0, "need at least one node");
        assert!(start < end, "empty fault window");
        let mut rng = SplitMix64::new(seed);
        let mut schedule = FaultSchedule::none();
        let span = end.as_nanos() - start.as_nanos();
        for _ in 0..count {
            let node = (rng.next_u64() % nodes as u64) as usize;
            // Window: begins in the first 3/4 of the span, lasts 1/8–1/4.
            let begin = start.as_nanos() + rng.next_u64() % (span * 3 / 4).max(1);
            let len = span / 8 + rng.next_u64() % (span / 8).max(1);
            let at = SimTime(begin);
            let until = SimTime((begin + len).min(end.as_nanos()));
            if at >= until {
                continue;
            }
            schedule = match rng.next_u64() % 4 {
                0 => schedule.crash(node, at, until),
                1 => schedule.slow_disk(node, at, until, 2 + (rng.next_u64() % 7) as u32),
                2 => schedule.partition(node, at, until),
                _ => schedule.fail_slow(node, at, until, 2 + (rng.next_u64() % 3) as u32),
            };
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    #[test]
    fn builders_keep_events_time_sorted() {
        let schedule = FaultSchedule::none()
            .crash(1, secs(10), secs(20))
            .slow_disk(0, secs(5), secs(15), 4)
            .partition(2, secs(12), secs(13));
        let times: Vec<u64> = schedule
            .events()
            .iter()
            .map(|e| e.at.as_nanos() / 1_000_000_000)
            .collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(schedule.events().len(), 6);
    }

    #[test]
    fn crash_window_has_matching_restart() {
        let schedule = FaultSchedule::none().crash(3, secs(10), secs(25));
        assert_eq!(
            schedule.events()[0],
            FaultEvent {
                at: secs(10),
                node: 3,
                kind: FaultKind::Crash
            }
        );
        assert_eq!(
            schedule.events()[1],
            FaultEvent {
                at: secs(25),
                node: 3,
                kind: FaultKind::Restart
            }
        );
    }

    #[test]
    fn random_schedules_are_deterministic_in_the_seed() {
        let a = FaultSchedule::random(42, 4, secs(5), secs(60), 6);
        let b = FaultSchedule::random(42, 4, secs(5), secs(60), 6);
        let c = FaultSchedule::random(43, 4, secs(5), secs(60), 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
        for event in a.events() {
            assert!(event.node < 4);
            assert!(event.at >= secs(5) && event.at <= secs(60));
        }
    }

    #[test]
    #[should_panic(expected = "precede")]
    fn inverted_crash_window_panics() {
        let _ = FaultSchedule::none().crash(0, secs(20), secs(10));
    }

    #[test]
    fn merge_interleaves_and_stays_sorted() {
        let a = FaultSchedule::none().crash(0, secs(10), secs(20));
        let b = FaultSchedule::none().partition(1, secs(5), secs(15));
        let merged = a.merge(b);
        assert_eq!(merged.len(), 4);
        let times: Vec<u64> = merged
            .events()
            .iter()
            .map(|e| e.at.as_nanos() / 1_000_000_000)
            .collect();
        assert_eq!(times, vec![5, 10, 15, 20]);
        // Merging is order-sensitive only for exact ties; disjoint
        // windows commute.
        let a2 = FaultSchedule::none().crash(0, secs(10), secs(20));
        let b2 = FaultSchedule::none().partition(1, secs(5), secs(15));
        assert_eq!(merged, b2.merge(a2));
    }

    #[test]
    fn storm_degrades_every_node_in_lockstep() {
        let schedule = FaultSchedule::none().storm(3, secs(10), secs(12), 16);
        assert_eq!(schedule.len(), 6);
        let starts: Vec<usize> = schedule
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::FailSlow { factor: 16 })
            .map(|e| e.node)
            .collect();
        assert_eq!(starts, vec![0, 1, 2]);
        let ends = schedule
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::FailSlowEnd)
            .count();
        assert_eq!(ends, 3);
    }
}
