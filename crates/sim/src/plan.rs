//! Operation plans: the work description language of the simulator.
//!
//! A [`Plan`] is the physical footprint of one logical action — a client
//! request, a memtable flush, a compaction — expressed as a sequence of
//! steps. Steps either occupy a queued resource (a CPU core pool, a disk,
//! a NIC, an RPC handler pool) for a service time, wait for a pure delay,
//! align to a periodic epoch (group commit), or fork into parallel
//! branches with a completion quorum (replication fan-out).
//!
//! Storage engines build plans from their cost receipts; the kernel in
//! [`crate::kernel`] executes them under FIFO queueing, which is where
//! latency beyond raw service time comes from.

use crate::kernel::ResourceId;
use crate::time::SimDuration;
use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};

/// One step of a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Wait for a slot on `resource` (FIFO), then hold it for `service`.
    Acquire {
        resource: ResourceId,
        service: SimDuration,
    },
    /// Pure delay with no resource contention (e.g. switch latency).
    Delay(SimDuration),
    /// Wait until the next boundary of a periodic epoch of length
    /// `period`, then a further `extra` — models group commit: a write
    /// joining a commit group waits for the group's sync.
    AlignTo {
        period: SimDuration,
        extra: SimDuration,
    },
    /// Execute `branches` in parallel; proceed when `need` of them have
    /// completed. Remaining branches keep running (and keep occupying
    /// resources) in the background — quorum semantics.
    Join { branches: Vec<Plan>, need: usize },
    /// Unconditional failure: the plan aborts with a failed outcome after
    /// `latency`. Stores use this when the refusal decision was already
    /// made at plan time (e.g. every replica was down when the request
    /// was routed), so the result cannot be undone by resources coming
    /// back between planning and execution.
    Fail { latency: SimDuration },
}

/// A sequence of steps executed in order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Plan(pub Vec<Step>);

impl Plan {
    /// The empty plan (completes immediately).
    pub fn empty() -> Plan {
        Plan(Vec::new())
    }

    /// Starts a builder.
    pub fn build() -> PlanBuilder {
        PlanBuilder { steps: Vec::new() }
    }

    /// Number of steps, counting nested branches.
    pub fn total_steps(&self) -> usize {
        self.0
            .iter()
            .map(|s| match s {
                Step::Join { branches, .. } => {
                    1 + branches.iter().map(Plan::total_steps).sum::<usize>()
                }
                Step::Acquire { .. }
                | Step::Delay(_)
                | Step::AlignTo { .. }
                | Step::Fail { .. } => 1,
            })
            .sum()
    }

    /// Lower bound on the plan's duration assuming zero queueing: the sum
    /// of service times and delays along the longest needed path. Useful
    /// for calibration sanity checks and tests.
    pub fn min_duration(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for step in &self.0 {
            total += match step {
                Step::Acquire { service, .. } => *service,
                Step::Delay(d) => *d,
                // Best case: the epoch boundary is immediate.
                Step::AlignTo { extra, .. } => *extra,
                Step::Join { branches, need } => {
                    let mut durations: Vec<SimDuration> =
                        branches.iter().map(Plan::min_duration).collect();
                    durations.sort_unstable();
                    // The `need`-th fastest branch gates progress.
                    if *need == 0 || branches.is_empty() {
                        SimDuration::ZERO
                    } else {
                        durations[(*need).min(durations.len()) - 1]
                    }
                }
                // The abort ends the plan after its error latency.
                Step::Fail { latency } => return total + *latency,
            };
        }
        total
    }
}

impl Snap for Step {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Step::Acquire { resource, service } => {
                w.put_u8(0);
                w.put(resource);
                w.put(service);
            }
            Step::Delay(d) => {
                w.put_u8(1);
                w.put(d);
            }
            Step::AlignTo { period, extra } => {
                w.put_u8(2);
                w.put(period);
                w.put(extra);
            }
            Step::Join { branches, need } => {
                w.put_u8(3);
                w.put(branches);
                w.put(need);
            }
            Step::Fail { latency } => {
                w.put_u8(4);
                w.put(latency);
            }
        }
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Step::Acquire {
                resource: r.get()?,
                service: r.get()?,
            }),
            1 => Ok(Step::Delay(r.get()?)),
            2 => Ok(Step::AlignTo {
                period: r.get()?,
                extra: r.get()?,
            }),
            3 => Ok(Step::Join {
                branches: r.get()?,
                need: r.get()?,
            }),
            4 => Ok(Step::Fail { latency: r.get()? }),
            tag => Err(SnapError::BadTag {
                what: "Step",
                tag: u64::from(tag),
            }),
        }
    }
}

impl Snap for Plan {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.0);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Plan(r.get()?))
    }
}

/// Fluent builder for plans.
#[derive(Clone, Debug)]
pub struct PlanBuilder {
    steps: Vec<Step>,
}

impl PlanBuilder {
    /// Occupies `resource` for `service` after FIFO queueing.
    pub fn acquire(mut self, resource: ResourceId, service: SimDuration) -> Self {
        self.steps.push(Step::Acquire { resource, service });
        self
    }

    /// Occupies `resource` only if `service` is non-zero (keeps plans
    /// small for engines that report zero-cost phases).
    pub fn acquire_nonzero(self, resource: ResourceId, service: SimDuration) -> Self {
        if service == SimDuration::ZERO {
            self
        } else {
            self.acquire(resource, service)
        }
    }

    /// Pure delay.
    pub fn delay(mut self, d: SimDuration) -> Self {
        if d != SimDuration::ZERO {
            self.steps.push(Step::Delay(d));
        }
        self
    }

    /// Group-commit alignment.
    pub fn align_to(mut self, period: SimDuration, extra: SimDuration) -> Self {
        self.steps.push(Step::AlignTo { period, extra });
        self
    }

    /// Parallel fan-out requiring all branches.
    pub fn join_all(mut self, branches: Vec<Plan>) -> Self {
        let need = branches.len();
        self.steps.push(Step::Join { branches, need });
        self
    }

    /// Parallel fan-out requiring a quorum of `need` branches.
    pub fn join_quorum(mut self, branches: Vec<Plan>, need: usize) -> Self {
        assert!(need <= branches.len(), "quorum larger than branch count");
        self.steps.push(Step::Join { branches, need });
        self
    }

    /// Finishes the plan.
    pub fn finish(self) -> Plan {
        Plan(self.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: ResourceId = ResourceId(0);

    #[test]
    fn builder_produces_expected_steps() {
        let plan = Plan::build()
            .acquire(R, SimDuration::from_micros(10))
            .delay(SimDuration::from_micros(5))
            .finish();
        assert_eq!(plan.0.len(), 2);
        assert_eq!(plan.min_duration(), SimDuration::from_micros(15));
    }

    #[test]
    fn zero_cost_steps_are_elided() {
        let plan = Plan::build()
            .acquire_nonzero(R, SimDuration::ZERO)
            .delay(SimDuration::ZERO)
            .finish();
        assert!(plan.0.is_empty());
    }

    #[test]
    fn join_all_waits_for_slowest_branch() {
        let fast = Plan::build().delay(SimDuration::from_micros(1)).finish();
        let slow = Plan::build().delay(SimDuration::from_micros(9)).finish();
        let plan = Plan::build()
            .join_all(vec![fast.clone(), slow.clone()])
            .finish();
        assert_eq!(plan.min_duration(), SimDuration::from_micros(9));
        let quorum = Plan::build().join_quorum(vec![fast, slow], 1).finish();
        assert_eq!(quorum.min_duration(), SimDuration::from_micros(1));
    }

    #[test]
    fn total_steps_counts_nested_branches() {
        let inner = Plan::build().delay(SimDuration(1)).finish();
        let plan = Plan::build().join_all(vec![inner.clone(), inner]).finish();
        assert_eq!(plan.total_steps(), 3);
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn oversized_quorum_panics() {
        let _ = Plan::build().join_quorum(vec![Plan::empty()], 2);
    }
}
