//! Virtual time: nanosecond-resolution instants and durations.
//!
//! Newtypes keep simulated time from being confused with wall-clock time
//! and give the arithmetic saturating semantics (a simulation must never
//! wrap).

use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier` (saturating).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from floating-point seconds (saturating at ~584
    /// simulated years; negative inputs clamp to zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e9).min(u64::MAX as f64) as u64)
    }

    /// Builds a duration from floating-point microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration::from_secs_f64(us / 1e6)
    }

    /// Duration in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in floating-point milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiplication by an integer factor.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Snap for SimTime {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(SimTime(r.u64()?))
    }
}

impl Snap for SimDuration {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(SimDuration(r.u64()?))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime(u64::MAX - 10) + SimDuration(100);
        assert_eq!(t.0, u64::MAX);
        assert_eq!(SimDuration(5) - SimDuration(10), SimDuration::ZERO);
        assert_eq!(SimTime(5).since(SimTime(10)), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn since_measures_elapsed_time() {
        let start = SimTime(1_000);
        let end = start + SimDuration::from_micros(3);
        assert_eq!(end.since(start), SimDuration(3_000));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs_f64(1.5).to_string(), "1.500s");
    }
}
