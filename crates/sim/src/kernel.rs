//! The discrete-event kernel: resources, plan execution, virtual clock.
//!
//! The kernel owns a future-event list and a set of FIFO multi-server
//! resources. Logical actions are submitted as [`Plan`]s tagged with a
//! [`Token`]; the kernel executes their steps under queueing and emits a
//! [`Completion`] when the final step finishes. The benchmark driver
//! interleaves with the kernel through [`Engine::next_completion`]: pull a
//! completion, record its latency, let the workload generator and store
//! produce the next plan, submit, repeat — a closed loop.
//!
//! Everything is deterministic: ties in event time are broken by event
//! sequence number (submission order).

use crate::arena::{FlatStep, PlanArena, PlanId};
use crate::plan::Plan;
use crate::queue::CalendarQueue;
use crate::time::{SimDuration, SimTime};
use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// Identifies a resource registered with [`Engine::add_resource`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub u32);

/// Opaque tag identifying a submitted plan; returned in its [`Completion`].
/// The driver encodes client ids and background-job ids in tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub u64);

/// Terminal status of a completed plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Every step ran to completion.
    #[default]
    Ok,
    /// A step hit a failed resource, or a join's quorum became
    /// impossible after branch failures.
    Failed,
    /// The plan's deadline elapsed before it finished.
    TimedOut,
    /// The submitter revoked the plan via [`Engine::cancel`] before it
    /// finished (e.g. a hedged read whose sibling won).
    Cancelled,
}

impl Outcome {
    /// True when the plan ran to completion.
    pub fn is_ok(self) -> bool {
        self == Outcome::Ok
    }
}

/// How a failed resource treats requests (see [`Engine::fail_resource`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailMode {
    /// Requests are refused: the plan aborts with [`Outcome::Failed`]
    /// after `latency` (models a connection-refused / error response).
    /// Requests already queued at fail time are refused immediately.
    Reject {
        /// Time the client spends learning of the failure.
        latency: SimDuration,
    },
    /// Requests hang in the queue until the resource is restored
    /// (models a network blackhole; pair with
    /// [`Engine::submit_with_deadline`] for client-side timeouts).
    Stall,
}

/// A finished top-level plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The token the plan was submitted with.
    pub token: Token,
    /// When the plan was submitted (start of its latency window).
    pub submitted: SimTime,
    /// When the final step finished.
    pub finished: SimTime,
    /// Whether the plan succeeded, failed, or timed out.
    pub outcome: Outcome,
}

impl Completion {
    /// End-to-end latency of the plan.
    pub fn latency(&self) -> SimDuration {
        self.finished.since(self.submitted)
    }
}

/// A FIFO multi-server queueing station.
#[derive(Debug)]
struct Resource {
    name: String,
    capacity: u32,
    busy: u32,
    /// Waiting queue: exec, its service demand, and when it enqueued.
    waiting: VecDeque<(ExecRef, SimDuration, SimTime)>,
    /// Accumulated server-busy nanoseconds (for utilisation reports).
    busy_ns: u128,
    /// Accumulated queue-wait nanoseconds of requests that reached
    /// service (aborted/stalled-forever waits are not attributed).
    waited_ns: u128,
    served: u64,
    /// Fault state: `Some(mode)` while the resource is down.
    down: Option<FailMode>,
    /// Service-time multiplier (1 = healthy; >1 = fail-slow / degraded).
    slowdown: u32,
}

/// Reference to an execution slot, protected by a generation counter so
/// stale references (e.g. a quorum parent that already resumed) are inert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ExecRef {
    idx: u32,
    generation: u32,
}

/// Handle to a submitted top-level plan, returned by the `submit*`
/// family. Lets the submitter [`Engine::cancel`] the plan later; like the
/// internal exec references it is generation-protected, so a handle to a
/// plan that already completed is inert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanHandle(ExecRef);

/// A plan pre-interned in the engine's arena — the simulator's analogue
/// of a prepared statement. Submitting one via
/// [`Engine::submit_prepared`] skips the per-submission structural hash
/// and equality walk that [`Engine::submit`] pays to deduplicate plan
/// shapes. The handle owns one arena reference and stays valid for the
/// engine's lifetime, but a [`Engine::restore_state`] rebuilds the arena
/// and invalidates it — re-prepare after restoring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PreparedPlan(PlanId);

#[derive(Debug)]
struct Exec {
    /// The (arena-interned) plan this exec runs; the exec owns one
    /// reference, released when the slot is freed.
    plan: PlanId,
    pc: u32,
    token: Token,
    submitted: SimTime,
    parent: Option<ExecRef>,
    /// For a pending Join: number of child successes still required.
    join_need: u32,
    /// For a pending Join: number of children still running.
    join_pending: u32,
    /// Sticky failure status; reported in the [`Completion`].
    outcome: Outcome,
    generation: u32,
    live: bool,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// Re-run the exec's step loop (after Delay/AlignTo or at submission).
    Resume(ExecRef),
    /// An Acquire finished: release one slot of the resource, then resume.
    AcquireDone(ExecRef, ResourceId),
    /// A deadline set by `submit_with_deadline` elapsed.
    Timeout(ExecRef),
}

/// The future-event list. Production engines always run the calendar
/// queue; the retired binary heap survives behind `#[cfg(test)]` as the
/// oracle for the queue equivalence suite (see `crate::queue`).
#[derive(Debug)]
enum EventQueue {
    Calendar(CalendarQueue<Event>),
    #[cfg(test)]
    Reference(crate::queue::ReferenceQueue<Event>),
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::Calendar(CalendarQueue::new())
    }
}

impl EventQueue {
    #[inline]
    fn push(&mut self, at: SimTime, seq: u64, event: Event) {
        match self {
            EventQueue::Calendar(q) => q.push(at, seq, event),
            #[cfg(test)]
            EventQueue::Reference(q) => q.push(at, seq, event),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, u64, Event)> {
        match self {
            EventQueue::Calendar(q) => q.pop(),
            #[cfg(test)]
            EventQueue::Reference(q) => q.pop(),
        }
    }

    #[inline]
    fn peek(&self) -> Option<(SimTime, u64)> {
        match self {
            EventQueue::Calendar(q) => q.peek(),
            #[cfg(test)]
            EventQueue::Reference(q) => q.peek(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            EventQueue::Calendar(q) => q.is_empty(),
            #[cfg(test)]
            EventQueue::Reference(q) => q.is_empty(),
        }
    }

    fn sorted_entries(&self) -> Vec<(SimTime, u64, Event)> {
        match self {
            EventQueue::Calendar(q) => q.sorted_entries(),
            #[cfg(test)]
            EventQueue::Reference(q) => q.sorted_entries(),
        }
    }

    fn rebuild(&mut self, now: SimTime, entries: Vec<(SimTime, u64, Event)>) {
        match self {
            EventQueue::Calendar(q) => q.rebuild(now, entries),
            #[cfg(test)]
            EventQueue::Reference(q) => q.rebuild(now, entries),
        }
    }
}

/// The simulation engine.
#[derive(Debug, Default)]
pub struct Engine {
    now: SimTime,
    seq: u64,
    /// Future-event list; events are stored inline (they are `Copy`), so
    /// a pop is a bucket read with no payload-slab indirection.
    queue: EventQueue,
    resources: Vec<Resource>,
    /// Flat plan storage shared by all execs; see `crate::arena`.
    arena: PlanArena,
    execs: Vec<Exec>,
    free_execs: Vec<u32>,
    ready: VecDeque<ExecRef>,
    completions: VecDeque<Completion>,
    /// Runtime invariant checker (monotonicity, tie-breaks, op
    /// conservation, fault causality) — see `crate::audit`.
    #[cfg(feature = "audit")]
    auditor: crate::audit::KernelAuditor,
    /// Span recorder (bounded ring + run fingerprint) — see `crate::trace`.
    #[cfg(feature = "trace")]
    tracer: crate::trace::Tracer,
}

impl Engine {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Engine::default()
    }

    /// An engine whose future-event list is the retired binary-heap
    /// reference implementation — the oracle half of the queue
    /// equivalence suite.
    #[cfg(test)]
    fn with_reference_queue() -> Self {
        Engine {
            queue: EventQueue::Reference(crate::queue::ReferenceQueue::new()),
            ..Engine::default()
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The runtime invariant checker (only with the `audit` feature).
    /// Its fingerprint lets callers cross-check two runs event-by-event.
    #[cfg(feature = "audit")]
    pub fn auditor(&self) -> &crate::audit::KernelAuditor {
        &self.auditor
    }

    /// The span recorder (only with the `trace` feature).
    #[cfg(feature = "trace")]
    pub fn tracer(&self) -> &crate::trace::Tracer {
        &self.tracer
    }

    /// Replaces the span recorder with an empty one holding at most
    /// `capacity` events (only with the `trace` feature). Call before the
    /// run of interest; the fingerprint restarts from zero.
    #[cfg(feature = "trace")]
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.tracer = crate::trace::Tracer::with_capacity(capacity);
    }

    /// Records a plan-level trace event for `exec` at the current time.
    /// Stale exec refs (e.g. a timed-out plan whose service completes
    /// later) are recorded without a token.
    #[cfg(feature = "trace")]
    fn trace_op(
        &mut self,
        exec: ExecRef,
        resource: Option<ResourceId>,
        kind: crate::trace::TraceEventKind,
    ) {
        let token = self
            .is_current(exec)
            .then(|| self.execs[exec.idx as usize].token);
        self.tracer.record(crate::trace::TraceEvent {
            at: self.now,
            token,
            resource,
            kind,
        });
    }

    /// Records a resource fault-transition trace event.
    #[cfg(feature = "trace")]
    fn trace_resource(&mut self, resource: ResourceId, kind: crate::trace::TraceEventKind) {
        self.tracer.record(crate::trace::TraceEvent {
            at: self.now,
            token: None,
            resource: Some(resource),
            kind,
        });
    }

    /// Registers a FIFO resource with `capacity` parallel servers.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: u32) -> ResourceId {
        assert!(capacity > 0, "resource capacity must be positive");
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource {
            name: name.into(),
            capacity,
            busy: 0,
            waiting: VecDeque::new(),
            busy_ns: 0,
            waited_ns: 0,
            served: 0,
            down: None,
            slowdown: 1,
        });
        id
    }

    /// Marks `resource` as failed. With [`FailMode::Reject`] every queued
    /// and future request aborts its plan with [`Outcome::Failed`]; with
    /// [`FailMode::Stall`] requests wait (forever, absent a deadline)
    /// until [`Engine::restore_resource`]. Requests already *in service*
    /// finish normally — they left the node before it died.
    pub fn fail_resource(&mut self, resource: ResourceId, mode: FailMode) {
        #[cfg(feature = "trace")]
        self.trace_resource(resource, crate::trace::TraceEventKind::ResourceDown);
        let r = &mut self.resources[resource.0 as usize];
        r.down = Some(mode);
        if let FailMode::Reject { latency } = mode {
            let waiting: Vec<(ExecRef, SimDuration, SimTime)> = r.waiting.drain(..).collect();
            for (exec, _service, _enqueued) in waiting {
                self.abort_exec(exec, Outcome::Failed, latency);
            }
        }
    }

    /// Clears `resource`'s fault state and starts serving any stalled
    /// queue entries.
    pub fn restore_resource(&mut self, resource: ResourceId) {
        #[cfg(feature = "trace")]
        self.trace_resource(resource, crate::trace::TraceEventKind::ResourceRestored);
        self.resources[resource.0 as usize].down = None;
        self.kick(resource);
    }

    /// True while `resource` is failed.
    pub fn resource_is_down(&self, resource: ResourceId) -> bool {
        self.resources[resource.0 as usize].down.is_some()
    }

    /// Multiplies `resource`'s service times by `factor` (fail-slow /
    /// degraded hardware). `factor == 1` restores full speed. Applies to
    /// services that start after the call.
    ///
    /// # Panics
    /// Panics if `factor` is zero.
    pub fn set_resource_slowdown(&mut self, resource: ResourceId, factor: u32) {
        assert!(factor > 0, "slowdown factor must be positive");
        #[cfg(feature = "trace")]
        self.trace_resource(resource, crate::trace::TraceEventKind::Slowdown);
        self.resources[resource.0 as usize].slowdown = factor;
    }

    /// Current service-time multiplier of `resource`.
    pub fn resource_slowdown(&self, resource: ResourceId) -> u32 {
        self.resources[resource.0 as usize].slowdown
    }

    /// Starts service for `exec` on `resource`. The caller has already
    /// accounted for the server slot in `busy`.
    fn begin_service(&mut self, resource: ResourceId, exec: ExecRef, service: SimDuration) {
        let r = &mut self.resources[resource.0 as usize];
        // Fault causality: in-service requests may outlive a crash, but
        // a down node must never *start* serving new work.
        #[cfg(feature = "audit")]
        assert!(
            r.down.is_none(),
            "kernel audit: service began on failed resource `{}`",
            r.name
        );
        let scaled =
            SimDuration::from_nanos(service.as_nanos().saturating_mul(u64::from(r.slowdown)));
        r.busy_ns += u128::from(scaled.as_nanos());
        let at = self.now + scaled;
        self.schedule(at, Event::AcquireDone(exec, resource));
        #[cfg(feature = "trace")]
        self.trace_op(
            exec,
            Some(resource),
            crate::trace::TraceEventKind::ServiceStart,
        );
    }

    /// Fills free server slots from the waiting queue (after a restore).
    fn kick(&mut self, resource: ResourceId) {
        loop {
            let r = &mut self.resources[resource.0 as usize];
            if r.busy >= r.capacity || r.down.is_some() {
                return;
            }
            let Some((next, service, enqueued)) = r.waiting.pop_front() else {
                return;
            };
            r.busy += 1;
            r.waited_ns += u128::from(self.now.since(enqueued).as_nanos());
            self.begin_service(resource, next, service);
        }
    }

    /// Aborts `exec`: skips its remaining steps and finishes it with
    /// `outcome` after `after` (the time the client spends learning of
    /// the failure).
    fn abort_exec(&mut self, exec: ExecRef, outcome: Outcome, after: SimDuration) {
        debug_assert!(self.is_current(exec));
        let end = self.arena.step_len(self.execs[exec.idx as usize].plan);
        let slot = &mut self.execs[exec.idx as usize];
        slot.outcome = outcome;
        slot.pc = end;
        let at = self.now + after;
        self.schedule(at, Event::Resume(exec));
    }

    /// Fraction of `resource`'s total server-time spent busy so far.
    pub fn utilization(&self, resource: ResourceId) -> f64 {
        let r = &self.resources[resource.0 as usize];
        let denom = self.now.as_nanos() as u128 * u128::from(r.capacity);
        if denom == 0 {
            0.0
        } else {
            r.busy_ns as f64 / denom as f64
        }
    }

    /// Number of requests `resource` has finished serving.
    pub fn served(&self, resource: ResourceId) -> u64 {
        self.resources[resource.0 as usize].served
    }

    /// Number of resources registered so far. Resource ids are dense:
    /// `ResourceId(0..count)` are all valid.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of parallel servers `resource` was registered with.
    pub fn resource_capacity(&self, resource: ResourceId) -> u32 {
        self.resources[resource.0 as usize].capacity
    }

    /// Accumulated server-busy nanoseconds of `resource` (the numerator
    /// of [`Engine::utilization`]; pure service time, excluding queueing).
    pub fn service_ns(&self, resource: ResourceId) -> u128 {
        self.resources[resource.0 as usize].busy_ns
    }

    /// Accumulated nanoseconds requests spent waiting in `resource`'s
    /// queue before reaching service. Waits that never reach service
    /// (aborted by a crash, still queued) are not attributed.
    pub fn queue_wait_ns(&self, resource: ResourceId) -> u128 {
        self.resources[resource.0 as usize].waited_ns
    }

    /// Name a resource was registered with.
    pub fn resource_name(&self, resource: ResourceId) -> &str {
        &self.resources[resource.0 as usize].name
    }

    /// Current queue length (waiting, not in service) at `resource`.
    pub fn queue_len(&self, resource: ResourceId) -> usize {
        self.resources[resource.0 as usize].waiting.len()
    }

    /// Submits a plan now.
    pub fn submit(&mut self, plan: Plan, token: Token) -> PlanHandle {
        self.submit_at_ref(self.now, &plan, token)
    }

    /// Submits a plan now without taking ownership — the zero-copy form
    /// of [`Engine::submit`] for closed-loop drivers that re-submit a
    /// template plan. The kernel interns by content either way, so the
    /// caller's clone only feeds the intern walk and is dropped.
    pub fn submit_ref(&mut self, plan: &Plan, token: Token) -> PlanHandle {
        self.submit_at_ref(self.now, plan, token)
    }

    /// Submits a plan to start at `start` (must not be in the past).
    ///
    /// # Panics
    /// Panics if `start` is before the current simulated time.
    pub fn submit_at(&mut self, start: SimTime, plan: Plan, token: Token) -> PlanHandle {
        self.submit_at_ref(start, &plan, token)
    }

    /// Interns `plan` once and returns a reusable [`PreparedPlan`]
    /// handle, the cheap-submission path for closed-loop drivers that
    /// re-issue one template shape at high rate.
    pub fn prepare(&mut self, plan: &Plan) -> PreparedPlan {
        PreparedPlan(self.arena.intern(plan))
    }

    /// Submits a prepared plan now; identical to [`Engine::submit`] with
    /// the plan the handle was prepared from, minus the intern walk.
    ///
    /// # Panics
    /// Panics if the handle is stale (prepared before a
    /// [`Engine::restore_state`]).
    pub fn submit_prepared(&mut self, prepared: PreparedPlan, token: Token) -> PlanHandle {
        assert!(
            self.arena.is_current(prepared.0),
            "stale PreparedPlan: re-prepare after restore_state"
        );
        self.arena.retain(prepared.0);
        let exec = self.alloc_exec(prepared.0, token, self.now, None);
        self.schedule(self.now, Event::Resume(exec));
        #[cfg(feature = "trace")]
        self.tracer.record(crate::trace::TraceEvent {
            at: self.now,
            token: Some(token),
            resource: None,
            kind: crate::trace::TraceEventKind::Submit,
        });
        PlanHandle(exec)
    }

    /// By-reference form of [`Engine::submit_at`].
    ///
    /// # Panics
    /// Panics if `start` is before the current simulated time.
    pub fn submit_at_ref(&mut self, start: SimTime, plan: &Plan, token: Token) -> PlanHandle {
        assert!(start >= self.now, "cannot submit into the past");
        let plan = self.arena.intern(plan);
        let exec = self.alloc_exec(plan, token, start, None);
        self.schedule(start, Event::Resume(exec));
        #[cfg(feature = "trace")]
        self.tracer.record(crate::trace::TraceEvent {
            at: start,
            token: Some(token),
            resource: None,
            kind: crate::trace::TraceEventKind::Submit,
        });
        PlanHandle(exec)
    }

    /// Submits a plan now with a client-side deadline: if it has not
    /// finished within `deadline` it completes with [`Outcome::TimedOut`]
    /// at exactly the deadline. Work it queued stays queued (a server
    /// may still burn time serving the abandoned request).
    pub fn submit_with_deadline(
        &mut self,
        plan: Plan,
        token: Token,
        deadline: SimDuration,
    ) -> PlanHandle {
        self.submit_at_with_deadline(self.now, plan, token, deadline)
    }

    /// Submits a plan to start at `start` with a deadline counted from
    /// `start` (see [`Engine::submit_with_deadline`]).
    ///
    /// # Panics
    /// Panics if `start` is before the current simulated time.
    pub fn submit_at_with_deadline(
        &mut self,
        start: SimTime,
        plan: Plan,
        token: Token,
        deadline: SimDuration,
    ) -> PlanHandle {
        assert!(start >= self.now, "cannot submit into the past");
        let plan = self.arena.intern(&plan);
        let exec = self.alloc_exec(plan, token, start, None);
        self.schedule(start, Event::Resume(exec));
        self.schedule(start + deadline, Event::Timeout(exec));
        #[cfg(feature = "trace")]
        self.tracer.record(crate::trace::TraceEvent {
            at: start,
            token: Some(token),
            resource: None,
            kind: crate::trace::TraceEventKind::Submit,
        });
        PlanHandle(exec)
    }

    /// Cancels the plan behind `handle`, completing it *now* with
    /// [`Outcome::Cancelled`]. Like a timeout, cancellation abandons the
    /// plan wherever it is: queue entries and in-flight services it owns
    /// become stale (a server may still burn time on the abandoned
    /// request, as real ones do after a client disconnects). Returns
    /// `true` if the plan was still running; a handle to a finished plan
    /// is inert and returns `false`.
    pub fn cancel(&mut self, handle: PlanHandle) -> bool {
        let exec = handle.0;
        if !self.is_current(exec) {
            return false;
        }
        let end = self.arena.step_len(self.execs[exec.idx as usize].plan);
        let slot = &mut self.execs[exec.idx as usize];
        slot.outcome = Outcome::Cancelled;
        slot.pc = end;
        slot.join_need = 0;
        self.finish_exec(exec);
        true
    }

    /// Takes ownership of one arena reference to `plan` (the caller
    /// interned or retained it) and binds it to a fresh exec slot.
    fn alloc_exec(
        &mut self,
        plan: PlanId,
        token: Token,
        submitted: SimTime,
        parent: Option<ExecRef>,
    ) -> ExecRef {
        // Parentless execs (top-level submissions and fire-and-forget
        // join branches) each owe the driver exactly one completion.
        #[cfg(feature = "audit")]
        if parent.is_none() {
            self.auditor.on_issue();
        }
        if let Some(idx) = self.free_execs.pop() {
            let slot = &mut self.execs[idx as usize];
            debug_assert!(!slot.live);
            slot.plan = plan;
            slot.pc = 0;
            slot.token = token;
            slot.submitted = submitted;
            slot.parent = parent;
            slot.join_need = 0;
            slot.join_pending = 0;
            slot.outcome = Outcome::Ok;
            slot.live = true;
            ExecRef {
                idx,
                generation: slot.generation,
            }
        } else {
            let idx = self.execs.len() as u32;
            self.execs.push(Exec {
                plan,
                pc: 0,
                token,
                submitted,
                parent,
                join_need: 0,
                join_pending: 0,
                outcome: Outcome::Ok,
                generation: 0,
                live: true,
            });
            ExecRef { idx, generation: 0 }
        }
    }

    fn free_exec(&mut self, exec: ExecRef) {
        let plan = self.execs[exec.idx as usize].plan;
        self.arena.release(plan);
        let slot = &mut self.execs[exec.idx as usize];
        slot.live = false;
        slot.generation = slot.generation.wrapping_add(1);
        slot.plan = PlanId::NONE;
        self.free_execs.push(exec.idx);
    }

    fn is_current(&self, exec: ExecRef) -> bool {
        let slot = &self.execs[exec.idx as usize];
        slot.live && slot.generation == exec.generation
    }

    #[inline]
    fn schedule(&mut self, at: SimTime, event: Event) {
        self.queue.push(at, self.seq, event);
        self.seq += 1;
    }

    /// Runs the step loop of `exec` until it blocks or finishes.
    fn advance(&mut self, exec: ExecRef) {
        debug_assert!(self.is_current(exec));
        loop {
            let (plan, pc) = {
                let slot = &self.execs[exec.idx as usize];
                (slot.plan, slot.pc)
            };
            if pc >= self.arena.step_len(plan) {
                self.finish_exec(exec);
                return;
            }
            // Steps are `Copy` in the arena: no take/put churn to satisfy
            // the borrow checker, and Join branches stay shared.
            let step = self.arena.step(plan, pc);
            self.execs[exec.idx as usize].pc = pc + 1;
            match step {
                FlatStep::Delay(d) => {
                    if d == SimDuration::ZERO {
                        continue;
                    }
                    let at = self.now + d;
                    self.schedule(at, Event::Resume(exec));
                    return;
                }
                FlatStep::AlignTo { period, extra } => {
                    let at = if period == SimDuration::ZERO {
                        self.now + extra
                    } else {
                        let p = period.as_nanos();
                        let boundary = (self.now.as_nanos() / p + 1) * p;
                        SimTime(boundary) + extra
                    };
                    self.schedule(at, Event::Resume(exec));
                    return;
                }
                FlatStep::Acquire { resource, service } => {
                    let r = &mut self.resources[resource.0 as usize];
                    match r.down {
                        Some(FailMode::Reject { latency }) => {
                            self.abort_exec(exec, Outcome::Failed, latency);
                        }
                        Some(FailMode::Stall) => {
                            r.waiting.push_back((exec, service, self.now));
                            #[cfg(feature = "trace")]
                            self.trace_op(
                                exec,
                                Some(resource),
                                crate::trace::TraceEventKind::Enqueue,
                            );
                        }
                        None => {
                            if r.busy < r.capacity {
                                r.busy += 1;
                                self.begin_service(resource, exec, service);
                            } else {
                                r.waiting.push_back((exec, service, self.now));
                                #[cfg(feature = "trace")]
                                self.trace_op(
                                    exec,
                                    Some(resource),
                                    crate::trace::TraceEventKind::Enqueue,
                                );
                            }
                        }
                    }
                    return;
                }
                FlatStep::Join {
                    first_child,
                    children,
                    need,
                } => {
                    let need = need.min(children);
                    if need == 0 {
                        // Fire-and-forget branches still execute. They are
                        // parentless (each emits its own Completion), so
                        // they open their own trace spans.
                        for k in 0..children {
                            let branch = self.arena.child(first_child + k);
                            self.arena.retain(branch);
                            let token = self.execs[exec.idx as usize].token;
                            let child = self.alloc_exec(branch, token, self.now, None);
                            self.ready.push_back(child);
                            #[cfg(feature = "trace")]
                            self.tracer.record(crate::trace::TraceEvent {
                                at: self.now,
                                token: Some(token),
                                resource: None,
                                kind: crate::trace::TraceEventKind::Submit,
                            });
                        }
                        continue;
                    }
                    let slot = &mut self.execs[exec.idx as usize];
                    slot.join_need = need;
                    slot.join_pending = children;
                    let token = slot.token;
                    for k in 0..children {
                        let branch = self.arena.child(first_child + k);
                        self.arena.retain(branch);
                        let child = self.alloc_exec(branch, token, self.now, Some(exec));
                        self.ready.push_back(child);
                    }
                    return;
                }
                FlatStep::Fail { latency } => {
                    self.abort_exec(exec, Outcome::Failed, latency);
                    return;
                }
            }
        }
    }

    fn finish_exec(&mut self, exec: ExecRef) {
        let (token, submitted, parent, outcome) = {
            let slot = &self.execs[exec.idx as usize];
            (slot.token, slot.submitted, slot.parent, slot.outcome)
        };
        self.free_exec(exec);
        match parent {
            Some(parent_ref) => {
                if self.is_current(parent_ref) {
                    let end = self
                        .arena
                        .step_len(self.execs[parent_ref.idx as usize].plan);
                    let parent_slot = &mut self.execs[parent_ref.idx as usize];
                    if parent_slot.join_need > 0 {
                        parent_slot.join_pending -= 1;
                        if outcome.is_ok() {
                            parent_slot.join_need -= 1;
                            if parent_slot.join_need == 0 {
                                self.ready.push_back(parent_ref);
                            }
                        } else if parent_slot.join_need > parent_slot.join_pending {
                            // Not enough branches left to reach quorum:
                            // the join — and with it the plan — fails.
                            parent_slot.join_need = 0;
                            parent_slot.outcome = outcome;
                            parent_slot.pc = end;
                            self.ready.push_back(parent_ref);
                        }
                    }
                }
                // A parent that already resumed (quorum met) or finished
                // ignores the straggler: its ref is stale or join_need==0.
            }
            None => {
                #[cfg(feature = "audit")]
                self.auditor.on_complete();
                #[cfg(feature = "trace")]
                self.tracer.record(crate::trace::TraceEvent {
                    at: self.now,
                    token: Some(token),
                    resource: None,
                    kind: crate::trace::TraceEventKind::Complete(outcome),
                });
                self.completions.push_back(Completion {
                    token,
                    submitted,
                    finished: self.now,
                    outcome,
                });
            }
        }
    }

    fn drain_ready(&mut self) {
        while let Some(exec) = self.ready.pop_front() {
            if self.is_current(exec) {
                self.advance(exec);
            }
        }
    }

    /// Processes one event from the queue. Returns `false` when idle.
    fn step_event(&mut self) -> bool {
        let Some((at, _seq, event)) = self.queue.pop() else {
            return false;
        };
        #[cfg(feature = "audit")]
        self.auditor.on_pop(at, _seq);
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        // The popped event's own exec advances directly — `ready` is empty
        // between events, so queueing it first and popping it right back
        // is a round-trip with no ordering effect. `ready` only carries
        // work spawned *during* an advance (join branches, resumed
        // parents), drained FIFO below.
        match event {
            Event::Resume(exec) => {
                if self.is_current(exec) {
                    self.advance(exec);
                }
            }
            Event::AcquireDone(exec, resource) => {
                #[cfg(feature = "trace")]
                self.trace_op(
                    exec,
                    Some(resource),
                    crate::trace::TraceEventKind::ServiceEnd,
                );
                let r = &mut self.resources[resource.0 as usize];
                r.served += 1;
                // Hand the slot straight to the next waiter — unless the
                // resource is down (a stalled queue drains on restore).
                if r.down.is_none() {
                    if let Some((next, service, enqueued)) = r.waiting.pop_front() {
                        r.waited_ns += u128::from(self.now.since(enqueued).as_nanos());
                        self.begin_service(resource, next, service);
                    } else {
                        r.busy -= 1;
                    }
                } else {
                    r.busy -= 1;
                }
                if self.is_current(exec) {
                    self.advance(exec);
                }
            }
            Event::Timeout(exec) => {
                if self.is_current(exec) {
                    // Abandon the plan wherever it is: queue entries and
                    // in-flight services it owns become stale (servers may
                    // still burn time on them, as real ones do).
                    let end = self.arena.step_len(self.execs[exec.idx as usize].plan);
                    let slot = &mut self.execs[exec.idx as usize];
                    slot.outcome = Outcome::TimedOut;
                    slot.pc = end;
                    slot.join_need = 0;
                    self.finish_exec(exec);
                }
            }
        }
        self.drain_ready();
        true
    }

    /// Runs until a completion is available (or the event queue empties).
    pub fn next_completion(&mut self) -> Option<Completion> {
        while self.completions.is_empty() {
            if !self.step_event() {
                return None;
            }
        }
        self.completions.pop_front()
    }

    /// Runs until at least one completion is buffered, then moves the
    /// whole buffered batch into `out` (preserving delivery order) in one
    /// pass — the batched form of [`Engine::next_completion`], saving a
    /// kernel round-trip per same-timestamp completion. Returns `false`
    /// when the engine went idle with nothing to deliver.
    pub fn drain_completions(&mut self, out: &mut VecDeque<Completion>) -> bool {
        while self.completions.is_empty() {
            if !self.step_event() {
                return false;
            }
        }
        out.extend(self.completions.drain(..));
        true
    }

    /// Returns an undelivered batch remainder to the front of the
    /// engine's completion buffer, preserving order. Drivers that
    /// checkpoint mid-batch call this first, so serialized engine state
    /// is exactly what one-at-a-time delivery would have produced; the
    /// next [`Engine::drain_completions`] re-delivers the remainder
    /// without stepping any events.
    pub fn requeue_completions(&mut self, pending: &mut VecDeque<Completion>) {
        while let Some(completion) = pending.pop_back() {
            self.completions.push_front(completion);
        }
    }

    /// Runs all events with `time <= until`, advancing the clock to
    /// exactly `until`, and returns the completions that occurred.
    pub fn run_until(&mut self, until: SimTime) -> Vec<Completion> {
        loop {
            match self.queue.peek() {
                Some((at, _)) if at <= until => {
                    self.step_event();
                }
                _ => break,
            }
        }
        self.now = self.now.max(until);
        self.completions.drain(..).collect()
    }

    /// Runs the simulation to quiescence (no pending events).
    pub fn run_to_idle(&mut self) -> Vec<Completion> {
        while self.step_event() {}
        self.completions.drain(..).collect()
    }

    /// True if no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Bit set in the snapshot feature byte when `audit` is compiled in.
    pub const SNAP_FEATURE_AUDIT: u8 = 1 << 0;
    /// Bit set in the snapshot feature byte when `trace` is compiled in.
    pub const SNAP_FEATURE_TRACE: u8 = 1 << 1;

    /// Feature byte describing which optional observers this build of the
    /// engine carries. A snapshot can only be restored into a build with
    /// the same byte — otherwise observer state would be silently lost.
    pub fn snap_features() -> u8 {
        let mut f = 0u8;
        if cfg!(feature = "audit") {
            f |= Engine::SNAP_FEATURE_AUDIT;
        }
        if cfg!(feature = "trace") {
            f |= Engine::SNAP_FEATURE_TRACE;
        }
        f
    }

    /// Serializes the engine's entire mutable state — clock, sequence
    /// counter, future-event list, resource queues and counters, exec
    /// slots (including dead slots, so generation-protected handles stay
    /// valid), and the pending ready/completion queues.
    ///
    /// The future-event list is written in sorted `(time, seq)` order
    /// with events inline, and exec plans are written *materialized*
    /// (portable [`Plan`] values, not arena indices), so a snapshot of a
    /// restored engine is byte-identical to a snapshot of the original
    /// at the same point regardless of either arena's internal layout.
    pub fn snap_state(&self, w: &mut SnapWriter) {
        w.put_u8(Engine::snap_features());
        w.put(&self.now);
        w.put_u64(self.seq);
        w.put(&self.queue.sorted_entries());
        w.put(&self.resources);
        w.put_u64(self.execs.len() as u64);
        for slot in &self.execs {
            let plan = if slot.live {
                self.arena.materialize(slot.plan)
            } else {
                Plan::empty()
            };
            w.put(&plan);
            w.put_u32(slot.pc);
            w.put(&slot.token);
            w.put(&slot.submitted);
            w.put(&slot.parent);
            w.put_u32(slot.join_need);
            w.put_u32(slot.join_pending);
            w.put(&slot.outcome);
            w.put_u32(slot.generation);
            w.put(&slot.live);
        }
        w.put(&self.free_execs);
        w.put(&self.ready);
        w.put(&self.completions);
        #[cfg(feature = "audit")]
        self.auditor.snap_state(w);
        #[cfg(feature = "trace")]
        self.tracer.snap_state(w);
    }

    /// Replaces the engine's mutable state with a previously serialized
    /// one. The caller provides an engine whose build features match the
    /// snapshot; registered resources are overwritten wholesale (resource
    /// ids are dense indices, and registration order is deterministic, so
    /// ids held by stores remain valid). Live exec plans are re-interned
    /// into a fresh arena.
    pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let stored = r.u8()?;
        let active = Engine::snap_features();
        if stored != active {
            return Err(SnapError::FeatureMismatch { stored, active });
        }
        self.now = r.get()?;
        self.seq = r.u64()?;
        let entries: Vec<(SimTime, u64, Event)> = r.get()?;
        self.queue.rebuild(self.now, entries);
        self.resources = r.get()?;
        self.arena = PlanArena::new();
        let exec_count = r.u64()? as usize;
        let mut execs = Vec::with_capacity(exec_count);
        for _ in 0..exec_count {
            let plan: Plan = r.get()?;
            let pc = r.u32()?;
            let token = r.get()?;
            let submitted = r.get()?;
            let parent = r.get()?;
            let join_need = r.u32()?;
            let join_pending = r.u32()?;
            let outcome = r.get()?;
            let generation = r.u32()?;
            let live: bool = r.get()?;
            let plan = if live {
                self.arena.intern(&plan)
            } else {
                PlanId::NONE
            };
            execs.push(Exec {
                plan,
                pc,
                token,
                submitted,
                parent,
                join_need,
                join_pending,
                outcome,
                generation,
                live,
            });
        }
        self.execs = execs;
        self.free_execs = r.get()?;
        self.ready = r.get()?;
        self.completions = r.get()?;
        #[cfg(feature = "audit")]
        {
            self.auditor = crate::audit::KernelAuditor::restore_state(r)?;
        }
        #[cfg(feature = "trace")]
        {
            self.tracer = crate::trace::Tracer::restore_state(r)?;
        }
        Ok(())
    }
}

impl Snap for ResourceId {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.0);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(ResourceId(r.u32()?))
    }
}

impl Snap for Token {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Token(r.u64()?))
    }
}

impl Snap for Outcome {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            Outcome::Ok => 0,
            Outcome::Failed => 1,
            Outcome::TimedOut => 2,
            Outcome::Cancelled => 3,
        });
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Outcome::Ok),
            1 => Ok(Outcome::Failed),
            2 => Ok(Outcome::TimedOut),
            3 => Ok(Outcome::Cancelled),
            tag => Err(SnapError::BadTag {
                what: "Outcome",
                tag: u64::from(tag),
            }),
        }
    }
}

impl Snap for FailMode {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            FailMode::Reject { latency } => {
                w.put_u8(0);
                w.put(latency);
            }
            FailMode::Stall => w.put_u8(1),
        }
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(FailMode::Reject { latency: r.get()? }),
            1 => Ok(FailMode::Stall),
            tag => Err(SnapError::BadTag {
                what: "FailMode",
                tag: u64::from(tag),
            }),
        }
    }
}

impl Snap for Completion {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.token);
        w.put(&self.submitted);
        w.put(&self.finished);
        w.put(&self.outcome);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Completion {
            token: r.get()?,
            submitted: r.get()?,
            finished: r.get()?,
            outcome: r.get()?,
        })
    }
}

impl Snap for ExecRef {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.idx);
        w.put_u32(self.generation);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(ExecRef {
            idx: r.u32()?,
            generation: r.u32()?,
        })
    }
}

impl Snap for PlanHandle {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.0);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(PlanHandle(r.get()?))
    }
}

impl Snap for Resource {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.name);
        w.put_u32(self.capacity);
        w.put_u32(self.busy);
        w.put(&self.waiting);
        w.put_u128(self.busy_ns);
        w.put_u128(self.waited_ns);
        w.put_u64(self.served);
        w.put(&self.down);
        w.put_u32(self.slowdown);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Resource {
            name: r.get()?,
            capacity: r.u32()?,
            busy: r.u32()?,
            waiting: r.get()?,
            busy_ns: r.u128()?,
            waited_ns: r.u128()?,
            served: r.u64()?,
            down: r.get()?,
            slowdown: r.u32()?,
        })
    }
}

impl Snap for Event {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Event::Resume(exec) => {
                w.put_u8(0);
                w.put(exec);
            }
            Event::AcquireDone(exec, resource) => {
                w.put_u8(1);
                w.put(exec);
                w.put(resource);
            }
            Event::Timeout(exec) => {
                w.put_u8(2);
                w.put(exec);
            }
        }
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Event::Resume(r.get()?)),
            1 => Ok(Event::AcquireDone(r.get()?, r.get()?)),
            2 => Ok(Event::Timeout(r.get()?)),
            tag => Err(SnapError::BadTag {
                what: "Event",
                tag: u64::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Step;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn empty_plan_completes_instantly() {
        let mut engine = Engine::new();
        engine.submit(Plan::empty(), Token(1));
        let c = engine.next_completion().expect("completion");
        assert_eq!(c.token, Token(1));
        assert_eq!(c.latency(), SimDuration::ZERO);
    }

    #[test]
    fn single_acquire_takes_service_time() {
        let mut engine = Engine::new();
        let cpu = engine.add_resource("cpu", 1);
        engine.submit(Plan::build().acquire(cpu, us(10)).finish(), Token(7));
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(c.latency(), us(10));
        assert_eq!(engine.served(cpu), 1);
    }

    #[test]
    fn fifo_queueing_serialises_on_capacity_one() {
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        for i in 0..3 {
            engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(i));
        }
        let latencies: Vec<u64> = (0..3)
            .map(|_| {
                engine
                    .next_completion()
                    .expect("completion queued by the drained run")
                    .latency()
                    .as_nanos()
                    / 1_000
            })
            .collect();
        // First waits 10us, second 20us (queued behind first), third 30us.
        assert_eq!(latencies, vec![10, 20, 30]);
    }

    #[test]
    fn capacity_two_serves_pairs_in_parallel() {
        let mut engine = Engine::new();
        let disk = engine.add_resource("raid0", 2);
        for i in 0..4 {
            engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(i));
        }
        let latencies: Vec<u64> = (0..4)
            .map(|_| {
                engine
                    .next_completion()
                    .expect("completion queued by the drained run")
                    .latency()
                    .as_nanos()
                    / 1_000
            })
            .collect();
        assert_eq!(latencies, vec![10, 10, 20, 20]);
    }

    #[test]
    fn delays_do_not_contend() {
        let mut engine = Engine::new();
        for i in 0..5 {
            engine.submit(Plan::build().delay(us(100)).finish(), Token(i));
        }
        for _ in 0..5 {
            assert_eq!(
                engine
                    .next_completion()
                    .expect("completion queued by the drained run")
                    .latency(),
                us(100)
            );
        }
    }

    #[test]
    fn align_to_waits_for_epoch_boundary() {
        let mut engine = Engine::new();
        // Advance the clock to 3us via a dummy plan.
        engine.submit(Plan::build().delay(us(3)).finish(), Token(0));
        engine.next_completion();
        assert_eq!(engine.now(), SimTime(3_000));
        // A 10us group-commit epoch: boundary at 10us, +2us sync.
        engine.submit(Plan::build().align_to(us(10), us(2)).finish(), Token(1));
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(c.finished, SimTime(12_000));
        assert_eq!(c.latency(), us(9));
    }

    #[test]
    fn join_all_gates_on_slowest_branch() {
        let mut engine = Engine::new();
        let branches = vec![
            Plan::build().delay(us(5)).finish(),
            Plan::build().delay(us(50)).finish(),
            Plan::build().delay(us(20)).finish(),
        ];
        engine.submit(
            Plan::build().join_all(branches).delay(us(1)).finish(),
            Token(9),
        );
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(c.latency(), us(51));
    }

    #[test]
    fn join_quorum_resumes_early_but_stragglers_still_run() {
        let mut engine = Engine::new();
        let cpu = engine.add_resource("cpu", 1);
        let branches = vec![
            Plan::build().delay(us(5)).finish(),
            // The straggler occupies the CPU from 10us to 40us.
            Plan::build().delay(us(10)).acquire(cpu, us(30)).finish(),
        ];
        engine.submit(Plan::build().join_quorum(branches, 1).finish(), Token(1));
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(
            c.latency(),
            us(5),
            "quorum of 1 returns at the fastest branch"
        );
        // Straggler keeps running after the completion: CPU gets used.
        engine.run_to_idle();
        assert_eq!(engine.served(cpu), 1);
        assert!(engine.now() >= SimTime(40_000));
    }

    #[test]
    fn fire_and_forget_branches_execute_without_blocking() {
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        let bg = vec![Plan::build().acquire(disk, us(100)).finish()];
        engine.submit(
            Plan(vec![
                Step::Join {
                    branches: bg,
                    need: 0,
                },
                Step::Delay(us(1)),
            ]),
            Token(3),
        );
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(c.latency(), us(1), "need=0 join must not block");
        engine.run_to_idle();
        assert_eq!(engine.served(disk), 1, "background branch still ran");
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut engine = Engine::new();
        let cpu = engine.add_resource("cpu", 2);
        engine.submit(Plan::build().acquire(cpu, us(10)).finish(), Token(0));
        engine.submit(Plan::build().delay(us(100)).finish(), Token(1));
        engine.run_to_idle();
        // 10us busy on one of 2 servers over 100us → 5%.
        assert!((engine.utilization(cpu) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn submit_at_defers_start_and_latency_window() {
        let mut engine = Engine::new();
        engine.submit_at(
            SimTime(1_000_000),
            Plan::build().delay(us(5)).finish(),
            Token(2),
        );
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(c.submitted, SimTime(1_000_000));
        assert_eq!(c.latency(), us(5));
    }

    #[test]
    fn run_until_stops_at_boundary_and_reports_completions() {
        let mut engine = Engine::new();
        engine.submit(Plan::build().delay(us(10)).finish(), Token(0));
        engine.submit(Plan::build().delay(us(100)).finish(), Token(1));
        let first = engine.run_until(SimTime(50_000));
        assert_eq!(first.len(), 1);
        assert_eq!(engine.now(), SimTime(50_000));
        let rest = engine.run_to_idle();
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn completions_preserve_time_order() {
        let mut engine = Engine::new();
        engine.submit(Plan::build().delay(us(30)).finish(), Token(0));
        engine.submit(Plan::build().delay(us(10)).finish(), Token(1));
        engine.submit(Plan::build().delay(us(20)).finish(), Token(2));
        let order: Vec<Token> = engine.run_to_idle().into_iter().map(|c| c.token).collect();
        assert_eq!(order, vec![Token(1), Token(2), Token(0)]);
    }

    #[test]
    fn exec_slots_are_reused() {
        let mut engine = Engine::new();
        for round in 0..100 {
            engine.submit(Plan::build().delay(us(1)).finish(), Token(round));
            engine.next_completion();
        }
        assert!(
            engine.execs.len() < 4,
            "slots must be recycled, got {}",
            engine.execs.len()
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_resource_panics() {
        Engine::new().add_resource("bad", 0);
    }

    #[test]
    fn writers_in_the_same_window_share_a_group_commit_boundary() {
        // Three writes arriving within one 10us epoch all finish at the
        // same boundary — the group-commit behaviour stores rely on.
        let mut engine = Engine::new();
        for (i, offset) in [1u64, 4, 9].into_iter().enumerate() {
            engine.submit(
                Plan::build()
                    .delay(SimDuration::from_micros(offset))
                    .align_to(us(10), SimDuration::ZERO)
                    .finish(),
                Token(i as u64),
            );
        }
        let completions = engine.run_to_idle();
        assert!(
            completions.iter().all(|c| c.finished == SimTime(10_000)),
            "{completions:?}"
        );
        // A write landing after the boundary joins the NEXT group.
        engine.submit(
            Plan::build()
                .delay(SimDuration::from_micros(1))
                .align_to(us(10), SimDuration::ZERO)
                .finish(),
            Token(9),
        );
        let c = engine.run_to_idle();
        assert_eq!(c[0].finished, SimTime(20_000));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn submitting_into_the_past_panics() {
        let mut engine = Engine::new();
        engine.submit(Plan::build().delay(us(10)).finish(), Token(0));
        engine.next_completion();
        engine.submit_at(SimTime(5), Plan::empty(), Token(1));
    }

    #[test]
    fn rejecting_resource_fails_plans_with_error_latency() {
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        engine.fail_resource(disk, FailMode::Reject { latency: us(5) });
        engine.submit(Plan::build().acquire(disk, us(100)).finish(), Token(1));
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(c.outcome, Outcome::Failed);
        assert_eq!(
            c.latency(),
            us(5),
            "refusal costs the error latency, not service"
        );
        assert_eq!(engine.served(disk), 0);
    }

    #[test]
    fn rejecting_resource_drains_already_queued_work() {
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        for i in 0..3 {
            engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(i));
        }
        // When the first request completes the second is already in
        // service and the third still queued. Failing the resource aborts
        // the queued waiter but lets in-flight work finish.
        let first = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(first.outcome, Outcome::Ok);
        engine.fail_resource(disk, FailMode::Reject { latency: us(1) });
        let second = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!((second.token, second.outcome), (Token(2), Outcome::Failed));
        let third = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!((third.token, third.outcome), (Token(1), Outcome::Ok));
    }

    #[test]
    fn stalled_resource_holds_work_until_restore() {
        let mut engine = Engine::new();
        let nic = engine.add_resource("nic", 1);
        engine.fail_resource(nic, FailMode::Stall);
        engine.submit(Plan::build().acquire(nic, us(10)).finish(), Token(1));
        // Nothing completes while stalled; the clock stays put.
        assert!(engine.run_until(SimTime(1_000_000)).is_empty());
        engine.restore_resource(nic);
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(c.outcome, Outcome::Ok);
        assert!(c.finished >= SimTime(1_000_000));
    }

    #[test]
    fn slowdown_multiplies_service_time() {
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        engine.set_resource_slowdown(disk, 4);
        engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(1));
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(c.latency(), us(40));
        engine.set_resource_slowdown(disk, 1);
        engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(2));
        assert_eq!(
            engine
                .next_completion()
                .expect("completion queued by the drained run")
                .latency(),
            us(10)
        );
    }

    #[test]
    fn deadline_times_out_stalled_requests() {
        let mut engine = Engine::new();
        let nic = engine.add_resource("nic", 1);
        engine.fail_resource(nic, FailMode::Stall);
        engine.submit_with_deadline(
            Plan::build().acquire(nic, us(10)).finish(),
            Token(1),
            us(500),
        );
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(c.outcome, Outcome::TimedOut);
        assert_eq!(c.latency(), us(500));
    }

    #[test]
    fn deadline_is_inert_when_work_finishes_in_time() {
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        engine.submit_with_deadline(
            Plan::build().acquire(disk, us(10)).finish(),
            Token(1),
            us(500),
        );
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(c.outcome, Outcome::Ok);
        assert_eq!(c.latency(), us(10));
        assert!(
            engine.run_to_idle().is_empty(),
            "stale timeout must not complete anything"
        );
    }

    #[test]
    fn join_fails_when_quorum_becomes_impossible() {
        let mut engine = Engine::new();
        let a = engine.add_resource("replica-a", 1);
        let b = engine.add_resource("replica-b", 1);
        engine.fail_resource(a, FailMode::Reject { latency: us(1) });
        engine.fail_resource(b, FailMode::Reject { latency: us(1) });
        let branches = vec![
            Plan::build().acquire(a, us(10)).finish(),
            Plan::build().acquire(b, us(10)).finish(),
        ];
        engine.submit(Plan::build().join_quorum(branches, 1).finish(), Token(9));
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(
            c.outcome,
            Outcome::Failed,
            "no branch can satisfy the quorum"
        );
    }

    #[test]
    fn join_survives_minority_branch_failure() {
        let mut engine = Engine::new();
        let a = engine.add_resource("replica-a", 1);
        let b = engine.add_resource("replica-b", 1);
        engine.fail_resource(a, FailMode::Reject { latency: us(1) });
        let branches = vec![
            Plan::build().acquire(a, us(10)).finish(),
            Plan::build().acquire(b, us(10)).finish(),
        ];
        engine.submit(Plan::build().join_quorum(branches, 1).finish(), Token(9));
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(
            c.outcome,
            Outcome::Ok,
            "the live replica satisfies the quorum"
        );
        assert_eq!(c.latency(), us(10));
    }

    #[test]
    fn queue_wait_accumulates_only_for_served_requests() {
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        for i in 0..3 {
            engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(i));
        }
        engine.run_to_idle();
        // First request never waits; second waits 10us, third 20us.
        assert_eq!(engine.queue_wait_ns(disk), us(30).as_nanos() as u128);
        assert_eq!(engine.service_ns(disk), us(30).as_nanos() as u128);
        assert_eq!(engine.resource_count(), 1);
        assert_eq!(engine.resource_capacity(disk), 1);
    }

    #[test]
    fn queue_wait_skips_requests_aborted_by_a_crash() {
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        for i in 0..2 {
            engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(i));
        }
        // At t=0 the first is in service, the second queued; the crash
        // rejects the waiter, whose wait must not be attributed.
        engine.run_until(SimTime(1_000));
        engine.fail_resource(disk, FailMode::Reject { latency: us(1) });
        engine.run_to_idle();
        assert_eq!(engine.queue_wait_ns(disk), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn trace_records_the_full_op_lifecycle_in_order() {
        use crate::trace::TraceEventKind as K;
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        for i in 0..2 {
            engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(i));
        }
        engine.run_to_idle();
        let got: Vec<(Option<u64>, K)> = engine
            .tracer()
            .events()
            .iter()
            .map(|e| (e.token.map(|t| t.0), e.kind))
            .collect();
        assert_eq!(
            got,
            vec![
                (Some(0), K::Submit),
                (Some(1), K::Submit),
                (Some(0), K::ServiceStart),
                (Some(1), K::Enqueue),
                (Some(0), K::ServiceEnd),
                (Some(1), K::ServiceStart),
                (Some(0), K::Complete(Outcome::Ok)),
                (Some(1), K::ServiceEnd),
                (Some(1), K::Complete(Outcome::Ok)),
            ]
        );
        // Each op event carries the resource it touched (plan-level
        // submit/complete events carry none).
        for e in engine.tracer().events() {
            match e.kind {
                K::Submit | K::Complete(_) => assert_eq!(e.resource, None),
                _ => assert_eq!(e.resource, Some(disk)),
            }
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn trace_records_fault_transitions_and_timeouts() {
        use crate::trace::TraceEventKind as K;
        let mut engine = Engine::new();
        let nic = engine.add_resource("nic", 1);
        engine.fail_resource(nic, FailMode::Stall);
        engine.submit_with_deadline(
            Plan::build().acquire(nic, us(10)).finish(),
            Token(7),
            us(500),
        );
        engine.run_until(SimTime(1_000_000));
        engine.restore_resource(nic);
        engine.set_resource_slowdown(nic, 2);
        engine.run_to_idle();
        let kinds: Vec<K> = engine.tracer().events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&K::ResourceDown));
        assert!(kinds.contains(&K::ResourceRestored));
        assert!(kinds.contains(&K::Slowdown));
        assert!(kinds.contains(&K::Complete(Outcome::TimedOut)));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn trace_fingerprints_match_across_identical_runs() {
        let run = |seed: u64| {
            let mut engine = Engine::new();
            let disk = engine.add_resource("disk", 2);
            for i in 0..20 {
                engine.submit(
                    Plan::build().acquire(disk, us(1 + (seed + i) % 7)).finish(),
                    Token(i),
                );
            }
            engine.run_to_idle();
            engine.tracer().fingerprint()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different workloads must differ");
    }

    #[test]
    fn restore_resumes_fifo_service_for_stalled_queue() {
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        engine.fail_resource(disk, FailMode::Stall);
        for i in 0..3 {
            engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(i));
        }
        assert!(engine.run_until(SimTime(50_000)).is_empty());
        engine.restore_resource(disk);
        let tokens: Vec<u64> = (0..3)
            .map(|_| {
                engine
                    .next_completion()
                    .expect("completion queued by the drained run")
                    .token
                    .0
            })
            .collect();
        assert_eq!(tokens, vec![0, 1, 2], "stalled queue drains in FIFO order");
        assert_eq!(engine.served(disk), 3);
    }

    #[test]
    fn cancel_completes_the_plan_with_cancelled_outcome() {
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        let handle = engine.submit(Plan::build().acquire(disk, us(100)).finish(), Token(4));
        // Let the service start, then revoke the plan mid-flight.
        engine.run_until(SimTime(10_000));
        assert!(engine.cancel(handle), "a running plan can be cancelled");
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!((c.token, c.outcome), (Token(4), Outcome::Cancelled));
        assert_eq!(c.finished, SimTime(10_000), "cancellation takes effect now");
        // The abandoned service still burns server time, like a timeout.
        engine.run_to_idle();
        assert_eq!(engine.served(disk), 1);
    }

    #[test]
    fn cancel_emits_exactly_one_completion() {
        let mut engine = Engine::new();
        let handle = engine.submit(Plan::build().delay(us(50)).finish(), Token(1));
        assert!(engine.cancel(handle));
        let all = engine.run_to_idle();
        assert_eq!(all.len(), 1, "cancel must not double-complete: {all:?}");
        assert_eq!(all[0].outcome, Outcome::Cancelled);
    }

    #[test]
    fn cancelling_a_finished_plan_is_inert() {
        let mut engine = Engine::new();
        let handle = engine.submit(Plan::build().delay(us(5)).finish(), Token(2));
        let c = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!(c.outcome, Outcome::Ok);
        assert!(!engine.cancel(handle), "stale handle must be a no-op");
        assert!(engine.run_to_idle().is_empty());
        // A recycled slot must not be reachable through the old handle.
        let _other = engine.submit(Plan::build().delay(us(5)).finish(), Token(3));
        assert!(!engine.cancel(handle), "recycled slot needs a new handle");
        assert_eq!(engine.run_to_idle().len(), 1);
    }

    #[test]
    fn cancel_abandons_queued_work_without_serving_it() {
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(0));
        let queued = engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(1));
        assert!(engine.cancel(queued));
        let all = engine.run_to_idle();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].outcome, Outcome::Cancelled);
        assert_eq!(all[1].outcome, Outcome::Ok);
        // The stale queue entry is skipped when the server frees up.
        assert_eq!(engine.served(disk), 1);
    }

    #[test]
    fn cancelled_join_parent_ignores_straggler_children() {
        let mut engine = Engine::new();
        let a = engine.add_resource("replica-a", 1);
        let b = engine.add_resource("replica-b", 1);
        let branches = vec![
            Plan::build().acquire(a, us(30)).finish(),
            Plan::build().acquire(b, us(40)).finish(),
        ];
        let handle = engine.submit(Plan::build().join_all(branches).finish(), Token(6));
        engine.run_until(SimTime(1_000));
        assert!(engine.cancel(handle));
        let all = engine.run_to_idle();
        assert_eq!(all.len(), 1, "children must not complete for the parent");
        assert_eq!(all[0].outcome, Outcome::Cancelled);
        // Both branch services still ran to completion on the servers.
        assert_eq!((engine.served(a), engine.served(b)), (1, 1));
    }

    #[test]
    fn engine_snapshot_restores_to_an_identical_future() {
        let build = || {
            let mut e = Engine::new();
            let disk = e.add_resource("disk", 1);
            let nic = e.add_resource("nic", 2);
            (e, disk, nic)
        };
        let (mut engine, disk, nic) = build();
        // Contended disk queue, a stalled NIC with a pending deadline, a
        // quorum join in flight, and an already-buffered completion.
        engine.fail_resource(nic, FailMode::Stall);
        for i in 0..4 {
            engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(i));
        }
        engine.submit_with_deadline(Plan::build().acquire(nic, us(5)).finish(), Token(8), us(90));
        let branches = vec![
            Plan::build().delay(us(7)).finish(),
            Plan::build().acquire(disk, us(20)).finish(),
        ];
        engine.submit(Plan::build().join_quorum(branches, 1).finish(), Token(9));
        engine.run_until(SimTime(15_000));

        let mut w = SnapWriter::new();
        engine.snap_state(&mut w);
        let bytes = w.into_bytes();

        let (mut resumed, _, _) = build();
        let mut r = SnapReader::new(&bytes);
        resumed.restore_state(&mut r).unwrap();
        r.finish().unwrap();

        // Re-snapshotting the restored engine reproduces the same bytes.
        let mut w2 = SnapWriter::new();
        resumed.snap_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "snapshot must round-trip exactly");

        // Both engines must play out the identical future, including new
        // work submitted after the restore point (slot reuse must match).
        let drive = |e: &mut Engine| {
            let mut out = e.run_until(SimTime(40_000));
            e.restore_resource(ResourceId(1));
            e.submit(
                Plan::build().acquire(ResourceId(0), us(3)).finish(),
                Token(30),
            );
            out.extend(e.run_to_idle());
            (out, e.now())
        };
        assert_eq!(drive(&mut engine), drive(&mut resumed));
        #[cfg(feature = "audit")]
        assert_eq!(
            engine.auditor().fingerprint(),
            resumed.auditor().fingerprint(),
            "audit fingerprint must survive the round trip"
        );
        #[cfg(feature = "trace")]
        assert_eq!(
            engine.tracer().fingerprint(),
            resumed.tracer().fingerprint(),
            "trace fingerprint must survive the round trip"
        );
    }

    #[cfg(feature = "audit")]
    #[test]
    fn cancellation_preserves_op_conservation() {
        let mut engine = Engine::new();
        let disk = engine.add_resource("disk", 1);
        for i in 0..4 {
            let handle = engine.submit(Plan::build().acquire(disk, us(10)).finish(), Token(i));
            if i % 2 == 0 {
                engine.cancel(handle);
            }
        }
        engine.run_to_idle();
        engine.auditor().assert_conserved();
    }

    #[test]
    fn stale_timeout_event_cannot_touch_a_recycled_exec_slot() {
        // Regression for the slab's generation check: events carry
        // generation-stamped refs, so a deadline left over from a freed
        // exec must be inert against the slot's next occupant.
        let mut engine = Engine::new();
        engine.submit_with_deadline(Plan::build().delay(us(5)).finish(), Token(1), us(100));
        let first = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!((first.token, first.outcome), (Token(1), Outcome::Ok));
        // The new occupant of the recycled slot is still running when the
        // old deadline fires at t=100us.
        engine.submit(Plan::build().delay(us(500)).finish(), Token(2));
        let second = engine
            .next_completion()
            .expect("completion queued by the drained run");
        assert_eq!((second.token, second.outcome), (Token(2), Outcome::Ok));
        assert_eq!(
            second.latency(),
            us(500),
            "stale timeout must not cut it short"
        );
    }

    #[test]
    fn prepared_submits_match_plain_submits_and_go_stale_on_restore() {
        let plan = |disk| Plan::build().acquire(disk, us(10)).delay(us(3)).finish();
        // Same closed loop through submit() and submit_prepared() must
        // play out identically: preparation only skips the intern walk.
        let mut plain = Engine::new();
        let disk = plain.add_resource("disk", 1);
        let mut prep = Engine::new();
        let p_disk = prep.add_resource("disk", 1);
        let prepared = prep.prepare(&plan(p_disk));
        for i in 0..4 {
            plain.submit(plan(disk), Token(i));
            prep.submit_prepared(prepared, Token(i));
        }
        assert_eq!(plain.run_to_idle(), prep.run_to_idle());

        // A restore rebuilds the arena, so the old handle is stale...
        let mut w = SnapWriter::new();
        prep.snap_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        prep.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            prep.submit_prepared(prepared, Token(99));
        }));
        assert!(stale.is_err(), "stale PreparedPlan must not submit");
        // ...and re-preparing yields a working handle again.
        let fresh = prep.prepare(&plan(p_disk));
        prep.submit_prepared(fresh, Token(7));
        let out = prep.run_to_idle();
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].token, out[0].outcome), (Token(7), Outcome::Ok));
    }

    #[test]
    fn drain_completions_batches_and_requeue_restores_delivery_order() {
        let mut engine = Engine::new();
        let handles: Vec<PlanHandle> = (0..3)
            .map(|i| engine.submit(Plan::build().delay(us(10)).finish(), Token(i)))
            .collect();
        for handle in handles {
            engine.cancel(handle);
        }
        let mut batch = VecDeque::new();
        assert!(engine.drain_completions(&mut batch));
        assert_eq!(batch.len(), 3, "buffered completions arrive as one batch");
        let first = batch.pop_front().expect("batch has three entries");
        assert_eq!(first.token, Token(0));
        // A checkpointing driver hands the unprocessed remainder back...
        engine.requeue_completions(&mut batch);
        assert!(batch.is_empty());
        // ...and delivery resumes in the original order, with no events
        // stepped in between.
        assert!(engine.drain_completions(&mut batch));
        let rest: Vec<Token> = batch.drain(..).map(|c| c.token).collect();
        assert_eq!(rest, vec![Token(1), Token(2)]);
        assert!(
            !engine.drain_completions(&mut batch),
            "only stale resume events remain"
        );
        assert!(batch.is_empty());
    }

    /// Satellite equivalence property: a seeded mixed schedule (delays,
    /// AlignTo, quorum joins, Fail steps, deadlines, cancels, and fault
    /// events) must play out identically through the calendar queue and
    /// the retired binary-heap reference — same completion stream, same
    /// clock, and (under the features) same audit/trace fingerprints,
    /// which pin the exact `(time, seq)` pop order.
    #[test]
    fn calendar_and_reference_queues_drive_identical_schedules() {
        fn drive(mut engine: Engine) -> (Vec<Completion>, Engine) {
            let disk = engine.add_resource("disk", 2);
            let nic = engine.add_resource("nic", 1);
            let replicas: Vec<ResourceId> = (0..3)
                .map(|i| engine.add_resource(format!("replica-{i}"), 1))
                .collect();
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut out = Vec::new();
            let mut handles = Vec::new();
            for i in 0..400u64 {
                let r = next();
                let plan = match r % 6 {
                    0 => Plan::build()
                        .acquire(disk, us(1 + r % 40))
                        .delay(us(r % 9))
                        .finish(),
                    1 => Plan::build()
                        .delay(us(r % 13))
                        .acquire(nic, us(2 + r % 7))
                        .finish(),
                    2 => Plan::build()
                        .align_to(us(10), us(r % 3))
                        .acquire(disk, us(1 + r % 5))
                        .finish(),
                    3 => Plan::build()
                        .join_quorum(
                            replicas
                                .iter()
                                .map(|&rep| Plan::build().acquire(rep, us(1 + r % 20)).finish())
                                .collect(),
                            2,
                        )
                        .finish(),
                    4 => Plan(vec![
                        Step::Delay(us(r % 5)),
                        Step::Fail {
                            latency: us(1 + r % 4),
                        },
                    ]),
                    // Long think times park in the overflow tier.
                    _ => Plan::build().delay(us(40_000 + r % 9_000)).finish(),
                };
                let handle = if r % 7 == 0 {
                    engine.submit_with_deadline(plan, Token(i), us(30 + r % 60))
                } else {
                    engine.submit(plan, Token(i))
                };
                if r % 11 == 0 {
                    handles.push(handle);
                }
                if r % 53 == 0 {
                    engine.fail_resource(disk, FailMode::Reject { latency: us(1) });
                }
                if r % 53 == 17 && engine.resource_is_down(disk) {
                    engine.restore_resource(disk);
                }
                if r % 47 == 0 {
                    engine.fail_resource(nic, FailMode::Stall);
                }
                if r % 47 == 9 && engine.resource_is_down(nic) {
                    engine.restore_resource(nic);
                }
                if r % 23 == 0 {
                    if let Some(h) = handles.pop() {
                        engine.cancel(h);
                    }
                }
                out.extend(engine.run_until(SimTime(i * 5_000)));
            }
            if engine.resource_is_down(disk) {
                engine.restore_resource(disk);
            }
            if engine.resource_is_down(nic) {
                engine.restore_resource(nic);
            }
            out.extend(engine.run_to_idle());
            (out, engine)
        }
        let (calendar_out, calendar) = drive(Engine::new());
        let (reference_out, reference) = drive(Engine::with_reference_queue());
        assert_eq!(
            calendar_out.len(),
            reference_out.len(),
            "both queues must deliver every completion"
        );
        assert_eq!(calendar_out, reference_out, "completion streams diverged");
        assert_eq!(calendar.now(), reference.now());
        #[cfg(feature = "audit")]
        assert_eq!(
            calendar.auditor().fingerprint(),
            reference.auditor().fingerprint(),
            "audit fingerprint pins the exact pop order"
        );
        #[cfg(feature = "trace")]
        assert_eq!(
            calendar.tracer().fingerprint(),
            reference.tracer().fingerprint(),
            "trace fingerprint must match across queue implementations"
        );
    }
}
