//! # apm-sim
//!
//! A deterministic discrete-event simulator for benchmark clusters.
//!
//! The paper measured six distributed stores on two physical clusters. We
//! replace the hardware with a simulation in which *time is virtual* but
//! *work is real*: the storage engines in `apm-storage` maintain real data
//! structures and describe the physical work of every operation (CPU time,
//! disk reads/writes, network messages) as a [`plan::Plan`]; this crate
//! executes plans against queued node resources (CPU core pools, disks,
//! NICs, RPC handler pools) and reports completion times.
//!
//! Because a closed-loop benchmark's throughput and latency are queueing
//! phenomena, executing calibrated service demands against the paper's
//! hardware shapes (Cluster M: 8 cores / 16 GB / RAID0; Cluster D: 4 cores
//! / 4 GB / 1 disk; gigabit Ethernet) reproduces the measured curves.
//!
//! Determinism: the future-event list (a calendar queue, see [`queue`])
//! breaks time ties by insertion sequence and all randomness comes from
//! seeded `SplitRng` streams upstream, so every simulation run is exactly
//! repeatable.

pub mod arena;
#[cfg(feature = "audit")]
pub mod audit;
pub mod cluster;
pub mod disk;
pub mod fault;
pub mod kernel;
pub mod net;
pub mod plan;
pub mod queue;
pub mod time;
#[cfg(feature = "trace")]
pub mod trace;

#[cfg(feature = "audit")]
pub use audit::KernelAuditor;
pub use cluster::{ClusterSpec, NodeResources, NodeSpec};
pub use disk::{DiskSpec, IoPattern};
pub use fault::{FaultEvent, FaultKind, FaultSchedule};
pub use kernel::{
    Completion, Engine, FailMode, Outcome, PlanHandle, PreparedPlan, ResourceId, Token,
};
pub use net::NetSpec;
pub use plan::{Plan, Step};
pub use time::{SimDuration, SimTime};
#[cfg(feature = "trace")]
pub use trace::{TraceEvent, TraceEventKind, Tracer};
