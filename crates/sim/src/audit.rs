//! Runtime invariant checking for the event kernel (`audit` feature).
//!
//! The static lint pass (`apm-audit`) keeps nondeterminism *sources* out
//! of the kernel; this module is the dynamic complement — it rides along
//! inside [`crate::Engine`] when the crate is built with
//! `--features audit` and checks, on every event pop:
//!
//! * **virtual-time monotonicity** — the clock never moves backwards;
//! * **deterministic FIFO tie-breaking** — events popped at the same
//!   timestamp come out in strictly increasing submission-sequence
//!   order, so equal-time ties always resolve in submission order;
//! * **op conservation** — every top-level submission produces exactly
//!   one [`crate::Completion`] (Ok, Failed, TimedOut, or Cancelled),
//!   verified
//!   incrementally (completions never exceed issues) and exactly at
//!   drain via [`KernelAuditor::assert_conserved`];
//! * **fault causality** — no *new* service ever begins on a crashed
//!   resource (requests already in service when a node dies finish
//!   legitimately — they left the node before it died — so the
//!   checkable invariant is at service start, not completion).
//!
//! The auditor also folds every `(time, seq)` pop into a rolling
//! fingerprint; two runs of the same seeded workload must produce equal
//! fingerprints, giving a cross-run determinism check that sees every
//! single event, not just the aggregate results.
//!
//! All checks `panic!` on violation: an invariant breach means the
//! simulation's results are meaningless, and the feature is opt-in.

use crate::time::SimTime;
use apm_core::snap::{SnapError, SnapReader, SnapWriter};

/// Per-engine invariant state; embedded in [`crate::Engine`] behind the
/// `audit` feature.
#[derive(Clone, Debug, Default)]
pub struct KernelAuditor {
    /// Time and sequence number of the previous event pop.
    last_pop: Option<(SimTime, u64)>,
    /// Total events popped.
    pops: u64,
    /// FNV-style rolling hash of every popped `(time, seq)` pair.
    fingerprint: u64,
    /// Top-level executions allocated (each owes one completion).
    issued: u64,
    /// Completions emitted.
    completed: u64,
}

impl KernelAuditor {
    /// Records one event pop; panics on a monotonicity or tie-break
    /// violation.
    pub(crate) fn on_pop(&mut self, at: SimTime, seq: u64) {
        if let Some((last_at, last_seq)) = self.last_pop {
            assert!(
                at >= last_at,
                "kernel audit: time went backwards ({} -> {} ns)",
                last_at.as_nanos(),
                at.as_nanos()
            );
            assert!(
                at > last_at || seq > last_seq,
                "kernel audit: FIFO tie-break violated at t={} ns (seq {} after {})",
                at.as_nanos(),
                seq,
                last_seq
            );
        }
        self.last_pop = Some((at, seq));
        self.pops += 1;
        self.fingerprint = self.fingerprint.wrapping_mul(0x0000_0100_0000_01b3)
            ^ at.as_nanos().wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ seq;
    }

    /// Records a top-level execution allocation.
    pub(crate) fn on_issue(&mut self) {
        self.issued += 1;
    }

    /// Records an emitted completion; panics if completions ever exceed
    /// issues (an op completed twice or out of thin air).
    pub(crate) fn on_complete(&mut self) {
        self.completed += 1;
        assert!(
            self.completed <= self.issued,
            "kernel audit: {} completions for {} issued ops",
            self.completed,
            self.issued
        );
    }

    /// Asserts full op conservation. Valid once the engine is drained
    /// (no pending events, no plans parked behind a stalled resource):
    /// every issued op must have completed exactly once.
    pub fn assert_conserved(&self) {
        assert_eq!(
            self.issued, self.completed,
            "kernel audit: {} ops issued but {} completed at drain",
            self.issued, self.completed
        );
    }

    /// Events popped so far.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Rolling hash of every `(time, seq)` event pop. Equal seeds must
    /// yield equal fingerprints across runs.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Top-level ops issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Completions emitted so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Serializes the auditor so a resumed run continues the rolling
    /// fingerprint and conservation counters instead of restarting them.
    pub fn snap_state(&self, w: &mut SnapWriter) {
        w.put(&self.last_pop);
        w.put_u64(self.pops);
        w.put_u64(self.fingerprint);
        w.put_u64(self.issued);
        w.put_u64(self.completed);
    }

    /// Rebuilds an auditor from [`KernelAuditor::snap_state`] bytes.
    pub fn restore_state(r: &mut SnapReader) -> Result<KernelAuditor, SnapError> {
        Ok(KernelAuditor {
            last_pop: r.get()?,
            pops: r.u64()?,
            fingerprint: r.u64()?,
            issued: r.u64()?,
            completed: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime(ns)
    }

    #[test]
    fn monotone_pops_are_accepted() {
        let mut a = KernelAuditor::default();
        a.on_pop(t(10), 0);
        a.on_pop(t(10), 3);
        a.on_pop(t(20), 1);
        assert_eq!(a.pops(), 3);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn backwards_time_panics() {
        let mut a = KernelAuditor::default();
        a.on_pop(t(20), 0);
        a.on_pop(t(10), 1);
    }

    #[test]
    #[should_panic(expected = "FIFO tie-break violated")]
    fn tie_break_regression_panics() {
        let mut a = KernelAuditor::default();
        a.on_pop(t(10), 5);
        a.on_pop(t(10), 2);
    }

    #[test]
    #[should_panic(expected = "completions")]
    fn completion_without_issue_panics() {
        let mut a = KernelAuditor::default();
        a.on_complete();
    }

    #[test]
    fn conservation_balances() {
        let mut a = KernelAuditor::default();
        a.on_issue();
        a.on_issue();
        a.on_complete();
        a.on_complete();
        a.assert_conserved();
    }

    #[test]
    #[should_panic(expected = "issued but")]
    fn unbalanced_drain_panics() {
        let mut a = KernelAuditor::default();
        a.on_issue();
        a.assert_conserved();
    }

    #[test]
    fn fingerprint_depends_on_order() {
        let mut a = KernelAuditor::default();
        a.on_pop(t(10), 0);
        a.on_pop(t(10), 1);
        let mut b = KernelAuditor::default();
        b.on_pop(t(10), 0);
        b.on_pop(t(11), 1);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = KernelAuditor::default();
        c.on_pop(t(10), 0);
        c.on_pop(t(10), 1);
        assert_eq!(a.fingerprint(), c.fingerprint());
    }
}
