//! Rotational disk service-time model.
//!
//! Both paper clusters used 74 GB SATA disks (Cluster M: two in RAID 0,
//! Cluster D: one). We model a 2012-era 7200 rpm drive: a random access
//! pays an average positioning time (seek + half-rotation), sequential
//! access streams at the sustained transfer rate. RAID 0 is modelled as a
//! resource with one server per spindle — requests stripe across drives,
//! doubling the sustainable IOPS but not shortening an individual access.

use crate::time::SimDuration;

/// Access pattern of a disk request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoPattern {
    /// Random access: pays positioning time plus transfer.
    Random,
    /// Sequential access (log appends, compaction streams): transfer only.
    Sequential,
}

/// Physical characteristics of one spindle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskSpec {
    /// Average positioning time for a random access (seek + rotational).
    pub positioning: SimDuration,
    /// Sustained transfer rate in bytes per second.
    pub transfer_bytes_per_sec: u64,
}

impl DiskSpec {
    /// The paper clusters' 74 GB SATA drives: ~8 ms positioning,
    /// ~90 MB/s sustained transfer.
    pub fn sata_2012() -> DiskSpec {
        DiskSpec {
            positioning: SimDuration::from_micros(8_000),
            transfer_bytes_per_sec: 90_000_000,
        }
    }

    /// Service time for one request of `bytes` with the given pattern.
    pub fn service(&self, bytes: u64, pattern: IoPattern) -> SimDuration {
        let transfer_ns =
            (bytes as u128 * 1_000_000_000 / self.transfer_bytes_per_sec.max(1) as u128) as u64;
        match pattern {
            IoPattern::Random => self.positioning + SimDuration::from_nanos(transfer_ns),
            IoPattern::Sequential => SimDuration::from_nanos(transfer_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_io_is_dominated_by_positioning() {
        let d = DiskSpec::sata_2012();
        let small_random = d.service(4_096, IoPattern::Random);
        let small_seq = d.service(4_096, IoPattern::Sequential);
        assert!(small_random.as_nanos() > 8_000_000);
        assert!(small_seq.as_nanos() < 100_000);
        assert!(small_random > small_seq.saturating_mul(10));
    }

    #[test]
    fn sequential_io_scales_with_bytes() {
        let d = DiskSpec::sata_2012();
        let one_mb = d.service(1_000_000, IoPattern::Sequential);
        let ten_mb = d.service(10_000_000, IoPattern::Sequential);
        let ratio = ten_mb.as_nanos() as f64 / one_mb.as_nanos() as f64;
        assert!((ratio - 10.0).abs() < 0.01);
        // 1 MB at 90 MB/s ≈ 11.1 ms.
        assert!((one_mb.as_millis_f64() - 11.11).abs() < 0.1);
    }

    #[test]
    fn zero_byte_sequential_io_is_free() {
        let d = DiskSpec::sata_2012();
        assert_eq!(d.service(0, IoPattern::Sequential), SimDuration::ZERO);
        assert_eq!(d.service(0, IoPattern::Random), d.positioning);
    }
}
