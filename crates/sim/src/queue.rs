//! The kernel's future-event list: a calendar (bucket) queue with a
//! sorted overflow tier.
//!
//! Closed-loop simulation timestamps cluster tightly around the current
//! virtual time — a client completes and immediately schedules its next
//! service a few hundred microseconds out. A binary heap pays `O(log n)`
//! comparisons (and a payload-slab indirection) on every push and pop for
//! a distribution where almost every event lands within a handful of
//! microsecond-scale "days". The [`CalendarQueue`] exploits that: time is
//! divided into fixed-width days (`1 << BUCKET_SHIFT` ns); a wheel of
//! [`NUM_BUCKETS`] sorted day-buckets covers the near future, and the
//! rare far-future event (client think times, long deadlines, fault
//! timers) parks in a `BTreeMap` overflow tier keyed by the same
//! `(time, seq)` order the heap used.
//!
//! The queue preserves the kernel's exact total order — ascending
//! `(SimTime, u64)` with the sequence number breaking time ties in
//! submission order — so every artifact, trace fingerprint, and snapshot
//! byte produced through it is identical to the binary-heap kernel's.
//! The retired heap survives as [`ReferenceQueue`] behind `#[cfg(test)]`,
//! and the equivalence suite drives both through seeded mixed schedules.
//!
//! # Order invariants
//!
//! - Every queued entry is `>= now`: the kernel only schedules into the
//!   future, and `cursor_day` trails the day of the last popped wheel
//!   entry, so pushes never land behind the cursor.
//! - Wheel entries live in days `[cursor_day, cursor_day + NUM_BUCKETS)`.
//!   The window is exactly `NUM_BUCKETS` days long, so two distinct live
//!   days can never collide in one bucket.
//! - The overflow tier may hold entries whose day has since entered the
//!   wheel window (the cursor advanced after they were parked), so `pop`
//!   and `peek` always compare the wheel candidate against the overflow
//!   head; `cursor_day` is only committed forward when the wheel entry
//!   actually wins. When the wheel drains, the cursor jumps to the first
//!   overflow day and every overflow entry inside the new window migrates
//!   into (empty) buckets in one sorted pass.

use crate::time::SimTime;
use std::collections::BTreeMap;

/// Width of one calendar day in nanoseconds, as a shift: `1 << 15` ns
/// ≈ 32.8 µs. Chosen so closed-loop service times (tens to hundreds of
/// microseconds) spread over a few adjacent buckets instead of piling
/// into one.
const BUCKET_SHIFT: u32 = 15;

/// Number of day-buckets in the wheel; the near-future horizon is
/// `NUM_BUCKETS << BUCKET_SHIFT` ns ≈ 33.6 ms of virtual time.
const NUM_BUCKETS: usize = 1024;

const WHEEL_DAYS: u64 = NUM_BUCKETS as u64;

/// Day index of a timestamp.
#[inline]
fn day_of(at: SimTime) -> u64 {
    at.as_nanos() >> BUCKET_SHIFT
}

/// One day-bucket: entries sorted ascending by `(time, seq)`, with a head
/// cursor over the already-popped prefix so a pop is an index bump, not a
/// front removal.
#[derive(Debug)]
struct Bucket<T> {
    entries: Vec<(SimTime, u64, T)>,
    head: usize,
}

impl<T> Bucket<T> {
    fn new() -> Self {
        Bucket {
            entries: Vec::new(),
            head: 0,
        }
    }

    #[inline]
    fn is_drained(&self) -> bool {
        self.head == self.entries.len()
    }
}

/// Calendar queue over `(SimTime, u64, T)` entries; see the module docs
/// for the ordering invariants.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    buckets: Vec<Bucket<T>>,
    /// Day of the earliest possibly-occupied wheel bucket. Advances only
    /// when a wheel entry is popped as the global minimum.
    cursor_day: u64,
    /// Live (unpopped) entries currently in the wheel.
    wheel_len: usize,
    /// Far-future tier, keyed by the total order itself.
    overflow: BTreeMap<(SimTime, u64), T>,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Bucket::new()).collect(),
            cursor_day: 0,
            wheel_len: 0,
            overflow: BTreeMap::new(),
        }
    }
}

impl<T: Copy> CalendarQueue<T> {
    pub fn new() -> Self {
        CalendarQueue::default()
    }

    /// Total queued entries across both tiers.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    pub fn is_empty(&self) -> bool {
        self.wheel_len == 0 && self.overflow.is_empty()
    }

    /// Queues `payload` at `(at, seq)`. `seq` values must be unique (the
    /// kernel's submission counter guarantees it) and `at` must be on or
    /// after the time of the last popped entry.
    #[inline]
    pub fn push(&mut self, at: SimTime, seq: u64, payload: T) {
        let day = day_of(at);
        debug_assert!(day >= self.cursor_day, "push behind the wheel cursor");
        if day - self.cursor_day < WHEEL_DAYS {
            let bucket = &mut self.buckets[(day % WHEEL_DAYS) as usize];
            debug_assert!(
                bucket.is_drained() || day_of(bucket.entries[bucket.head].0) == day,
                "bucket day collision"
            );
            // Events are overwhelmingly scheduled in near-monotone order
            // within a day, so appending is the common case; otherwise a
            // binary search keeps the bucket sorted.
            let key = (at, seq);
            match bucket.entries.last() {
                Some(last) if (last.0, last.1) > key => {
                    let pos = bucket.entries.partition_point(|e| (e.0, e.1) < key);
                    debug_assert!(pos >= bucket.head, "insert into the popped prefix");
                    bucket.entries.insert(pos, (at, seq, payload));
                }
                _ => bucket.entries.push((at, seq, payload)),
            }
            self.wheel_len += 1;
        } else {
            self.overflow.insert((at, seq), payload);
        }
    }

    /// Day and bucket index of the first occupied wheel bucket at or
    /// after `cursor_day`. Caller guarantees `wheel_len > 0`.
    #[inline]
    fn scan_wheel(&self) -> (u64, usize) {
        let mut day = self.cursor_day;
        loop {
            let idx = (day % WHEEL_DAYS) as usize;
            if !self.buckets[idx].is_drained() {
                return (day, idx);
            }
            day += 1;
        }
    }

    /// Jumps the drained wheel to the first overflow day and migrates
    /// every overflow entry inside the new window. Caller guarantees the
    /// wheel is empty and the overflow is not.
    fn migrate_overflow(&mut self) {
        let first = self
            .overflow
            .keys()
            .next()
            .expect("migrate_overflow called with a non-empty overflow tier");
        self.cursor_day = day_of(first.0);
        while let Some(entry) = self.overflow.first_entry() {
            let (at, seq) = *entry.key();
            if day_of(at) - self.cursor_day >= WHEEL_DAYS {
                break;
            }
            let payload = entry.remove();
            // BTreeMap drains in ascending (time, seq) order, so plain
            // appends keep every target bucket sorted; a bucket receives
            // either nothing or a run of same-day entries.
            let bucket = &mut self.buckets[(day_of(at) % WHEEL_DAYS) as usize];
            debug_assert!(
                bucket.head == 0
                    && bucket
                        .entries
                        .last()
                        .is_none_or(|last| day_of(last.0) == day_of(at)),
                "migration into a non-empty foreign bucket"
            );
            bucket.entries.push((at, seq, payload));
            self.wheel_len += 1;
        }
    }

    /// Removes and returns the globally smallest `(time, seq)` entry.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.wheel_len == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.migrate_overflow();
        }
        let (day, idx) = self.scan_wheel();
        let candidate = {
            let bucket = &self.buckets[idx];
            bucket.entries[bucket.head]
        };
        // An overflow entry parked before the cursor advanced can now be
        // earlier than everything in the wheel; the cursor must NOT move
        // when the overflow head wins, or later pushes into the skipped
        // days would land behind it and never be scanned.
        if let Some((&(at, seq), _)) = self.overflow.first_key_value() {
            if (at, seq) < (candidate.0, candidate.1) {
                let ((at, seq), payload) = self
                    .overflow
                    .pop_first()
                    .expect("overflow head observed above");
                return Some((at, seq, payload));
            }
        }
        self.cursor_day = day;
        let bucket = &mut self.buckets[idx];
        bucket.head += 1;
        if bucket.is_drained() {
            bucket.entries.clear();
            bucket.head = 0;
        }
        self.wheel_len -= 1;
        Some(candidate)
    }

    /// The `(time, seq)` key of the next entry [`CalendarQueue::pop`]
    /// would return, without disturbing the cursor.
    #[inline]
    pub fn peek(&self) -> Option<(SimTime, u64)> {
        let wheel = (self.wheel_len > 0).then(|| {
            let (_, idx) = self.scan_wheel();
            let bucket = &self.buckets[idx];
            let (at, seq, _) = bucket.entries[bucket.head];
            (at, seq)
        });
        let overflow = self.overflow.keys().next().copied();
        match (wheel, overflow) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    /// Every queued entry in ascending `(time, seq)` order — the
    /// snapshot codec's canonical wire order.
    pub fn sorted_entries(&self) -> Vec<(SimTime, u64, T)> {
        let mut out: Vec<(SimTime, u64, T)> = Vec::with_capacity(self.len());
        for bucket in &self.buckets {
            out.extend_from_slice(&bucket.entries[bucket.head..]);
        }
        out.extend(self.overflow.iter().map(|(&(at, seq), &p)| (at, seq, p)));
        out.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        out
    }

    /// Replaces the queue's contents from a snapshot: `entries` hold the
    /// future-event list (all at or after `now`, the restored clock),
    /// and the cursor re-anchors at `now`'s day.
    pub fn rebuild(&mut self, now: SimTime, entries: Vec<(SimTime, u64, T)>) {
        for bucket in &mut self.buckets {
            bucket.entries.clear();
            bucket.head = 0;
        }
        self.overflow.clear();
        self.wheel_len = 0;
        self.cursor_day = day_of(now);
        for (at, seq, payload) in entries {
            self.push(at, seq, payload);
        }
    }
}

/// The retired binary-heap future-event list, bug-for-bug: a
/// `BinaryHeap` of `(time, seq, payload-slot)` with an `Option`-slab
/// payload store and a free list. Kept solely as the oracle for the
/// calendar-queue equivalence suite.
#[cfg(test)]
#[derive(Debug, Default)]
pub struct ReferenceQueue<T> {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, usize)>>,
    payloads: Vec<Option<T>>,
    free_payloads: Vec<usize>,
}

#[cfg(test)]
impl<T: Copy> ReferenceQueue<T> {
    pub fn new() -> Self {
        ReferenceQueue {
            heap: std::collections::BinaryHeap::new(),
            payloads: Vec::new(),
            free_payloads: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn push(&mut self, at: SimTime, seq: u64, payload: T) {
        let slot = if let Some(i) = self.free_payloads.pop() {
            self.payloads[i] = Some(payload);
            i
        } else {
            self.payloads.push(Some(payload));
            self.payloads.len() - 1
        };
        self.heap.push(std::cmp::Reverse((at, seq, slot)));
    }

    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let std::cmp::Reverse((at, seq, slot)) = self.heap.pop()?;
        let payload = self.payloads[slot].take().expect("payload present");
        self.free_payloads.push(slot);
        Some((at, seq, payload))
    }

    pub fn peek(&self) -> Option<(SimTime, u64)> {
        self.heap
            .peek()
            .map(|std::cmp::Reverse((at, seq, _))| (*at, *seq))
    }

    pub fn sorted_entries(&self) -> Vec<(SimTime, u64, T)> {
        let mut out: Vec<(SimTime, u64, T)> = self
            .heap
            .iter()
            .map(|std::cmp::Reverse((at, seq, slot))| {
                (
                    *at,
                    *seq,
                    self.payloads[*slot].expect("live heap entry has a payload"),
                )
            })
            .collect();
        out.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        out
    }

    pub fn rebuild(&mut self, _now: SimTime, entries: Vec<(SimTime, u64, T)>) {
        self.heap.clear();
        self.payloads.clear();
        self.free_payloads.clear();
        for (at, seq, payload) in entries {
            self.push(at, seq, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Deterministic xorshift for schedule generation — no ambient
    /// randomness in sim tests.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(t(500), 0, 'a');
        q.push(t(100), 1, 'b');
        q.push(t(500), 2, 'c');
        q.push(t(100), 3, 'd');
        let order: Vec<char> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!['b', 'd', 'a', 'c']);
    }

    #[test]
    fn far_future_entries_round_trip_through_the_overflow_tier() {
        let mut q = CalendarQueue::new();
        let far = t((NUM_BUCKETS as u64 + 7) << BUCKET_SHIFT);
        q.push(far, 0, 'z');
        assert_eq!(q.len(), 1);
        q.push(t(10), 1, 'a');
        assert_eq!(q.pop(), Some((t(10), 1, 'a')));
        assert_eq!(q.pop(), Some((far, 0, 'z')));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_entry_overtaken_by_the_cursor_still_pops_in_order() {
        // Park an entry beyond the horizon, advance the cursor until the
        // parked day is inside the window, then add a wheel entry in the
        // same day but later in time: the overflow head must win and the
        // cursor must not advance past days that can still receive work.
        let mut q = CalendarQueue::new();
        let day = NUM_BUCKETS as u64 + 100;
        let parked = t(day << BUCKET_SHIFT);
        q.push(parked, 0, 'o');
        // Advance the cursor to day 200 by popping a wheel entry there.
        q.push(t(200 << BUCKET_SHIFT), 1, 'x');
        assert_eq!(q.pop(), Some((t(200 << BUCKET_SHIFT), 1, 'x')));
        // `day` is now within [200, 200 + 1024): a push lands in the wheel.
        q.push(t((day << BUCKET_SHIFT) + 50), 2, 'w');
        assert_eq!(q.pop(), Some((parked, 0, 'o')), "overflow head is older");
        // Work can still be pushed into days before `day`.
        q.push(t((day << BUCKET_SHIFT) + 10), 3, 'y');
        assert_eq!(q.pop(), Some((t((day << BUCKET_SHIFT) + 10), 3, 'y')));
        assert_eq!(q.pop(), Some((t((day << BUCKET_SHIFT) + 50), 2, 'w')));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_matches_pop_and_does_not_disturb_order() {
        let mut q = CalendarQueue::new();
        let mut rng = Rng(42);
        for seq in 0..500u64 {
            let at = t(rng.next() % 50_000_000);
            q.push(at, seq, seq);
        }
        while let Some(head) = q.peek() {
            let (at, seq, _) = q.pop().expect("peek saw an entry");
            assert_eq!(head, (at, seq));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_pushes_and_pops_match_the_reference_queue() {
        let mut cal = CalendarQueue::new();
        let mut reference = ReferenceQueue::new();
        let mut rng = Rng(7);
        let mut now = 0u64;
        let mut seq = 0u64;
        for _ in 0..5_000 {
            match rng.next() % 5 {
                // Bias toward pushes; delays span sub-day to far-overflow.
                0..=2 => {
                    let delta = match rng.next() % 4 {
                        0 => rng.next() % 1_000,
                        1 => rng.next() % 500_000,
                        2 => rng.next() % 40_000_000,
                        _ => rng.next() % 10_000_000_000,
                    };
                    let at = t(now + delta);
                    cal.push(at, seq, seq);
                    reference.push(at, seq, seq);
                    seq += 1;
                }
                _ => {
                    let got = cal.pop();
                    assert_eq!(got, reference.pop());
                    if let Some((at, _, _)) = got {
                        now = at.as_nanos();
                    }
                }
            }
            assert_eq!(cal.len(), reference.len());
        }
        loop {
            let got = cal.pop();
            assert_eq!(got, reference.pop());
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn sorted_entries_and_rebuild_round_trip() {
        let mut q = CalendarQueue::new();
        let mut rng = Rng(11);
        for seq in 0..300u64 {
            q.push(t(rng.next() % 100_000_000), seq, seq);
        }
        // Pop a prefix so buckets carry head cursors.
        let mut popped = 0;
        let mut now = t(0);
        while popped < 120 {
            now = q.pop().expect("entries remain").0;
            popped += 1;
        }
        let entries = q.sorted_entries();
        assert_eq!(entries.len(), q.len());
        assert!(entries
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        let mut rebuilt = CalendarQueue::new();
        rebuilt.rebuild(now, entries.clone());
        assert_eq!(rebuilt.sorted_entries(), entries);
        let a: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| rebuilt.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn same_bucket_out_of_order_insert_stays_sorted() {
        let mut q = CalendarQueue::new();
        q.push(t(900), 0, 'c');
        q.push(t(100), 1, 'a');
        q.push(t(500), 2, 'b');
        q.push(t(900), 3, 'd');
        let order: Vec<char> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
    }
}
