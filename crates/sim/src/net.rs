//! Network service-time model.
//!
//! Both clusters connect their nodes *"with a gigabit ethernet network
//! over a single switch"* (§3). We model: a per-message one-way latency
//! (NIC + kernel + JVM client stack of the era) plus serialisation time at
//! gigabit bandwidth. The switch is non-blocking (pure delay); the NIC is
//! the queued resource.

use crate::time::SimDuration;

/// Characteristics of the cluster interconnect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetSpec {
    /// One-way message latency (propagation + stack overhead).
    pub one_way_latency: SimDuration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl NetSpec {
    /// Gigabit Ethernet through one switch, with 2012 Java networking
    /// stacks on both ends: ~80 µs one way (Voldemort's measured 230 µs
    /// end-to-end read latency on an unloaded path, §5.1, bounds the RTT
    /// below ~200 µs), 125 MB/s.
    pub fn gigabit_2012() -> NetSpec {
        NetSpec {
            one_way_latency: SimDuration::from_micros(80),
            bandwidth_bytes_per_sec: 125_000_000,
        }
    }

    /// Time to push `bytes` through the link (NIC occupancy).
    pub fn transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(
            (bytes as u128 * 1_000_000_000 / self.bandwidth_bytes_per_sec.max(1) as u128) as u64,
        )
    }

    /// One-way message cost: latency + transfer (used as a pure delay when
    /// NIC queueing is negligible for small messages).
    pub fn message(&self, bytes: u64) -> SimDuration {
        self.one_way_latency + self.transfer(bytes)
    }

    /// Request/response round trip carrying `req_bytes` and `resp_bytes`.
    pub fn round_trip(&self, req_bytes: u64, resp_bytes: u64) -> SimDuration {
        self.message(req_bytes) + self.message(resp_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_messages_are_latency_bound() {
        let n = NetSpec::gigabit_2012();
        let m = n.message(100);
        assert!(m.as_nanos() >= 80_000);
        assert!(m.as_nanos() < 90_000);
    }

    #[test]
    fn large_transfers_are_bandwidth_bound() {
        let n = NetSpec::gigabit_2012();
        // 125 MB at 125 MB/s = 1 s.
        assert!((n.transfer(125_000_000).as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn round_trip_is_two_messages() {
        let n = NetSpec::gigabit_2012();
        assert_eq!(n.round_trip(100, 100), n.message(100) + n.message(100));
    }
}
