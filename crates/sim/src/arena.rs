//! Slab/arena storage for executing plans, with structural interning.
//!
//! The kernel used to move every submitted [`Plan`]'s `Vec<Step>` into
//! its exec slot and recursively steal `Join { branches }` vectors when
//! spawning children — one heap allocation per plan and per branch, all
//! churned at the simulator's hottest rate. The [`PlanArena`] replaces
//! that with flat storage: plan steps live in one contiguous
//! [`FlatStep`] arena, `Join` steps reference their branches as an index
//! range into a shared child table, and every plan is addressed by a
//! generation-checked [`PlanId`] so a stale id (to a freed and reused
//! slot) is detectably inert rather than silently aliased.
//!
//! **Interning.** Stores submit the same plan *shapes* over and over —
//! the read path of a given store on a given topology differs between
//! ops only when cost receipts differ. `intern` hashes the structural
//! content of a plan (FNV-1a over step tags and payloads, recursing into
//! join branches) and reuses the existing record on a structural match,
//! so a repeated shape costs one hash walk and zero allocations per
//! submission. The intern table is bounded ([`PlanArena::DEFAULT_INTERN_CAP`]):
//! shapes beyond the cap become *transient* — reference-counted and
//! freed back to exact-size free lists when their last exec finishes, so
//! receipt-dependent plan shapes cannot grow the arena without bound.
//!
//! **Lifetime rules.** A plan record's reference count is held by (a)
//! the intern table, permanently, for interned records; (b) each parent
//! `Join` step, for each child record it references (tree edges); and
//! (c) each exec running the plan (the kernel retains on spawn and
//! releases on finish). A quorum straggler therefore keeps its branch
//! sub-plan alive after its parent's plan tree is freed.

use crate::kernel::ResourceId;
use crate::plan::{Plan, Step};
use crate::time::SimDuration;
use std::collections::BTreeMap;

/// Generation-checked handle to a plan record in the arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanId {
    idx: u32,
    generation: u32,
}

impl PlanId {
    /// Sentinel for "no plan" (dead exec slots).
    pub const NONE: PlanId = PlanId {
        idx: u32::MAX,
        generation: 0,
    };

    pub fn is_none(self) -> bool {
        self.idx == u32::MAX
    }
}

/// One step of a flattened plan. `Copy`, fixed-size: `Join` branches are
/// an index range into the arena's child table instead of owned vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlatStep {
    Acquire {
        resource: ResourceId,
        service: SimDuration,
    },
    Delay(SimDuration),
    AlignTo {
        period: SimDuration,
        extra: SimDuration,
    },
    Join {
        /// Start of the branch ids in the arena's child table.
        first_child: u32,
        /// Number of branches.
        children: u32,
        /// Completion quorum (clamped to `children` at execution time,
        /// stored raw so materialization is lossless).
        need: u32,
    },
    Fail {
        latency: SimDuration,
    },
}

#[derive(Debug)]
struct PlanRec {
    first_step: u32,
    step_len: u32,
    /// Owners: intern table (for interned records) + parent join edges +
    /// running execs.
    rc: u32,
    generation: u32,
    interned: bool,
    live: bool,
}

const TABLE_SLOTS: usize = 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Flat plan storage; see the module docs for the interning and
/// lifetime rules.
#[derive(Debug)]
pub struct PlanArena {
    steps: Vec<FlatStep>,
    children: Vec<PlanId>,
    recs: Vec<PlanRec>,
    free_recs: Vec<u32>,
    /// Exact-size free lists: range length → start indices, reused LIFO.
    free_steps: BTreeMap<u32, Vec<u32>>,
    free_children: BTreeMap<u32, Vec<u32>>,
    /// Structural intern table: fixed slots chained as (hash, id) pairs.
    /// Never iterated, so bucket order cannot leak into event order.
    table: Vec<Vec<(u64, PlanId)>>,
    interned: usize,
    intern_cap: usize,
}

impl Default for PlanArena {
    fn default() -> Self {
        PlanArena::new()
    }
}

impl PlanArena {
    /// Default bound on distinct interned shapes; beyond it, new shapes
    /// become transient (refcounted, freed at last release).
    pub const DEFAULT_INTERN_CAP: usize = 4096;

    pub fn new() -> Self {
        PlanArena::with_intern_cap(PlanArena::DEFAULT_INTERN_CAP)
    }

    /// An arena with a custom intern bound; `0` makes every plan
    /// transient (used by the stale-id regression tests).
    pub fn with_intern_cap(intern_cap: usize) -> Self {
        PlanArena {
            steps: Vec::new(),
            children: Vec::new(),
            recs: Vec::new(),
            free_recs: Vec::new(),
            free_steps: BTreeMap::new(),
            free_children: BTreeMap::new(),
            table: (0..TABLE_SLOTS).map(|_| Vec::new()).collect(),
            interned: 0,
            intern_cap,
        }
    }

    /// True while `id` refers to the record it was created for.
    pub fn is_current(&self, id: PlanId) -> bool {
        !id.is_none()
            && (id.idx as usize) < self.recs.len()
            && self.recs[id.idx as usize].live
            && self.recs[id.idx as usize].generation == id.generation
    }

    /// Number of top-level steps of `id`'s plan.
    #[inline]
    pub fn step_len(&self, id: PlanId) -> u32 {
        debug_assert!(self.is_current(id), "step_len on a stale PlanId");
        self.recs[id.idx as usize].step_len
    }

    /// Step `pc` of `id`'s plan (caller keeps `pc < step_len`).
    #[inline]
    pub fn step(&self, id: PlanId, pc: u32) -> FlatStep {
        debug_assert!(self.is_current(id), "step on a stale PlanId");
        let rec = &self.recs[id.idx as usize];
        debug_assert!(pc < rec.step_len);
        self.steps[(rec.first_step + pc) as usize]
    }

    /// Branch id at `slot` in the child table (from a `FlatStep::Join`).
    #[inline]
    pub fn child(&self, slot: u32) -> PlanId {
        self.children[slot as usize]
    }

    /// Adds an owner to `id`'s record (e.g. a child exec being spawned).
    #[inline]
    pub fn retain(&mut self, id: PlanId) {
        debug_assert!(self.is_current(id), "retain on a stale PlanId");
        self.recs[id.idx as usize].rc += 1;
    }

    /// Drops one owner; a transient record whose count reaches zero is
    /// freed (releasing its join-edge references recursively) and its
    /// slot generation advances, invalidating outstanding ids.
    pub fn release(&mut self, id: PlanId) {
        debug_assert!(self.is_current(id), "release on a stale PlanId");
        let rec = &mut self.recs[id.idx as usize];
        rec.rc -= 1;
        if rec.rc == 0 {
            debug_assert!(!rec.interned, "intern table ref keeps rc positive");
            self.free_rec(id.idx);
        }
    }

    /// Returns the id of a record structurally equal to `plan`, creating
    /// (and, under the cap, interning) it if absent. The returned id
    /// carries one owner reference for the caller.
    pub fn intern(&mut self, plan: &Plan) -> PlanId {
        self.intern_steps(&plan.0)
    }

    fn intern_steps(&mut self, steps: &[Step]) -> PlanId {
        let hash = hash_steps(steps);
        let slot = (hash as usize) & (TABLE_SLOTS - 1);
        let mut found = PlanId::NONE;
        for &(entry_hash, id) in &self.table[slot] {
            if entry_hash == hash && self.plan_equals(id, steps) {
                found = id;
                break;
            }
        }
        if !found.is_none() {
            self.recs[found.idx as usize].rc += 1;
            return found;
        }
        let id = self.build(steps);
        if self.interned < self.intern_cap {
            self.recs[id.idx as usize].rc += 1;
            self.recs[id.idx as usize].interned = true;
            self.table[slot].push((hash, id));
            self.interned += 1;
        }
        id
    }

    /// Structural equality between an arena record and a step slice.
    fn plan_equals(&self, id: PlanId, steps: &[Step]) -> bool {
        let rec = &self.recs[id.idx as usize];
        if rec.step_len as usize != steps.len() {
            return false;
        }
        for (i, step) in steps.iter().enumerate() {
            let flat = self.steps[(rec.first_step + i as u32) as usize];
            let matches = match (flat, step) {
                (
                    FlatStep::Acquire { resource, service },
                    Step::Acquire {
                        resource: r,
                        service: s,
                    },
                ) => resource == *r && service == *s,
                (FlatStep::Delay(d), Step::Delay(e)) => d == *e,
                (
                    FlatStep::AlignTo { period, extra },
                    Step::AlignTo {
                        period: p,
                        extra: x,
                    },
                ) => period == *p && extra == *x,
                (
                    FlatStep::Join {
                        first_child,
                        children,
                        need,
                    },
                    Step::Join { branches, need: n },
                ) => {
                    children as usize == branches.len()
                        && need as usize == *n
                        && branches.iter().enumerate().all(|(k, branch)| {
                            self.plan_equals(self.child(first_child + k as u32), &branch.0)
                        })
                }
                (FlatStep::Fail { latency }, Step::Fail { latency: l }) => latency == *l,
                (
                    FlatStep::Acquire { .. }
                    | FlatStep::Delay(_)
                    | FlatStep::AlignTo { .. }
                    | FlatStep::Join { .. }
                    | FlatStep::Fail { .. },
                    Step::Acquire { .. }
                    | Step::Delay(_)
                    | Step::AlignTo { .. }
                    | Step::Join { .. }
                    | Step::Fail { .. },
                ) => false,
            };
            if !matches {
                return false;
            }
        }
        true
    }

    /// Builds a fresh (transient) record for `steps`, interning branch
    /// sub-plans recursively. The record starts with `rc == 1` (the
    /// caller's reference).
    fn build(&mut self, steps: &[Step]) -> PlanId {
        let mut flats: Vec<FlatStep> = Vec::with_capacity(steps.len());
        for step in steps {
            let flat = match step {
                Step::Acquire { resource, service } => FlatStep::Acquire {
                    resource: *resource,
                    service: *service,
                },
                Step::Delay(d) => FlatStep::Delay(*d),
                Step::AlignTo { period, extra } => FlatStep::AlignTo {
                    period: *period,
                    extra: *extra,
                },
                Step::Join { branches, need } => {
                    let ids: Vec<PlanId> =
                        branches.iter().map(|b| self.intern_steps(&b.0)).collect();
                    let first_child = self.alloc_children(&ids);
                    FlatStep::Join {
                        first_child,
                        children: ids.len() as u32,
                        need: *need as u32,
                    }
                }
                Step::Fail { latency } => FlatStep::Fail { latency: *latency },
            };
            flats.push(flat);
        }
        let first_step = self.alloc_steps(&flats);
        let step_len = flats.len() as u32;
        if let Some(idx) = self.free_recs.pop() {
            let rec = &mut self.recs[idx as usize];
            debug_assert!(!rec.live);
            rec.first_step = first_step;
            rec.step_len = step_len;
            rec.rc = 1;
            rec.interned = false;
            rec.live = true;
            PlanId {
                idx,
                generation: rec.generation,
            }
        } else {
            let idx = self.recs.len() as u32;
            self.recs.push(PlanRec {
                first_step,
                step_len,
                rc: 1,
                generation: 0,
                interned: false,
                live: true,
            });
            PlanId { idx, generation: 0 }
        }
    }

    fn alloc_steps(&mut self, flats: &[FlatStep]) -> u32 {
        let len = flats.len() as u32;
        if len == 0 {
            return 0;
        }
        if let Some(start) = self.free_steps.get_mut(&len).and_then(Vec::pop) {
            self.steps[start as usize..(start + len) as usize].copy_from_slice(flats);
            start
        } else {
            let start = self.steps.len() as u32;
            self.steps.extend_from_slice(flats);
            start
        }
    }

    fn alloc_children(&mut self, ids: &[PlanId]) -> u32 {
        let len = ids.len() as u32;
        if len == 0 {
            return 0;
        }
        if let Some(start) = self.free_children.get_mut(&len).and_then(Vec::pop) {
            self.children[start as usize..(start + len) as usize].copy_from_slice(ids);
            start
        } else {
            let start = self.children.len() as u32;
            self.children.extend_from_slice(ids);
            start
        }
    }

    /// Frees record `idx`: releases its join-edge references, returns
    /// its step/child ranges to the exact-size free lists, and advances
    /// the slot generation.
    fn free_rec(&mut self, idx: u32) {
        let (first_step, step_len) = {
            let rec = &mut self.recs[idx as usize];
            rec.live = false;
            rec.generation = rec.generation.wrapping_add(1);
            (rec.first_step, rec.step_len)
        };
        self.free_recs.push(idx);
        for i in 0..step_len {
            if let FlatStep::Join {
                first_child,
                children,
                ..
            } = self.steps[(first_step + i) as usize]
            {
                for k in 0..children {
                    let child = self.children[(first_child + k) as usize];
                    self.release(child);
                }
                if children > 0 {
                    self.free_children
                        .entry(children)
                        .or_default()
                        .push(first_child);
                }
            }
        }
        if step_len > 0 {
            self.free_steps
                .entry(step_len)
                .or_default()
                .push(first_step);
        }
    }

    /// Rebuilds the owned [`Plan`] for `id` — the snapshot codec's view
    /// of an exec's plan. `materialize(intern(p)) == p` for every plan.
    pub fn materialize(&self, id: PlanId) -> Plan {
        debug_assert!(self.is_current(id), "materialize on a stale PlanId");
        let rec = &self.recs[id.idx as usize];
        let mut steps = Vec::with_capacity(rec.step_len as usize);
        for i in 0..rec.step_len {
            let step = match self.steps[(rec.first_step + i) as usize] {
                FlatStep::Acquire { resource, service } => Step::Acquire { resource, service },
                FlatStep::Delay(d) => Step::Delay(d),
                FlatStep::AlignTo { period, extra } => Step::AlignTo { period, extra },
                FlatStep::Join {
                    first_child,
                    children,
                    need,
                } => Step::Join {
                    branches: (0..children)
                        .map(|k| self.materialize(self.child(first_child + k)))
                        .collect(),
                    need: need as usize,
                },
                FlatStep::Fail { latency } => Step::Fail { latency },
            };
            steps.push(step);
        }
        Plan(steps)
    }
}

fn hash_steps(steps: &[Step]) -> u64 {
    let mut h = mix(FNV_OFFSET, steps.len() as u64);
    for step in steps {
        h = match step {
            Step::Acquire { resource, service } => {
                mix(mix(mix(h, 0), u64::from(resource.0)), service.as_nanos())
            }
            Step::Delay(d) => mix(mix(h, 1), d.as_nanos()),
            Step::AlignTo { period, extra } => {
                mix(mix(mix(h, 2), period.as_nanos()), extra.as_nanos())
            }
            Step::Join { branches, need } => {
                let mut j = mix(mix(h, 3), *need as u64);
                for branch in branches {
                    j = mix(j, hash_steps(&branch.0));
                }
                j
            }
            Step::Fail { latency } => mix(mix(h, 4), latency.as_nanos()),
        };
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: ResourceId = ResourceId(0);

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn simple(n: u64) -> Plan {
        Plan::build().acquire(R, us(n)).delay(us(n + 1)).finish()
    }

    fn quorum() -> Plan {
        Plan::build()
            .join_quorum(vec![simple(1), simple(2), simple(3)], 2)
            .delay(us(9))
            .finish()
    }

    #[test]
    fn interning_dedups_repeated_shapes() {
        let mut arena = PlanArena::new();
        let a = arena.intern(&simple(5));
        let b = arena.intern(&simple(5));
        assert_eq!(a, b, "same shape must intern to the same record");
        let c = arena.intern(&simple(6));
        assert_ne!(a, c, "different shapes must not alias");
        assert_eq!(arena.materialize(a), simple(5));
        assert_eq!(arena.materialize(c), simple(6));
    }

    #[test]
    fn materialize_round_trips_nested_joins() {
        let mut arena = PlanArena::new();
        let nested = Plan::build()
            .join_all(vec![quorum(), Plan::empty(), simple(7)])
            .finish();
        let id = arena.intern(&nested);
        assert_eq!(arena.materialize(id), nested);
    }

    #[test]
    fn transient_plans_are_freed_and_ranges_reused() {
        let mut arena = PlanArena::with_intern_cap(0);
        let a = arena.intern(&simple(1));
        let high_water = (arena.steps.len(), arena.recs.len());
        arena.release(a);
        // Same step-count, different payloads: must reuse the freed
        // ranges instead of growing the arena.
        let b = arena.intern(&simple(2));
        assert_eq!((arena.steps.len(), arena.recs.len()), high_water);
        assert_eq!(arena.materialize(b), simple(2));
    }

    #[test]
    fn stale_id_to_a_reused_slot_is_not_current() {
        // The regression the generation counter exists for: a released
        // id whose slot was recycled must be detectably stale, never an
        // alias of the new occupant.
        let mut arena = PlanArena::with_intern_cap(0);
        let stale = arena.intern(&simple(1));
        arena.release(stale);
        let fresh = arena.intern(&simple(2));
        assert_eq!(
            (stale.idx, fresh.idx),
            (0, 0),
            "test premise: the slot is recycled"
        );
        assert!(!arena.is_current(stale), "stale id must be rejected");
        assert!(arena.is_current(fresh));
        assert_eq!(arena.materialize(fresh), simple(2));
    }

    #[test]
    fn straggler_child_survives_parent_release() {
        let mut arena = PlanArena::with_intern_cap(0);
        let parent = arena.intern(&quorum());
        let FlatStep::Join { first_child, .. } = arena.step(parent, 0) else {
            panic!("quorum plan starts with a join");
        };
        let straggler = arena.child(first_child + 2);
        // A child exec holds its own reference while it runs.
        arena.retain(straggler);
        arena.release(parent);
        assert!(
            arena.is_current(straggler),
            "exec-held branch must outlive the parent tree"
        );
        assert_eq!(arena.materialize(straggler), simple(3));
        arena.release(straggler);
        assert!(!arena.is_current(straggler));
    }

    #[test]
    fn interned_plans_survive_release() {
        let mut arena = PlanArena::new();
        let a = arena.intern(&simple(1));
        arena.release(a);
        assert!(arena.is_current(a), "the intern table pins the record");
        let b = arena.intern(&simple(1));
        assert_eq!(a, b);
    }

    #[test]
    fn intern_cap_bounds_the_table() {
        let mut arena = PlanArena::with_intern_cap(2);
        let a = arena.intern(&simple(1));
        let b = arena.intern(&simple(2));
        let c = arena.intern(&simple(3));
        // a and b are interned; c is transient and frees on release.
        arena.release(a);
        arena.release(b);
        assert!(arena.is_current(a) && arena.is_current(b));
        arena.release(c);
        assert!(!arena.is_current(c), "beyond-cap shapes stay transient");
    }

    #[test]
    fn equal_hash_different_shape_does_not_alias() {
        let mut arena = PlanArena::new();
        // Shapes with equal step counts but different payloads share
        // nothing; equality is structural, not hash-only.
        let a = arena.intern(&Plan::build().delay(us(1)).finish());
        let b = arena.intern(&Plan::build().delay(us(2)).finish());
        assert_ne!(a, b);
        assert_eq!(arena.materialize(a), Plan::build().delay(us(1)).finish());
    }
}
