//! Cluster hardware descriptions (§3 of the paper) and per-node resource
//! instantiation.
//!
//! > "Cluster M consists of 16 Linux nodes. Each node has two Intel Xeon
//! > quad core CPUs, 16 GB of RAM, and two 74 GB disks configured in
//! > RAID 0 ... Cluster D consists of a 24 Linux nodes, in which each node
//! > has two Intel Xeon dual core CPUs, 4 GB of RAM and a single 74 GB
//! > disk. The nodes are connected with a gigabit ethernet network over a
//! > single switch."

use crate::disk::DiskSpec;
use crate::kernel::{Engine, ResourceId};
use crate::net::NetSpec;
use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};

/// Hardware of a single server node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeSpec {
    /// CPU cores (Cluster M: 2×4, Cluster D: 2×2).
    pub cores: u32,
    /// Main memory in bytes.
    pub ram_bytes: u64,
    /// Number of data spindles (RAID 0 members count individually).
    pub spindles: u32,
    /// Per-spindle characteristics.
    pub disk: DiskSpec,
}

/// A benchmark cluster: identical nodes plus an interconnect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterSpec {
    /// "M" or "D".
    pub name: &'static str,
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Interconnect.
    pub net: NetSpec,
    /// Physical node count available (M: 16, D: 24); experiments use up
    /// to 12 server nodes, the rest drive the workload (§3).
    pub max_nodes: u32,
}

impl ClusterSpec {
    /// Cluster M — the memory-bound cluster.
    pub fn cluster_m() -> ClusterSpec {
        ClusterSpec {
            name: "M",
            node: NodeSpec {
                cores: 8,
                ram_bytes: 16 * (1 << 30),
                spindles: 2,
                disk: DiskSpec::sata_2012(),
            },
            net: NetSpec::gigabit_2012(),
            max_nodes: 16,
        }
    }

    /// Cluster D — the disk-bound cluster.
    pub fn cluster_d() -> ClusterSpec {
        ClusterSpec {
            name: "D",
            node: NodeSpec {
                cores: 4,
                ram_bytes: 4 * (1 << 30),
                spindles: 1,
                disk: DiskSpec::sata_2012(),
            },
            net: NetSpec::gigabit_2012(),
            max_nodes: 24,
        }
    }

    /// Registers the base resources (CPU pool, disk, NIC) for `n` server
    /// nodes with the engine and returns per-node handles.
    ///
    /// # Panics
    /// Panics if `n` is zero or exceeds the cluster's physical size.
    pub fn instantiate(&self, engine: &mut Engine, n: u32) -> Vec<NodeResources> {
        assert!(n > 0, "cluster needs at least one node");
        assert!(
            n <= self.max_nodes,
            "cluster {} has only {} nodes",
            self.name,
            self.max_nodes
        );
        (0..n)
            .map(|i| NodeResources {
                cpu: engine.add_resource(format!("node{i}.cpu"), self.node.cores),
                disk: engine.add_resource(format!("node{i}.disk"), self.node.spindles),
                nic: engine.add_resource(format!("node{i}.nic"), 1),
            })
            .collect()
    }
}

/// Kernel resource handles for one instantiated node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeResources {
    /// CPU core pool (capacity = cores).
    pub cpu: ResourceId,
    /// Disk (capacity = spindles; RAID 0 stripes requests).
    pub disk: ResourceId,
    /// Network interface (capacity 1).
    pub nic: ResourceId,
}

impl Snap for NodeResources {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.cpu);
        w.put(&self.disk);
        w.put(&self.nic);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(NodeResources {
            cpu: r.get()?,
            disk: r.get()?,
            nic: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_m_matches_paper_hardware() {
        let m = ClusterSpec::cluster_m();
        assert_eq!(m.node.cores, 8, "two quad-core Xeons");
        assert_eq!(m.node.ram_bytes, 16 << 30, "16 GB RAM");
        assert_eq!(m.node.spindles, 2, "two disks in RAID 0");
        assert_eq!(m.max_nodes, 16);
    }

    #[test]
    fn cluster_d_matches_paper_hardware() {
        let d = ClusterSpec::cluster_d();
        assert_eq!(d.node.cores, 4, "two dual-core Xeons");
        assert_eq!(d.node.ram_bytes, 4 << 30, "4 GB RAM");
        assert_eq!(d.node.spindles, 1, "a single 74 GB disk");
        assert_eq!(d.max_nodes, 24);
    }

    #[test]
    fn instantiate_creates_three_resources_per_node() {
        let mut engine = Engine::new();
        let nodes = ClusterSpec::cluster_m().instantiate(&mut engine, 3);
        assert_eq!(nodes.len(), 3);
        let mut all: Vec<ResourceId> = nodes.iter().flat_map(|n| [n.cpu, n.disk, n.nic]).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 9, "resources must be distinct");
        assert_eq!(engine.resource_name(nodes[1].disk), "node1.disk");
    }

    #[test]
    #[should_panic(expected = "only")]
    fn oversubscribing_the_cluster_panics() {
        let mut engine = Engine::new();
        ClusterSpec::cluster_m().instantiate(&mut engine, 17);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_nodes_panics() {
        let mut engine = Engine::new();
        ClusterSpec::cluster_d().instantiate(&mut engine, 0);
    }
}
