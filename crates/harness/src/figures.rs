//! One generator per paper figure.
//!
//! Evaluation artifacts of the paper (see DESIGN.md §3 for the index):
//! Figures 3–14 sweep node counts on Cluster M per workload; Figures
//! 15–16 bound the offered load at 8 nodes; Figure 17 reports disk usage;
//! Figures 18–20 run Cluster D at 8 nodes across workloads. Table 1 is
//! the workload definition.

use crate::experiment::{run_point, run_point_throttled, ExperimentProfile, Point, StoreKind};
use apm_core::driver::Throttle;
use apm_core::ops::OpKind;
use apm_core::report::Table;
use apm_core::workload::{table1, Workload};
use apm_sim::ClusterSpec;

/// Node counts swept on Cluster M (the paper plots 1–12).
pub const NODE_COUNTS: [u32; 5] = [1, 2, 4, 8, 12];
/// Load fractions for the bounded-throughput experiment (§5.6).
pub const LOAD_FRACTIONS: [f64; 6] = [0.5, 0.6, 0.7, 0.8, 0.9, 0.95];
/// Node count used for Figures 15/16 and 18–20.
pub const FIXED_NODES: u32 = 8;

/// What a figure plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    Throughput,
    ReadLatency,
    WriteLatency,
    ScanLatency,
}

impl Metric {
    fn unit(self) -> &'static str {
        match self {
            Metric::Throughput => "ops/sec",
            _ => "ms",
        }
    }

    fn extract(self, point: &Point) -> Option<f64> {
        match self {
            Metric::Throughput => Some(point.throughput()),
            Metric::ReadLatency => point.latency_ms(OpKind::Read),
            Metric::WriteLatency => point.latency_ms(OpKind::Insert),
            Metric::ScanLatency => point.latency_ms(OpKind::Scan),
        }
    }
}

/// Descriptor of one reproducible figure.
#[derive(Clone, Copy, Debug)]
pub struct FigureSpec {
    /// Identifier ("fig3" … "fig20", "table1").
    pub id: &'static str,
    /// The paper's caption.
    pub title: &'static str,
}

/// All reproducible artifacts in paper order.
pub fn all_figures() -> Vec<FigureSpec> {
    vec![
        FigureSpec {
            id: "table1",
            title: "Table 1: Workload specifications",
        },
        FigureSpec {
            id: "fig3",
            title: "Figure 3: Throughput for Workload R",
        },
        FigureSpec {
            id: "fig4",
            title: "Figure 4: Read latency for Workload R",
        },
        FigureSpec {
            id: "fig5",
            title: "Figure 5: Write latency for Workload R",
        },
        FigureSpec {
            id: "fig6",
            title: "Figure 6: Throughput for Workload RW",
        },
        FigureSpec {
            id: "fig7",
            title: "Figure 7: Read latency for Workload RW",
        },
        FigureSpec {
            id: "fig8",
            title: "Figure 8: Write latency for Workload RW",
        },
        FigureSpec {
            id: "fig9",
            title: "Figure 9: Throughput for Workload W",
        },
        FigureSpec {
            id: "fig10",
            title: "Figure 10: Read latency for Workload W",
        },
        FigureSpec {
            id: "fig11",
            title: "Figure 11: Write latency for Workload W",
        },
        FigureSpec {
            id: "fig12",
            title: "Figure 12: Throughput for Workload RS",
        },
        FigureSpec {
            id: "fig13",
            title: "Figure 13: Scan latency for Workload RS",
        },
        FigureSpec {
            id: "fig14",
            title: "Figure 14: Throughput for Workload RSW",
        },
        FigureSpec {
            id: "fig15",
            title: "Figure 15: Read latency for bounded throughput (Workload R, 8 nodes)",
        },
        FigureSpec {
            id: "fig16",
            title: "Figure 16: Write latency for bounded throughput (Workload R, 8 nodes)",
        },
        FigureSpec {
            id: "fig17",
            title: "Figure 17: Disk usage for 10M records/node",
        },
        FigureSpec {
            id: "fig18",
            title: "Figure 18: Throughput for 8 nodes in Cluster D",
        },
        FigureSpec {
            id: "fig19",
            title: "Figure 19: Read latency for 8 nodes in Cluster D",
        },
        FigureSpec {
            id: "fig20",
            title: "Figure 20: Write latency for 8 nodes in Cluster D",
        },
    ]
}

/// Looks up a figure spec by id.
pub fn figure_by_id(id: &str) -> Option<FigureSpec> {
    all_figures()
        .into_iter()
        .find(|f| f.id.eq_ignore_ascii_case(id))
}

/// Generates a figure's table. Unknown ids panic (checked by the CLI).
pub fn generate(id: &str, profile: &ExperimentProfile) -> Table {
    match id.to_ascii_lowercase().as_str() {
        "table1" => table1_table(),
        "fig3" => node_sweep("fig3", &Workload::r(), Metric::Throughput, profile),
        "fig4" => node_sweep("fig4", &Workload::r(), Metric::ReadLatency, profile),
        "fig5" => node_sweep("fig5", &Workload::r(), Metric::WriteLatency, profile),
        "fig6" => node_sweep("fig6", &Workload::rw(), Metric::Throughput, profile),
        "fig7" => node_sweep("fig7", &Workload::rw(), Metric::ReadLatency, profile),
        "fig8" => node_sweep("fig8", &Workload::rw(), Metric::WriteLatency, profile),
        "fig9" => node_sweep("fig9", &Workload::w(), Metric::Throughput, profile),
        "fig10" => node_sweep("fig10", &Workload::w(), Metric::ReadLatency, profile),
        "fig11" => node_sweep("fig11", &Workload::w(), Metric::WriteLatency, profile),
        "fig12" => node_sweep("fig12", &Workload::rs(), Metric::Throughput, profile),
        "fig13" => node_sweep("fig13", &Workload::rs(), Metric::ScanLatency, profile),
        "fig14" => node_sweep("fig14", &Workload::rsw(), Metric::Throughput, profile),
        "fig15" => bounded_latency("fig15", Metric::ReadLatency, profile),
        "fig16" => bounded_latency("fig16", Metric::WriteLatency, profile),
        "fig17" => disk_usage("fig17", profile),
        "fig18" => cluster_d("fig18", Metric::Throughput, profile),
        "fig19" => cluster_d("fig19", Metric::ReadLatency, profile),
        "fig20" => cluster_d("fig20", Metric::WriteLatency, profile),
        other => panic!("unknown figure id {other:?}"),
    }
}

/// Table 1 verbatim.
pub fn table1_table() -> Table {
    let mut t = Table::new("Table 1: Workload specifications", "workload", "%");
    t.columns = vec!["read".into(), "scan".into(), "insert".into()];
    for (name, read, scan, insert) in table1() {
        t.push_row(
            name,
            vec![Some(read as f64), Some(scan as f64), Some(insert as f64)],
        );
    }
    t
}

fn stores_for(workload: &Workload) -> Vec<StoreKind> {
    StoreKind::ALL
        .into_iter()
        .filter(|k| !workload.mix.has_scans() || k.supports_scans())
        .collect()
}

/// Figures 3–14: sweep node counts for one workload on Cluster M.
pub fn node_sweep(
    id: &str,
    workload: &Workload,
    metric: Metric,
    profile: &ExperimentProfile,
) -> Table {
    let spec = figure_by_id(id).expect("known figure");
    let stores = stores_for(workload);
    let mut table = Table::new(spec.title, "nodes", metric.unit());
    table.columns = stores.iter().map(|s| s.name().to_string()).collect();
    for &nodes in &NODE_COUNTS {
        let cells = stores
            .iter()
            .map(|&store| {
                let point = run_point(store, ClusterSpec::cluster_m(), nodes, workload, profile);
                metric.extract(&point)
            })
            .collect();
        table.push_row(&nodes.to_string(), cells);
    }
    table
}

/// Figures 15/16: latency vs bounded load at 8 nodes, Workload R,
/// normalised to the latency at 100 % load (the paper plots normalised
/// latency). VoltDB is omitted (footnote 8).
pub fn bounded_latency(id: &str, metric: Metric, profile: &ExperimentProfile) -> Table {
    let spec = figure_by_id(id).expect("known figure");
    let stores: Vec<StoreKind> = StoreKind::ALL
        .into_iter()
        .filter(|&k| k != StoreKind::VoltDb)
        .collect();
    let workload = Workload::r();
    let mut table = Table::new(spec.title, "load%", "normalized");
    table.columns = stores.iter().map(|s| s.name().to_string()).collect();
    // First find each store's maximum throughput and 100 %-load latency.
    let maxima: Vec<(f64, Option<f64>)> = stores
        .iter()
        .map(|&store| {
            let p = run_point(
                store,
                ClusterSpec::cluster_m(),
                FIXED_NODES,
                &workload,
                profile,
            );
            (p.throughput(), metric.extract(&p))
        })
        .collect();
    let mut rows: Vec<(String, Vec<Option<f64>>)> = Vec::new();
    for &fraction in LOAD_FRACTIONS.iter().rev() {
        let cells = stores
            .iter()
            .zip(&maxima)
            .map(|(&store, &(max_thr, max_lat))| {
                let target = max_thr * fraction;
                if target <= 0.0 {
                    return None;
                }
                let p = run_point_throttled(
                    store,
                    ClusterSpec::cluster_m(),
                    FIXED_NODES,
                    &workload,
                    profile,
                    Throttle::TargetOps(target),
                );
                match (metric.extract(&p), max_lat) {
                    (Some(lat), Some(base)) if base > 0.0 => Some(100.0 * lat / base),
                    _ => None,
                }
            })
            .collect();
        rows.push((format!("{:.0}", fraction * 100.0), cells));
    }
    for (row, cells) in rows {
        table.push_row(&row, cells);
    }
    table
}

/// Figure 17: disk usage after loading 10 M records per node. The paper
/// plots total GB over node count for the four disk-backed stores plus
/// the raw data size; values are reported unscaled (the per-record
/// formats are exact, so the scaled load extrapolates linearly).
pub fn disk_usage(id: &str, profile: &ExperimentProfile) -> Table {
    let spec = figure_by_id(id).expect("known figure");
    let stores = [
        StoreKind::Cassandra,
        StoreKind::HBase,
        StoreKind::Voldemort,
        StoreKind::Mysql,
    ];
    let mut table = Table::new(spec.title, "nodes", "GB total");
    table.columns = stores
        .iter()
        .map(|s| s.name().to_string())
        .collect::<Vec<_>>();
    table.columns.push("raw".into());
    for &nodes in &NODE_COUNTS {
        let mut cells: Vec<Option<f64>> = stores
            .iter()
            .map(|&store| {
                let mut engine = apm_sim::Engine::new();
                let mut boxed = store.build(
                    &mut engine,
                    ClusterSpec::cluster_m(),
                    nodes,
                    profile.scale,
                    profile.seed,
                );
                let total = profile.records_per_node() * u64::from(nodes);
                for seq in 0..total {
                    boxed.load(&apm_core::keyspace::record_for_seq(seq));
                }
                boxed.finish_load();
                boxed.disk_bytes_per_node().map(|per_node| {
                    // Scale back to the paper's 10 M records/node.
                    per_node as f64 / profile.scale * nodes as f64 / 1e9
                })
            })
            .collect();
        let raw = 10_000_000.0 * 75.0 * nodes as f64 / 1e9;
        cells.push(Some(raw));
        table.push_row(&nodes.to_string(), cells);
    }
    table
}

/// Figures 18–20: Cluster D, 8 nodes, workloads R / RW / W, the three
/// disk-backed stores the paper could run there (§5.8). The paper loads
/// 150 M records *total*.
pub fn cluster_d(id: &str, metric: Metric, profile: &ExperimentProfile) -> Table {
    let spec = figure_by_id(id).expect("known figure");
    let stores: Vec<StoreKind> = StoreKind::ALL
        .into_iter()
        .filter(|k| k.in_cluster_d_figures())
        .collect();
    let mut table = Table::new(spec.title, "workload", metric.unit());
    table.columns = stores.iter().map(|s| s.name().to_string()).collect();
    // 150 M total over 8 nodes = 18.75 M per node — denser than the
    // hardware scale, which is what makes Cluster D disk-bound.
    let d_profile = ExperimentProfile {
        data_factor: 1.875,
        ..*profile
    };
    for workload in [Workload::r(), Workload::rw(), Workload::w()] {
        let cells = stores
            .iter()
            .map(|&store| {
                let point = run_point(
                    store,
                    ClusterSpec::cluster_d(),
                    FIXED_NODES,
                    &workload,
                    &d_profile,
                );
                metric.extract(&point)
            })
            .collect();
        table.push_row(workload.name, cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_index_is_complete() {
        let figures = all_figures();
        assert_eq!(figures.len(), 19, "table1 + figures 3..=20");
        for n in 3..=20 {
            assert!(
                figure_by_id(&format!("fig{n}")).is_some(),
                "figure {n} missing from the index"
            );
        }
        assert!(figure_by_id("table1").is_some());
        assert!(
            figure_by_id("fig2").is_none(),
            "fig 1/2 are illustrations, not experiments"
        );
    }

    #[test]
    fn table1_matches_the_paper() {
        let t = table1_table();
        assert_eq!(t.get("R", "read"), Some(95.0));
        assert_eq!(t.get("W", "insert"), Some(99.0));
        assert_eq!(t.get("RS", "scan"), Some(47.0));
        assert_eq!(t.get("RSW", "insert"), Some(50.0));
    }

    #[test]
    fn scan_figures_exclude_voldemort() {
        assert!(!stores_for(&Workload::rs()).contains(&StoreKind::Voldemort));
        assert!(stores_for(&Workload::r()).contains(&StoreKind::Voldemort));
    }

    #[test]
    fn disk_usage_figure_reproduces_section_5_7() {
        let profile = ExperimentProfile::test();
        let t = disk_usage("fig17", &profile);
        // §5.7 per-node GB at any node count; the table stores totals.
        let per_node =
            |store: &str, nodes: &str| t.get(nodes, store).unwrap() / nodes.parse::<f64>().unwrap();
        assert!((per_node("cassandra", "2") - 2.5).abs() < 0.4);
        assert!((per_node("mysql", "2") - 5.0).abs() < 0.6);
        assert!((per_node("voldemort", "2") - 5.5).abs() < 0.6);
        assert!((per_node("hbase", "2") - 7.5).abs() < 0.8);
        assert!((per_node("raw", "2") - 0.75).abs() < 0.01);
        // Linear growth over nodes (no replication).
        let c1 = t.get("1", "cassandra").unwrap();
        let c12 = t.get("12", "cassandra").unwrap();
        assert!((c12 / c1 - 12.0).abs() < 0.8);
    }
}
