//! One benchmark point: store × cluster × node count × workload.
//!
//! §3's methodology, scaled: fresh store per point (the paper reinstalled
//! from scratch per run), 10 M records/node × `scale`, warm-up plus a
//! measurement window, per-store client populations.

use apm_core::driver::{ClientConfig, Throttle};
use apm_core::ops::OpKind;
use apm_core::workload::Workload;
use apm_sim::{ClusterSpec, Engine, FaultSchedule};
use apm_stores::api::{DistributedStore, StoreCtx};
use apm_stores::cassandra::{CassandraConfig, CassandraStore};
use apm_stores::hbase::HbaseStore;
use apm_stores::mysql::MysqlStore;
use apm_stores::redis::RedisStore;
use apm_stores::routing::JedisHash;
use apm_stores::runner::{run_benchmark, RunConfig, RunResult};
use apm_stores::voldemort::VoldemortStore;
use apm_stores::voltdb::VoltDbStore;

/// The six stores, in the paper's legend order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreKind {
    Cassandra,
    HBase,
    Voldemort,
    VoltDb,
    Redis,
    Mysql,
}

impl StoreKind {
    /// All stores in legend order.
    pub const ALL: [StoreKind; 6] = [
        StoreKind::Cassandra,
        StoreKind::HBase,
        StoreKind::Voldemort,
        StoreKind::VoltDb,
        StoreKind::Redis,
        StoreKind::Mysql,
    ];

    /// Display name (figure legend).
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Cassandra => "cassandra",
            StoreKind::HBase => "hbase",
            StoreKind::Voldemort => "voldemort",
            StoreKind::VoltDb => "voltdb",
            StoreKind::Redis => "redis",
            StoreKind::Mysql => "mysql",
        }
    }

    /// Parses a store name.
    pub fn by_name(name: &str) -> Option<StoreKind> {
        StoreKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// Whether the store's YCSB client supports scans (§5.4).
    pub fn supports_scans(self) -> bool {
        self != StoreKind::Voldemort
    }

    /// Whether the store persists to disk and can run on Cluster D
    /// (§5.8: Redis and VoltDB cannot; MySQL was omitted there for
    /// cluster-availability reasons — we follow the paper's figure).
    pub fn in_cluster_d_figures(self) -> bool {
        matches!(
            self,
            StoreKind::Cassandra | StoreKind::HBase | StoreKind::Voldemort
        )
    }

    /// Builds the store over a fresh context.
    pub fn build(
        self,
        engine: &mut Engine,
        cluster: ClusterSpec,
        nodes: u32,
        scale: f64,
        seed: u64,
    ) -> Box<dyn DistributedStore> {
        let client_machines = match self {
            StoreKind::Redis => RedisStore::client_machines(nodes),
            _ => StoreCtx::standard_client_machines(nodes),
        };
        let ctx = StoreCtx::new(engine, cluster, nodes, client_machines, scale, seed);
        match self {
            StoreKind::Cassandra => Box::new(CassandraStore::new(ctx, CassandraConfig::default())),
            StoreKind::HBase => Box::new(HbaseStore::new(ctx, engine)),
            StoreKind::Voldemort => Box::new(VoldemortStore::new(ctx, engine)),
            StoreKind::VoltDb => Box::new(VoltDbStore::new(ctx, engine)),
            StoreKind::Redis => Box::new(RedisStore::new(ctx, engine, JedisHash::Murmur)),
            StoreKind::Mysql => Box::new(MysqlStore::new(ctx, engine)),
        }
    }
}

/// Global knobs for a reproduction run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExperimentProfile {
    /// Dataset scale: 1.0 = the paper's 10 M records per node. Memory
    /// budgets (page caches, buffer pools) scale with this too, keeping
    /// data:RAM ratios faithful.
    pub scale: f64,
    /// Extra dataset multiplier applied to the record count but *not* to
    /// memory budgets — Cluster D loads 150 M records over 8 nodes
    /// (18.75 M/node = 1.875× the Cluster-M density), which is what makes
    /// it disk-bound (§5.8).
    pub data_factor: f64,
    /// Warm-up excluded from statistics, simulated seconds.
    pub warmup_secs: f64,
    /// Measurement window, simulated seconds (paper: 600 s).
    pub measure_secs: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentProfile {
    /// Default profile: 1/200 of the paper's data (50 K records/node),
    /// 8-second windows. Ratios that matter (data : RAM, flush cadence
    /// per record) are preserved by scaling memory budgets identically.
    pub fn quick() -> ExperimentProfile {
        ExperimentProfile {
            scale: 0.005,
            data_factor: 1.0,
            warmup_secs: 2.0,
            measure_secs: 8.0,
            seed: 0xA9A1_2012,
        }
    }

    /// Tiny profile for unit/integration tests.
    pub fn test() -> ExperimentProfile {
        ExperimentProfile {
            scale: 0.002,
            data_factor: 1.0,
            warmup_secs: 0.5,
            measure_secs: 3.0,
            seed: 7,
        }
    }

    /// Records per node at this scale.
    pub fn records_per_node(&self) -> u64 {
        (10_000_000.0 * self.scale * self.data_factor) as u64
    }
}

/// One measured point.
#[derive(Clone, Debug)]
pub struct Point {
    pub store: StoreKind,
    pub nodes: u32,
    pub workload: &'static str,
    pub result: RunResult,
}

impl Point {
    /// Throughput in ops/s.
    pub fn throughput(&self) -> f64 {
        self.result.throughput()
    }

    /// Mean latency in ms for an operation kind.
    pub fn latency_ms(&self, kind: OpKind) -> Option<f64> {
        self.result.mean_latency_ms(kind)
    }
}

/// Runs one point at maximum throughput.
pub fn run_point(
    store: StoreKind,
    cluster: ClusterSpec,
    nodes: u32,
    workload: &Workload,
    profile: &ExperimentProfile,
) -> Point {
    run_point_throttled(
        store,
        cluster,
        nodes,
        workload,
        profile,
        Throttle::Unlimited,
    )
}

/// Runs one point with an explicit throttle (§5.6 bounded-throughput).
pub fn run_point_throttled(
    store: StoreKind,
    cluster: ClusterSpec,
    nodes: u32,
    workload: &Workload,
    profile: &ExperimentProfile,
    throttle: Throttle,
) -> Point {
    let mut engine = Engine::new();
    let mut boxed = store.build(&mut engine, cluster, nodes, profile.scale, profile.seed);
    let client = if cluster.name == "D" {
        ClientConfig::cluster_d(nodes)
    } else {
        ClientConfig::cluster_m(nodes)
    }
    .with_throttle(throttle)
    .with_window(profile.warmup_secs, profile.measure_secs);
    let config = RunConfig {
        workload: workload.clone(),
        client,
        records_per_node: profile.records_per_node(),
        nodes,
        seed: profile.seed,
        event_at_secs: None,
        faults: FaultSchedule::none(),
        op_deadline: None,
        telemetry_window_secs: None,
        resilience: None,
        checkpoints: None,
    };
    let result = run_benchmark(&mut engine, boxed.as_mut(), &config);
    Point {
        store,
        nodes,
        workload: workload_name(workload),
        result,
    }
}

fn workload_name(w: &Workload) -> &'static str {
    w.name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_kinds_roundtrip_names() {
        for kind in StoreKind::ALL {
            assert_eq!(StoreKind::by_name(kind.name()), Some(kind));
        }
        assert_eq!(StoreKind::by_name("mongodb"), None);
    }

    #[test]
    fn voldemort_is_the_only_scanless_store() {
        let scanless: Vec<_> = StoreKind::ALL
            .into_iter()
            .filter(|k| !k.supports_scans())
            .collect();
        assert_eq!(scanless, vec![StoreKind::Voldemort]);
    }

    #[test]
    fn cluster_d_runs_the_three_disk_stores() {
        let d: Vec<_> = StoreKind::ALL
            .into_iter()
            .filter(|k| k.in_cluster_d_figures())
            .collect();
        assert_eq!(
            d,
            vec![StoreKind::Cassandra, StoreKind::HBase, StoreKind::Voldemort]
        );
    }

    #[test]
    fn profile_scales_record_counts() {
        let p = ExperimentProfile {
            scale: 0.01,
            data_factor: 1.0,
            warmup_secs: 1.0,
            measure_secs: 2.0,
            seed: 1,
        };
        assert_eq!(p.records_per_node(), 100_000);
        let d = ExperimentProfile {
            data_factor: 1.875,
            ..p
        };
        assert_eq!(d.records_per_node(), 187_500, "Cluster D density");
    }

    #[test]
    fn run_point_produces_throughput_for_every_store() {
        let profile = ExperimentProfile::test();
        for kind in StoreKind::ALL {
            let point = run_point(
                kind,
                ClusterSpec::cluster_m(),
                1,
                &apm_core::workload::Workload::rw(),
                &profile,
            );
            assert!(
                point.throughput() > 500.0,
                "{} produced no throughput",
                kind.name()
            );
        }
    }
}
