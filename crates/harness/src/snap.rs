//! Checkpoint / resume / bisect harness.
//!
//! Backs the `repro snapshot <store>` / `repro resume <file>` /
//! `repro bisect <store>` subcommands and the `ext-snap-resume`
//! extension. The invariant under test everywhere here: resuming from
//! any checkpoint reproduces the from-scratch run *byte-identically* —
//! same stats, same telemetry, same final kernel and store state, and
//! (when the `audit`/`trace` features are compiled in) the same
//! observer fingerprints, for every store architecture.

use crate::experiment::{ExperimentProfile, StoreKind};
use apm_core::driver::ClientConfig;
use apm_core::report::Table;
use apm_core::snap::{fnv1a64, SnapError, SnapWriter};
use apm_core::workload::Workload;
use apm_sim::{ClusterSpec, Engine, FaultSchedule};
use apm_stores::api::DistributedStore;
use apm_stores::runner::{
    bisect_divergence, resume_benchmark, run_benchmark, CheckpointSpec, RunConfig, RunResult,
};

/// Node count of the canonical snapshot scenario (Cluster M).
pub const NODES: u32 = 4;

/// The checkpoint cadence used by the subcommands and the extension:
/// four checkpoints across the measurement window.
pub fn default_spec(profile: &ExperimentProfile) -> CheckpointSpec {
    CheckpointSpec::every(profile.measure_secs / 4.0)
}

/// The run configuration shared by `repro snapshot` and `repro resume`.
/// Derived purely from the profile and the spec, so the resume side
/// reconstructs it bit-for-bit and the sealed config fingerprint holds.
pub fn snap_config(profile: &ExperimentProfile, spec: Option<CheckpointSpec>) -> RunConfig {
    RunConfig {
        workload: Workload::rw(),
        client: ClientConfig::cluster_m(NODES)
            .with_window(profile.warmup_secs, profile.measure_secs),
        records_per_node: profile.records_per_node(),
        nodes: NODES,
        seed: profile.seed,
        event_at_secs: None,
        faults: FaultSchedule::none(),
        op_deadline: None,
        telemetry_window_secs: None,
        resilience: None,
        checkpoints: spec,
    }
}

/// A completed (straight or resumed) run plus its end-state fingerprint.
pub struct SnapRun {
    pub result: RunResult,
    /// FNV-1a over the reported statistics *and* the final store and
    /// kernel state. The kernel serializes its observers, so under
    /// `--features trace,audit` the trace and audit fingerprints
    /// participate — two equal fingerprints mean two runs were
    /// indistinguishable end to end.
    pub fingerprint: u64,
}

fn final_fingerprint(engine: &Engine, store: &dyn DistributedStore, result: &RunResult) -> u64 {
    let mut w = SnapWriter::new();
    w.put(&result.stats);
    w.put_u64(result.issued);
    w.put(&result.disk_bytes_per_node);
    w.put(&result.telemetry);
    store.snap_state(&mut w);
    engine.snap_state(&mut w);
    fnv1a64(w.bytes())
}

fn build(store: StoreKind, profile: &ExperimentProfile) -> (Engine, Box<dyn DistributedStore>) {
    let mut engine = Engine::new();
    let boxed = store.build(
        &mut engine,
        ClusterSpec::cluster_m(),
        NODES,
        profile.scale,
        profile.seed,
    );
    (engine, boxed)
}

/// Runs the canonical scenario with checkpoints enabled.
pub fn snapshot_run(store: StoreKind, profile: &ExperimentProfile) -> SnapRun {
    run_with_spec(store, profile, default_spec(profile))
}

fn run_with_spec(store: StoreKind, profile: &ExperimentProfile, spec: CheckpointSpec) -> SnapRun {
    let config = snap_config(profile, Some(spec));
    let (mut engine, mut boxed) = build(store, profile);
    let result = run_benchmark(&mut engine, boxed.as_mut(), &config);
    let fingerprint = final_fingerprint(&engine, boxed.as_ref(), &result);
    SnapRun {
        result,
        fingerprint,
    }
}

/// Resumes the canonical scenario from a sealed checkpoint.
pub fn resume_run(
    store: StoreKind,
    profile: &ExperimentProfile,
    snapshot: &[u8],
) -> Result<SnapRun, SnapError> {
    let config = snap_config(profile, Some(default_spec(profile)));
    let (mut engine, mut boxed) = build(store, profile);
    let result = resume_benchmark(&mut engine, boxed.as_mut(), &config, snapshot)?;
    let fingerprint = final_fingerprint(&engine, boxed.as_ref(), &result);
    Ok(SnapRun {
        result,
        fingerprint,
    })
}

/// Result of localizing an injected divergence.
pub struct BisectOutcome {
    /// Checkpoints the two runs have in common.
    pub checkpoints: usize,
    /// Index of the first divergent checkpoint, if any.
    pub first_divergent: Option<u32>,
    /// Virtual-time window `(start_ns, end_ns]` the divergence lies in:
    /// from the last agreeing checkpoint (or time zero) to the first
    /// divergent one.
    pub window_ns: Option<(u64, u64)>,
}

/// Runs the scenario clean and with a one-draw perturbation injected
/// `perturb_at_secs` after warm-up, then bisects the checkpoint streams
/// to localize the first divergent virtual-time window.
pub fn bisect_run(
    store: StoreKind,
    profile: &ExperimentProfile,
    perturb_at_secs: f64,
) -> BisectOutcome {
    let every = default_spec(profile);
    let clean = run_with_spec(store, profile, every.clone());
    let perturbed = run_with_spec(
        store,
        profile,
        CheckpointSpec {
            perturb_at_secs: Some(perturb_at_secs),
            ..every
        },
    );
    let a = &clean.result.checkpoints;
    let b = &perturbed.result.checkpoints;
    let first_divergent = bisect_divergence(a, b);
    let window_ns = first_divergent.map(|k| {
        let end = a[k as usize].at.0;
        let start = if k == 0 { 0 } else { a[k as usize - 1].at.0 };
        (start, end)
    });
    BisectOutcome {
        checkpoints: a.len().min(b.len()),
        first_divergent,
        window_ns,
    }
}

/// `ext-snap-resume`: for every store, checkpoint the canonical run,
/// resume it from the middle checkpoint, and verify the continuation is
/// byte-identical; then inject a divergence and bisect it. Columns:
/// checkpoint count, resume fingerprint match (1 = identical), and the
/// checkpoint index the bisection localized the divergence to.
pub fn snap_resume(profile: &ExperimentProfile) -> Table {
    // Perturb 55% of the way through the window: inside checkpoint
    // window 2 of 4 (boundaries every quarter window; 0.55 ∈ (0.5, 0.75]).
    let perturb_at = profile.measure_secs * 0.55;
    let mut table = Table::new(
        "Extension: snapshot/resume equivalence and divergence bisection (workload RW, 4 nodes)",
        "store",
        "count | 0/1 | index",
    );
    table.columns = vec![
        "checkpoints".into(),
        "resume_match".into(),
        "divergent_at".into(),
    ];
    for kind in StoreKind::ALL {
        let straight = snapshot_run(kind, profile);
        let middle = &straight.result.checkpoints[straight.result.checkpoints.len() / 2];
        let resumed = resume_run(kind, profile, &middle.bytes).expect("resume succeeds");
        let matched = resumed.fingerprint == straight.fingerprint;
        let bisect = bisect_run(kind, profile, perturb_at);
        table.push_row(
            kind.name(),
            vec![
                Some(straight.result.checkpoints.len() as f64),
                Some(if matched { 1.0 } else { 0.0 }),
                bisect.first_divergent.map(f64::from),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ExperimentProfile {
        ExperimentProfile::test()
    }

    #[test]
    fn cassandra_resume_reproduces_the_straight_run() {
        let straight = snapshot_run(StoreKind::Cassandra, &profile());
        assert!(
            straight.result.checkpoints.len() >= 3,
            "too few checkpoints: {}",
            straight.result.checkpoints.len()
        );
        for cp in &straight.result.checkpoints {
            let resumed = resume_run(StoreKind::Cassandra, &profile(), &cp.bytes).expect("resume");
            assert_eq!(
                resumed.fingerprint, straight.fingerprint,
                "resume from checkpoint {} drifted",
                cp.index
            );
        }
    }

    #[test]
    fn bisect_localizes_the_injected_draw() {
        let p = profile();
        let outcome = bisect_run(StoreKind::Redis, &p, p.measure_secs * 0.55);
        assert_eq!(outcome.first_divergent, Some(2));
        let (start, end) = outcome.window_ns.expect("window");
        assert!(start < end);
        // The perturbation time lies inside the reported window.
        let perturb_ns = ((p.warmup_secs + p.measure_secs * 0.55) * 1e9) as u64;
        assert!(
            (start..=end).contains(&perturb_ns),
            "perturbation at {perturb_ns} outside window {start}..{end}"
        );
    }

    #[test]
    fn resume_rejects_the_wrong_store_config() {
        let straight = snapshot_run(StoreKind::Voldemort, &profile());
        let cp = &straight.result.checkpoints[0];
        match resume_run(StoreKind::Redis, &profile(), &cp.bytes) {
            Err(SnapError::ConfigMismatch { .. }) => {}
            other => panic!(
                "expected ConfigMismatch, got {:?}",
                other.map(|r| r.fingerprint)
            ),
        }
    }
}
