//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                         # list reproducible artifacts
//! repro table1 fig3 fig17            # generate specific artifacts
//! repro all                          # generate everything
//! repro all --out results            # also write CSV/JSON/EXPERIMENTS.md
//! repro fig3 --scale 0.02 --secs 20  # higher-fidelity run
//! ```

use apm_harness::experiment::ExperimentProfile;
use apm_harness::extensions::{all_extensions, generate_extension};
use apm_harness::figures::{all_figures, figure_by_id, generate};
use apm_harness::output::{
    render_experiments_md, write_csv, write_gnuplot, FigureResult, ResultsFile,
};
use apm_harness::shape::checks_for;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    ids: Vec<String>,
    profile: ExperimentProfile,
    out: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: repro <list | all | table1 | fig3..fig20 | ext-*>... [--scale F] [--secs S] [--warmup S] [--seed N] [--out DIR]\n       repro render <results.json>...   # merge result files and print EXPERIMENTS markdown"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut profile = ExperimentProfile::quick();
    let mut out = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                profile.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                if profile.scale <= 0.0 || profile.scale > 1.0 {
                    return Err("--scale must be in (0, 1]".into());
                }
            }
            "--secs" => {
                profile.measure_secs = it
                    .next()
                    .ok_or("--secs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --secs: {e}"))?;
            }
            "--warmup" => {
                profile.warmup_secs = it
                    .next()
                    .ok_or("--warmup needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --warmup: {e}"))?;
            }
            "--seed" => {
                profile.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(it.next().ok_or("--out needs a directory")?));
            }
            "--help" | "-h" => return Err(usage().to_string()),
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        return Err(usage().to_string());
    }
    Ok(Args { ids, profile, out })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.ids.first().map(String::as_str) == Some("render") {
        let mut merged = ResultsFile::default();
        for path in &args.ids[1..] {
            let json = match std::fs::read_to_string(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match ResultsFile::from_json(&json) {
                Ok(file) => {
                    if merged.profile.is_empty() {
                        merged.profile = file.profile;
                    }
                    for mut figure in file.figures {
                        // Recompute shape checks against the current
                        // claim set (they may have been refined since
                        // the run was recorded).
                        let checks = checks_for(&figure.id, &figure.to_table());
                        if !checks.is_empty() {
                            figure.checks = checks
                                .iter()
                                .map(|c| (c.claim.to_string(), c.pass, c.detail.clone()))
                                .collect();
                        }
                        merged.figures.push(figure);
                    }
                }
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        print!("{}", render_experiments_md(&merged));
        return ExitCode::SUCCESS;
    }

    if args.ids.iter().any(|i| i == "list") {
        for spec in all_figures() {
            println!("{:16} {}", spec.id, spec.title);
        }
        for (id, title) in all_extensions() {
            println!("{id:16} {title}");
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<String> = if args.ids.iter().any(|i| i == "all") {
        all_figures()
            .iter()
            .map(|f| f.id.to_string())
            .chain(all_extensions().iter().map(|(id, _)| id.to_string()))
            .collect()
    } else {
        args.ids.clone()
    };

    let is_extension = |id: &str| all_extensions().iter().any(|(e, _)| *e == id);
    for id in &ids {
        if figure_by_id(id).is_none() && !is_extension(id) {
            eprintln!("unknown artifact {id:?}; try `repro list`");
            return ExitCode::FAILURE;
        }
    }

    let profile = args.profile;
    let profile_desc = format!(
        "scale {} ({} records/node), warmup {} s, window {} s, seed {}",
        profile.scale,
        profile.records_per_node(),
        profile.warmup_secs,
        profile.measure_secs,
        profile.seed
    );
    println!("profile: {profile_desc}\n");

    let mut results = ResultsFile {
        profile: profile_desc,
        figures: Vec::new(),
    };
    let mut failed_checks = 0usize;
    for id in &ids {
        let started = std::time::Instant::now();
        let table = if is_extension(id) {
            generate_extension(id, &profile).expect("known extension")
        } else {
            generate(id, &profile)
        };
        let checks = checks_for(id, &table);
        println!("{}", table.render());
        for check in &checks {
            let mark = if check.pass { "PASS" } else { "FAIL" };
            if !check.pass {
                failed_checks += 1;
            }
            println!("  [{mark}] {} — {}", check.claim, check.detail);
        }
        println!("  ({id} took {:.1}s)\n", started.elapsed().as_secs_f64());
        if let Some(dir) = &args.out {
            if let Err(e) = write_csv(dir, id, &table).and_then(|_| write_gnuplot(dir, id, &table))
            {
                eprintln!("failed to write CSV/plot for {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
        results
            .figures
            .push(FigureResult::capture(id, &table, &checks));
    }

    if let Some(dir) = &args.out {
        let json_path = dir.join("results.json");
        let md_path = dir.join("EXPERIMENTS.generated.md");
        if let Err(e) = std::fs::write(&json_path, results.to_json())
            .and_then(|_| std::fs::write(&md_path, render_experiments_md(&results)))
        {
            eprintln!("failed to write results: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} and {}", json_path.display(), md_path.display());
    }

    // With span tracing compiled in, also export a Perfetto-loadable
    // demo trace (small fault-laden Cassandra run) next to the results.
    #[cfg(feature = "trace")]
    if let Some(dir) = &args.out {
        let (json, fingerprint) = apm_harness::obs::capture_trace_demo();
        match apm_harness::output::write_chrome_trace(dir, "trace-demo", &json) {
            Ok(path) => println!(
                "wrote {} (trace fingerprint {fingerprint:#018x})",
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write trace demo: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if failed_checks > 0 {
        println!("{failed_checks} shape check(s) failed");
    }
    ExitCode::SUCCESS
}
