//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                         # list reproducible artifacts
//! repro table1 fig3 fig17            # generate specific artifacts
//! repro all                          # generate everything
//! repro all --out results            # also write CSV/JSON/EXPERIMENTS.md
//! repro fig3 --scale 0.02 --secs 20  # higher-fidelity run
//! ```

use apm_harness::experiment::{ExperimentProfile, StoreKind};
use apm_harness::extensions::{all_extensions, generate_extension};
use apm_harness::figures::{all_figures, figure_by_id, generate};
use apm_harness::output::{
    render_experiments_md, write_csv, write_gnuplot, FigureResult, ResultsFile,
};
use apm_harness::shape::checks_for;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    ids: Vec<String>,
    profile: ExperimentProfile,
    out: Option<PathBuf>,
    budget: u32,
    resilient: bool,
}

fn usage() -> &'static str {
    "usage: repro <list | all | table1 | fig3..fig20 | ext-*>... [--scale F] [--secs S] [--warmup S] [--seed N] [--out DIR]\n       repro render <results.json>...   # merge result files and print EXPERIMENTS markdown\n       repro snapshot <store>           # run with checkpoints, write snap-<store>-<k>.bin\n       repro resume <snapshot.bin>      # resume a run from a sealed checkpoint\n       repro bisect <store>             # inject a divergence and localize its window\n       repro chaos <store | broken-cassandra> [--budget N] [--resilient] [--seed S] [--out DIR]\n                                        # seeded chaos campaign: oracles + schedule shrinking,\n                                        # writes chaos-<store>.json"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut profile = ExperimentProfile::quick();
    let mut out = None;
    let mut budget = apm_harness::chaos::DEFAULT_BUDGET;
    let mut resilient = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                profile.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                if profile.scale <= 0.0 || profile.scale > 1.0 {
                    return Err("--scale must be in (0, 1]".into());
                }
            }
            "--secs" => {
                profile.measure_secs = it
                    .next()
                    .ok_or("--secs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --secs: {e}"))?;
            }
            "--warmup" => {
                profile.warmup_secs = it
                    .next()
                    .ok_or("--warmup needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --warmup: {e}"))?;
            }
            "--seed" => {
                profile.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(it.next().ok_or("--out needs a directory")?));
            }
            "--budget" => {
                budget = it
                    .next()
                    .ok_or("--budget needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --budget: {e}"))?;
                if budget == 0 {
                    return Err("--budget must be at least 1".into());
                }
            }
            "--resilient" => resilient = true,
            "--help" | "-h" => return Err(usage().to_string()),
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        return Err(usage().to_string());
    }
    Ok(Args {
        ids,
        profile,
        out,
        budget,
        resilient,
    })
}

fn store_arg(args: &Args) -> Result<StoreKind, String> {
    let name = args.ids.get(1).ok_or_else(|| {
        "expected a store name (cassandra, hbase, voldemort, voltdb, redis, mysql)".to_string()
    })?;
    StoreKind::by_name(name).ok_or_else(|| format!("unknown store {name:?}"))
}

/// `repro snapshot <store>` — run the canonical checkpointed scenario and
/// write every sealed checkpoint as `snap-<store>-<k>.bin`.
fn cmd_snapshot(args: &Args) -> ExitCode {
    let kind = match store_arg(args) {
        Ok(k) => k,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let run = apm_harness::snap::snapshot_run(kind, &args.profile);
    let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for cp in &run.result.checkpoints {
        let path = dir.join(format!("snap-{}-{}.bin", kind.name(), cp.index));
        if let Err(e) = std::fs::write(&path, &cp.bytes) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} (t = {:.3} s, state hash {:#018x})",
            path.display(),
            cp.at.0 as f64 / 1e9,
            cp.state_hash()
        );
    }
    println!(
        "{}: {} checkpoints, final fingerprint {:#018x}",
        kind.name(),
        run.result.checkpoints.len(),
        run.fingerprint
    );
    ExitCode::SUCCESS
}

/// `repro resume <snapshot.bin>` — reopen a sealed checkpoint, rebuild the
/// scenario its header names, and run it to completion.
fn cmd_resume(args: &Args) -> ExitCode {
    let path = match args.ids.get(1) {
        Some(p) => p,
        None => {
            eprintln!("expected a snapshot file");
            return ExitCode::FAILURE;
        }
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (header, _) = match apm_core::snap::open(&bytes) {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("{path} is not a valid snapshot: {e}");
            return ExitCode::FAILURE;
        }
    };
    let kind = match StoreKind::by_name(&header.scenario) {
        Some(k) => k,
        None => {
            eprintln!("snapshot names unknown scenario {:?}", header.scenario);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "resuming {} from checkpoint {} (t = {:.3} s)",
        header.scenario,
        header.checkpoint_index,
        header.virtual_time_ns as f64 / 1e9
    );
    match apm_harness::snap::resume_run(kind, &args.profile, &bytes) {
        Ok(run) => {
            println!(
                "{}: resumed run finished, final fingerprint {:#018x}",
                kind.name(),
                run.fingerprint
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("resume failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro bisect <store>` — run the scenario clean and with an injected
/// one-draw perturbation, then bisect the checkpoint streams to localize
/// the first divergent virtual-time window.
fn cmd_bisect(args: &Args) -> ExitCode {
    let kind = match store_arg(args) {
        Ok(k) => k,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let perturb_at = args.profile.measure_secs * 0.55;
    let outcome = apm_harness::snap::bisect_run(kind, &args.profile, perturb_at);
    println!(
        "{}: {} common checkpoints (perturbation injected {perturb_at:.3} s after warm-up)",
        kind.name(),
        outcome.checkpoints
    );
    match (outcome.first_divergent, outcome.window_ns) {
        (Some(k), Some((start, end))) => {
            println!(
                "first divergent checkpoint: {k}; divergence lies in ({:.3} s, {:.3} s]",
                start as f64 / 1e9,
                end as f64 / 1e9
            );
        }
        _ => println!("no divergence detected"),
    }
    ExitCode::SUCCESS
}

/// `repro chaos <store | broken-cassandra>` — run a seeded chaos-search
/// campaign, print per-schedule verdicts, and write the machine-readable
/// report as `chaos-<store>.json` (byte-identical for the same seed).
fn cmd_chaos(args: &Args) -> ExitCode {
    use apm_harness::chaos::{report_to_json, run_campaign, ChaosOptions, ChaosTarget};

    let name = match args.ids.get(1) {
        Some(n) => n.as_str(),
        None => {
            eprintln!(
                "expected a store name (cassandra, hbase, voldemort, voltdb, redis, mysql) \
                 or the broken-cassandra fixture"
            );
            return ExitCode::FAILURE;
        }
    };
    let target = if name == "broken-cassandra" {
        ChaosTarget::broken_cassandra(&args.profile)
    } else {
        match StoreKind::by_name(name) {
            Some(kind) => ChaosTarget::store(kind, &args.profile),
            None => {
                eprintln!("unknown store {name:?}");
                return ExitCode::FAILURE;
            }
        }
    };
    let opts = ChaosOptions {
        seed: args.profile.seed,
        budget: args.budget,
        resilient: args.resilient,
    };
    println!(
        "chaos campaign: {} — budget {}, seed {:#x}, resilience {}",
        target.label(),
        opts.budget,
        opts.seed,
        if opts.resilient { "on" } else { "off" }
    );
    let outcome = run_campaign(&target, &args.profile, &opts);
    for schedule in &outcome.report.schedules {
        let failed: Vec<&str> = schedule
            .verdicts
            .iter()
            .filter(|v| !v.pass)
            .map(|v| v.kind.name())
            .collect();
        match failed.is_empty() {
            true => println!(
                "  schedule {}: {} events, pass",
                schedule.index,
                schedule.events.len()
            ),
            false => println!(
                "  schedule {}: {} events, {} ({})",
                schedule.index,
                schedule.events.len(),
                schedule.outcome.name().to_uppercase(),
                failed.join(", ")
            ),
        }
    }
    for m in &outcome.report.minimized {
        match m.divergent_checkpoint {
            Some(k) => println!(
                "  schedule {}: non-deterministic replay, first divergent checkpoint {k}",
                m.schedule_index
            ),
            None => println!(
                "  schedule {}: minimized {} -> {} events in {} probes ({} resumed)",
                m.schedule_index, m.original_events, m.minimized_events, m.probes, m.resumed_probes
            ),
        }
    }
    let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let path = dir.join(format!("chaos-{}.json", target.label()));
    let json = report_to_json(&outcome.report).to_pretty();
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());
    let violations = outcome.report.violations();
    // The broken fixture is *supposed* to trip its oracle; a campaign
    // against a healthy store must come back clean.
    let expect_violations = name == "broken-cassandra";
    let ok = if expect_violations {
        violations > 0
    } else {
        violations == 0
    };
    let mark = if ok { "PASS" } else { "FAIL" };
    println!(
        "  [{mark}] {} of {} schedules violated an oracle{}",
        violations,
        outcome.report.schedules.len(),
        if expect_violations {
            " (fixture: expected at least one)"
        } else {
            ""
        }
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    match args.ids.first().map(String::as_str) {
        Some("snapshot") => return cmd_snapshot(&args),
        Some("resume") => return cmd_resume(&args),
        Some("bisect") => return cmd_bisect(&args),
        Some("chaos") => return cmd_chaos(&args),
        _ => {}
    }

    if args.ids.first().map(String::as_str) == Some("render") {
        let mut merged = ResultsFile::default();
        for path in &args.ids[1..] {
            let json = match std::fs::read_to_string(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match ResultsFile::from_json(&json) {
                Ok(file) => {
                    if merged.profile.is_empty() {
                        merged.profile = file.profile;
                    }
                    for mut figure in file.figures {
                        // Recompute shape checks against the current
                        // claim set (they may have been refined since
                        // the run was recorded).
                        let checks = checks_for(&figure.id, &figure.to_table());
                        if !checks.is_empty() {
                            figure.checks = checks
                                .iter()
                                .map(|c| (c.claim.to_string(), c.pass, c.detail.clone()))
                                .collect();
                        }
                        merged.figures.push(figure);
                    }
                }
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        print!("{}", render_experiments_md(&merged));
        return ExitCode::SUCCESS;
    }

    if args.ids.iter().any(|i| i == "list") {
        for spec in all_figures() {
            println!("{:16} {}", spec.id, spec.title);
        }
        for (id, title) in all_extensions() {
            println!("{id:16} {title}");
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<String> = if args.ids.iter().any(|i| i == "all") {
        all_figures()
            .iter()
            .map(|f| f.id.to_string())
            .chain(all_extensions().iter().map(|(id, _)| id.to_string()))
            .collect()
    } else {
        args.ids.clone()
    };

    let is_extension = |id: &str| all_extensions().iter().any(|(e, _)| *e == id);
    for id in &ids {
        if figure_by_id(id).is_none() && !is_extension(id) {
            eprintln!("unknown artifact {id:?}; try `repro list`");
            return ExitCode::FAILURE;
        }
    }

    let profile = args.profile;
    let profile_desc = format!(
        "scale {} ({} records/node), warmup {} s, window {} s, seed {}",
        profile.scale,
        profile.records_per_node(),
        profile.warmup_secs,
        profile.measure_secs,
        profile.seed
    );
    println!("profile: {profile_desc}\n");

    let mut results = ResultsFile {
        profile: profile_desc,
        figures: Vec::new(),
    };
    let mut failed_checks = 0usize;
    for id in &ids {
        let started = std::time::Instant::now();
        let table = if is_extension(id) {
            generate_extension(id, &profile).expect("known extension")
        } else {
            generate(id, &profile)
        };
        let checks = checks_for(id, &table);
        println!("{}", table.render());
        for check in &checks {
            let mark = if check.pass { "PASS" } else { "FAIL" };
            if !check.pass {
                failed_checks += 1;
            }
            println!("  [{mark}] {} — {}", check.claim, check.detail);
        }
        println!("  ({id} took {:.1}s)\n", started.elapsed().as_secs_f64());
        if let Some(dir) = &args.out {
            if let Err(e) = write_csv(dir, id, &table).and_then(|_| write_gnuplot(dir, id, &table))
            {
                eprintln!("failed to write CSV/plot for {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
        results
            .figures
            .push(FigureResult::capture(id, &table, &checks));
    }

    if let Some(dir) = &args.out {
        let json_path = dir.join("results.json");
        let md_path = dir.join("EXPERIMENTS.generated.md");
        if let Err(e) = std::fs::write(&json_path, results.to_json())
            .and_then(|_| std::fs::write(&md_path, render_experiments_md(&results)))
        {
            eprintln!("failed to write results: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} and {}", json_path.display(), md_path.display());
    }

    // With span tracing compiled in, also export a Perfetto-loadable
    // demo trace (small fault-laden Cassandra run) next to the results.
    #[cfg(feature = "trace")]
    if let Some(dir) = &args.out {
        let (json, fingerprint) = apm_harness::obs::capture_trace_demo();
        match apm_harness::output::write_chrome_trace(dir, "trace-demo", &json) {
            Ok(path) => println!(
                "wrote {} (trace fingerprint {fingerprint:#018x})",
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write trace demo: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if failed_checks > 0 {
        println!("{failed_checks} shape check(s) failed");
    }
    ExitCode::SUCCESS
}
