//! Result persistence and report generation.
//!
//! Each generated figure is written as CSV (plot-ready) and collected
//! into a JSON results file; `render_experiments_md` builds the
//! paper-vs-measured report that becomes EXPERIMENTS.md.

use crate::json::{self, Json, JsonError};
use crate::reference::{for_figure, Provenance};
use crate::shape::ShapeResult;
use apm_core::report::Table;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A serializable snapshot of one generated figure.
#[derive(Clone, Debug)]
pub struct FigureResult {
    pub id: String,
    pub title: String,
    pub row_label: String,
    pub unit: String,
    pub columns: Vec<String>,
    pub rows: Vec<String>,
    pub cells: Vec<Vec<Option<f64>>>,
    /// Shape check outcomes: (claim, pass, detail).
    pub checks: Vec<(String, bool, String)>,
}

impl FigureResult {
    /// Captures a table plus its shape checks.
    pub fn capture(id: &str, table: &Table, checks: &[ShapeResult]) -> FigureResult {
        FigureResult {
            id: id.to_string(),
            title: table.title.clone(),
            row_label: table.row_label.clone(),
            unit: table.unit.clone(),
            columns: table.columns.clone(),
            rows: table.rows.clone(),
            cells: table.cells.clone(),
            checks: checks
                .iter()
                .map(|c| (c.claim.to_string(), c.pass, c.detail.clone()))
                .collect(),
        }
    }

    /// Rebuilds the table.
    pub fn to_table(&self) -> Table {
        Table {
            title: self.title.clone(),
            row_label: self.row_label.clone(),
            unit: self.unit.clone(),
            columns: self.columns.clone(),
            rows: self.rows.clone(),
            cells: self.cells.clone(),
        }
    }
}

/// The full results file.
#[derive(Clone, Debug, Default)]
pub struct ResultsFile {
    /// Profile description (scale, window).
    pub profile: String,
    pub figures: Vec<FigureResult>,
}

fn strings(values: &[String]) -> Json {
    Json::Arr(values.iter().map(|s| Json::Str(s.clone())).collect())
}

fn string_list(value: &Json, what: &str) -> Result<Vec<String>, JsonError> {
    value
        .as_arr()
        .ok_or_else(|| shape_err(what))?
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| shape_err(what))
        })
        .collect()
}

fn shape_err(what: &str) -> JsonError {
    JsonError {
        msg: format!("missing or mistyped field `{what}`"),
        offset: 0,
    }
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    obj.get(key).ok_or_else(|| shape_err(key))
}

impl FigureResult {
    fn to_value(&self) -> Json {
        let cells = Json::Arr(
            self.cells
                .iter()
                .map(|row| {
                    Json::Arr(
                        row.iter()
                            .map(|c| c.map_or(Json::Null, Json::Num))
                            .collect(),
                    )
                })
                .collect(),
        );
        let checks = Json::Arr(
            self.checks
                .iter()
                .map(|(claim, pass, detail)| {
                    Json::Arr(vec![
                        Json::Str(claim.clone()),
                        Json::Bool(*pass),
                        Json::Str(detail.clone()),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("title".into(), Json::Str(self.title.clone())),
            ("row_label".into(), Json::Str(self.row_label.clone())),
            ("unit".into(), Json::Str(self.unit.clone())),
            ("columns".into(), strings(&self.columns)),
            ("rows".into(), strings(&self.rows)),
            ("cells".into(), cells),
            ("checks".into(), checks),
        ])
    }

    fn from_value(value: &Json) -> Result<FigureResult, JsonError> {
        let text = |key: &str| -> Result<String, JsonError> {
            field(value, key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| shape_err(key))
        };
        let cells = field(value, "cells")?
            .as_arr()
            .ok_or_else(|| shape_err("cells"))?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or_else(|| shape_err("cells"))?
                    .iter()
                    .map(|cell| match cell {
                        Json::Null => Ok(None),
                        Json::Num(v) => Ok(Some(*v)),
                        _ => Err(shape_err("cells")),
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let checks = field(value, "checks")?
            .as_arr()
            .ok_or_else(|| shape_err("checks"))?
            .iter()
            .map(|check| {
                let parts = check.as_arr().ok_or_else(|| shape_err("checks"))?;
                match parts {
                    [Json::Str(claim), Json::Bool(pass), Json::Str(detail)] => {
                        Ok((claim.clone(), *pass, detail.clone()))
                    }
                    _ => Err(shape_err("checks")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FigureResult {
            id: text("id")?,
            title: text("title")?,
            row_label: text("row_label")?,
            unit: text("unit")?,
            columns: string_list(field(value, "columns")?, "columns")?,
            rows: string_list(field(value, "rows")?, "rows")?,
            cells,
            checks,
        })
    }
}

impl ResultsFile {
    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        let doc = Json::Obj(vec![
            ("profile".into(), Json::Str(self.profile.clone())),
            (
                "figures".into(),
                Json::Arr(self.figures.iter().map(FigureResult::to_value).collect()),
            ),
        ]);
        let mut text = doc.to_pretty();
        text.push('\n');
        text
    }

    /// Loads from JSON.
    pub fn from_json(text: &str) -> Result<ResultsFile, JsonError> {
        let doc = json::parse(text)?;
        let profile = field(&doc, "profile")?
            .as_str()
            .ok_or_else(|| shape_err("profile"))?
            .to_string();
        let figures = field(&doc, "figures")?
            .as_arr()
            .ok_or_else(|| shape_err("figures"))?
            .iter()
            .map(FigureResult::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ResultsFile { profile, figures })
    }
}

/// Writes one figure's CSV and returns the path written.
pub fn write_csv(dir: &Path, id: &str, table: &Table) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}.csv"));
    fs::write(&path, table.to_csv())?;
    Ok(path)
}

/// Writes a Chrome trace-event JSON document (load it in Perfetto or
/// `chrome://tracing`) and returns the path written. The text comes from
/// the `trace`-feature exporter in [`crate::obs`]; this writer itself is
/// feature-independent so callers can persist pre-rendered traces.
pub fn write_chrome_trace(dir: &Path, id: &str, json: &str) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}.trace.json"));
    fs::write(&path, json)?;
    Ok(path)
}

/// Writes a gnuplot script that plots a figure's CSV the way the paper
/// draws it (throughput linear, latencies on a log axis), and returns
/// the script path. Run with `gnuplot results/<id>.gp` to get a PNG.
pub fn write_gnuplot(dir: &Path, id: &str, table: &Table) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}.gp"));
    let logscale = if table.unit.contains("ms") {
        "set logscale y\n"
    } else {
        ""
    };
    let mut plots = Vec::new();
    for (i, col) in table.columns.iter().enumerate() {
        plots.push(format!(
            "'{id}.csv' using {}:xtic(1) with linespoints title '{col}'",
            i + 2
        ));
    }
    let script = format!(
        "set datafile separator ','\n\
         set key outside\n\
         set title \"{title}\"\n\
         set xlabel '{xlabel}'\n\
         set ylabel '{unit}'\n\
         {logscale}set term pngcairo size 900,540\n\
         set output '{id}.png'\n\
         set style data linespoints\n\
         plot {plots}\n",
        title = table.title.replace('"', ""),
        xlabel = table.row_label,
        unit = table.unit,
        plots = plots.join(", \\\n     ")
    );
    fs::write(&path, script)?;
    Ok(path)
}

/// Renders the paper-vs-measured markdown report.
pub fn render_experiments_md(results: &ResultsFile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# EXPERIMENTS — paper vs. measured\n");
    let _ = writeln!(
        out,
        "Generated by `repro all` ({}). Absolute numbers come from a calibrated\n\
         simulator (see DESIGN.md); the comparison targets *shape*: orderings,\n\
         scaling factors, crossovers. Reference values marked `fig` are read\n\
         off the paper's log-scale plots (±50 %).\n",
        results.profile
    );
    let mut total_checks = 0usize;
    let mut passed_checks = 0usize;
    for figure in &results.figures {
        let _ = writeln!(out, "## {}\n", figure.title);
        let _ = writeln!(out, "```text\n{}```\n", figure.to_table().render());
        let refs = for_figure(&figure.id);
        if !refs.is_empty() {
            let _ = writeln!(
                out,
                "| store | {} | paper | measured | src |",
                figure.row_label
            );
            let _ = writeln!(out, "|---|---|---|---|---|");
            for r in refs {
                let measured = figure
                    .to_table()
                    .get(r.row, r.store)
                    .map_or("-".to_string(), |v| format!("{v:.3}"));
                let tag = match r.provenance {
                    Provenance::Text => "text",
                    Provenance::Figure => "fig",
                };
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {tag}: {} |",
                    r.store, r.row, r.value, measured, r.source
                );
            }
            let _ = writeln!(out);
        }
        if !figure.checks.is_empty() {
            let _ = writeln!(out, "Shape checks:\n");
            for (claim, pass, detail) in &figure.checks {
                total_checks += 1;
                if *pass {
                    passed_checks += 1;
                }
                let mark = if *pass { "PASS" } else { "FAIL" };
                let _ = writeln!(out, "- [{mark}] {claim} — {detail}");
            }
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(
        out,
        "---\n\n**Shape checks passed: {passed_checks}/{total_checks}**"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("Figure 3: Throughput for Workload R", "nodes", "ops/sec");
        t.columns = vec!["cassandra".into(), "hbase".into()];
        t.push_row("1", vec![Some(25_000.0), Some(2_500.0)]);
        t.push_row("12", vec![Some(180_000.0), Some(30_000.0)]);
        t
    }

    #[test]
    fn figure_result_roundtrips_through_json() {
        let checks = vec![ShapeResult {
            claim: "x",
            pass: true,
            detail: "ok".into(),
        }];
        let fig = FigureResult::capture("fig3", &sample_table(), &checks);
        let file = ResultsFile {
            profile: "test".into(),
            figures: vec![fig],
        };
        let parsed = ResultsFile::from_json(&file.to_json()).expect("roundtrip");
        assert_eq!(parsed.figures.len(), 1);
        assert_eq!(
            parsed.figures[0].to_table().get("1", "cassandra"),
            Some(25_000.0)
        );
        assert!(parsed.figures[0].checks[0].1);
    }

    #[test]
    fn markdown_report_contains_tables_refs_and_checks() {
        let checks = vec![ShapeResult {
            claim: "claim-a",
            pass: false,
            detail: "d".into(),
        }];
        let fig = FigureResult::capture("fig3", &sample_table(), &checks);
        let file = ResultsFile {
            profile: "scale 0.005".into(),
            figures: vec![fig],
        };
        let md = render_experiments_md(&file);
        assert!(md.contains("Figure 3"));
        assert!(md.contains("25000"));
        assert!(
            md.contains("more than 50K"),
            "fig3 reference rows must appear"
        );
        assert!(md.contains("[FAIL] claim-a"));
        assert!(md.contains("Shape checks passed: 0/1"));
    }

    #[test]
    fn gnuplot_script_references_every_series() {
        let dir = std::env::temp_dir().join("apm_harness_gp_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_gnuplot(&dir, "fig3", &sample_table()).expect("write");
        let script = std::fs::read_to_string(path).expect("read back");
        assert!(script.contains("fig3.csv"));
        assert!(script.contains("'cassandra'") && script.contains("'hbase'"));
        assert!(script.contains("set output 'fig3.png'"));
        // Throughput figures are linear; latency figures log-scale.
        assert!(!script.contains("logscale"));
        let mut lat = sample_table();
        lat.unit = "ms".into();
        let p2 = write_gnuplot(&dir, "fig4", &lat).expect("write");
        assert!(std::fs::read_to_string(p2)
            .unwrap()
            .contains("set logscale y"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_writing_creates_files() {
        let dir = std::env::temp_dir().join("apm_harness_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_csv(&dir, "fig3", &sample_table()).expect("write");
        let content = std::fs::read_to_string(path).expect("read back");
        assert!(content.starts_with("nodes,cassandra,hbase"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
