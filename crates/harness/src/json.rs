//! Minimal JSON reader/writer used by result persistence.
//!
//! The workspace builds offline with no external crates, so the small
//! subset of JSON the harness needs (objects, arrays, strings, finite
//! numbers, booleans, null) is implemented here. The writer emits
//! 2-space-indented output compatible with what earlier serde-based
//! builds wrote, and the parser accepts any standard JSON document.

use std::fmt;

/// A parsed JSON value. Object keys keep insertion order so output is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Parse or shape error with a byte offset where available.
#[derive(Clone, Debug)]
pub struct JsonError {
    pub msg: String,
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises with 2-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; the harness never produces them, but a
        // defensive null beats emitting an unparseable token.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        // Rust's f64 Display is the shortest round-trippable form.
        out.push_str(&format!("{v}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs cover strings escaped by
                            // other writers; lone surrogates are errors.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c).ok_or_else(|| self.err("bad codepoint"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?,
                                );
                            }
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .expect("Some(_) peek above guarantees a non-empty slice");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        // Called with pos on 'u'.
        self.pos += 1;
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        // Leave pos on the last hex digit's successor; the caller's
        // `continue` skips the usual single-byte advance.
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Num(42.0)),
            ("-0.5", Json::Num(-0.5)),
            ("1e3", Json::Num(1000.0)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text).expect(text), value, "{text}");
        }
    }

    #[test]
    fn nested_document_roundtrips() {
        let doc = Json::Obj(vec![
            ("profile".into(), Json::Str("scale 0.005 \"quick\"".into())),
            (
                "figures".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("id".into(), Json::Str("fig3".into())),
                    (
                        "cells".into(),
                        Json::Arr(vec![Json::Arr(vec![Json::Num(25000.0), Json::Null])]),
                    ),
                    ("pass".into(), Json::Bool(true)),
                ])]),
            ),
        ]);
        let text = doc.to_pretty();
        assert_eq!(parse(&text).expect("reparse"), doc);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Json::Str("line1\nline2\t\"quoted\" \\ \u{1}".into());
        let text = original.to_pretty();
        assert_eq!(parse(&text).expect("reparse"), original);
        // Foreign escapes (\/ and surrogate pairs) parse too.
        assert_eq!(
            parse("\"a\\/b \\ud83d\\ude00\"").expect("parse"),
            Json::Str("a/b \u{1F600}".into())
        );
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\":}", "nul", "1 2", "[1] x"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn number_formatting_matches_expectations() {
        let mut out = String::new();
        write_number(&mut out, 25000.0);
        assert_eq!(out, "25000");
        out.clear();
        write_number(&mut out, 0.125);
        assert_eq!(out, "0.125");
    }
}
