//! Observability experiments: the virtual-time profiler and the
//! telemetry timeline (plus, behind the `trace` feature, the Chrome
//! trace-event exporter).
//!
//! The paper's §5 tables report *what* each store achieved; this module
//! reports *where the virtual time went*. The kernel keeps two always-on
//! per-resource counters — nanoseconds spent in service and nanoseconds
//! requests spent queued behind a busy resource — so after any run the
//! harness can split every operation's latency into queue-wait vs.
//! service per resource class (cpu / disk / net). That split is what the
//! paper reasons about qualitatively in §5.6 ("the systems are not
//! I/O-bound ... most of the time is spent in the query-processing
//! layer"): `ext-obs-profile` measures it.
//!
//! `ext-obs-telemetry` exercises the windowed [`apm_core::stats::Telemetry`]
//! recorder under the §5.6 bounded-throughput regime: a Cassandra cluster
//! throttled to ~70 % of its measured maximum, sampled in one-second
//! windows — per-window throughput, error rate, latency percentiles and
//! per-class utilisation, the timeline an APM operator would watch.

use crate::experiment::{run_point, ExperimentProfile, StoreKind};
use apm_core::driver::{ClientConfig, Throttle};
use apm_core::report::Table;
use apm_core::workload::Workload;
use apm_sim::kernel::ResourceId;
use apm_sim::{ClusterSpec, Engine, FaultSchedule};
use apm_stores::runner::{run_benchmark, server_resource_class, RunConfig, RunResult};

/// The resource classes the profiler attributes time to, in column order.
pub const RESOURCE_CLASSES: [&str; 3] = ["cpu", "disk", "net"];

/// Queue-wait and service time attributed to one resource class,
/// averaged per measured operation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClassAttribution {
    /// Mean milliseconds ops spent queued for this class, per op.
    pub queue_ms: f64,
    /// Mean milliseconds of service consumed on this class, per op.
    pub service_ms: f64,
}

/// Per-class time attribution extracted from a finished engine: the
/// virtual-time profile of a run. `ops` is the divisor (measured ops).
pub fn attribute_time(engine: &Engine, ops: u64) -> Vec<(&'static str, ClassAttribution)> {
    let mut queue = [0u128; RESOURCE_CLASSES.len()];
    let mut service = [0u128; RESOURCE_CLASSES.len()];
    for i in 0..engine.resource_count() {
        let id = ResourceId(i as u32);
        let Some(class) = server_resource_class(engine.resource_name(id)) else {
            continue;
        };
        let slot = RESOURCE_CLASSES
            .iter()
            .position(|c| *c == class)
            .expect("known class");
        queue[slot] += engine.queue_wait_ns(id);
        service[slot] += engine.service_ns(id);
    }
    let per_op_ms = |total: u128| {
        if ops == 0 {
            0.0
        } else {
            total as f64 / ops as f64 / 1e6
        }
    };
    RESOURCE_CLASSES
        .iter()
        .enumerate()
        .map(|(slot, class)| {
            (
                *class,
                ClassAttribution {
                    queue_ms: per_op_ms(queue[slot]),
                    service_ms: per_op_ms(service[slot]),
                },
            )
        })
        .collect()
}

fn run_instrumented(
    kind: StoreKind,
    nodes: u32,
    workload: &Workload,
    profile: &ExperimentProfile,
    throttle: Throttle,
    telemetry_window_secs: Option<f64>,
) -> (Engine, RunResult) {
    let mut engine = Engine::new();
    let mut store = kind.build(
        &mut engine,
        ClusterSpec::cluster_m(),
        nodes,
        profile.scale,
        profile.seed,
    );
    let config = RunConfig {
        workload: workload.clone(),
        client: ClientConfig::cluster_m(nodes)
            .with_throttle(throttle)
            .with_window(profile.warmup_secs, profile.measure_secs),
        records_per_node: profile.records_per_node(),
        nodes,
        seed: profile.seed,
        event_at_secs: None,
        faults: FaultSchedule::none(),
        op_deadline: None,
        telemetry_window_secs,
        resilience: None,
        checkpoints: None,
    };
    let result = run_benchmark(&mut engine, store.as_mut(), &config);
    (engine, result)
}

/// `ext-obs-profile`: where does an operation's time go? Per store, the
/// saturated workload-R closed loop is profiled and each measured op's
/// latency attributed to queue-wait vs. service per resource class. The
/// §5.6 claim this quantifies: the stores are processing-bound, not
/// I/O-bound — queueing for the hot resource dominates its raw service
/// time, and for the in-memory Redis the disk row is exactly zero.
pub fn time_attribution(profile: &ExperimentProfile) -> Table {
    let nodes = 4;
    let mut table = Table::new(
        "Extension: virtual-time attribution per op (workload R, 4 nodes)",
        "store",
        "ms/op",
    );
    table.columns = RESOURCE_CLASSES
        .iter()
        .flat_map(|class| [format!("{class}_queue_ms"), format!("{class}_service_ms")])
        .collect();
    for kind in [StoreKind::Cassandra, StoreKind::HBase, StoreKind::Redis] {
        let (engine, result) = run_instrumented(
            kind,
            nodes,
            &Workload::r(),
            profile,
            Throttle::Unlimited,
            None,
        );
        let cells = attribute_time(&engine, result.stats.total_ops())
            .into_iter()
            .flat_map(|(_, a)| [Some(a.queue_ms), Some(a.service_ms)])
            .collect();
        table.push_row(kind.name(), cells);
    }
    table
}

/// `ext-obs-telemetry`: the windowed telemetry timeline under §5.6's
/// bounded-throughput regime. An unthrottled run measures Cassandra's
/// maximum; the instrumented run is throttled to 70 % of it and sampled
/// in one-second windows. Rows are window indices; the columns are the
/// operator's dashboard: throughput, error rate, latency percentiles,
/// per-class mean server utilisation.
pub fn telemetry_timeline(profile: &ExperimentProfile) -> Table {
    let nodes = 8;
    let workload = Workload::r();
    let max = run_point(
        StoreKind::Cassandra,
        ClusterSpec::cluster_m(),
        nodes,
        &workload,
        profile,
    )
    .throughput();
    let target = max * 0.7;
    let (_, result) = run_instrumented(
        StoreKind::Cassandra,
        nodes,
        &workload,
        profile,
        Throttle::TargetOps(target),
        Some(1.0),
    );
    let telemetry = result.telemetry.expect("telemetry requested");
    let mut table = Table::new(
        &format!(
            "Extension: telemetry timeline at 70% load (Cassandra, workload R, 8 nodes; target {target:.0} ops/s)"
        ),
        "window",
        "ops/sec | ratio | ms",
    );
    table.columns = vec![
        "ops_per_sec".into(),
        "error_rate".into(),
        "p50_ms".into(),
        "p95_ms".into(),
        "p99_ms".into(),
        "cpu_util".into(),
        "disk_util".into(),
        "net_util".into(),
    ];
    for (index, window) in telemetry.windows().iter().enumerate() {
        let util = |class: &str| window.resource(class).map(|s| s.utilization);
        table.push_row(
            &index.to_string(),
            vec![
                Some(telemetry.ops_per_sec(index)),
                Some(window.error_rate()),
                Some(window.quantile_latency_ms(0.50)),
                Some(window.quantile_latency_ms(0.95)),
                Some(window.quantile_latency_ms(0.99)),
                util("cpu"),
                util("disk"),
                util("net"),
            ],
        );
    }
    table
}

/// Chrome trace-event export (`trace` feature): turns the kernel's span
/// ring into a JSON document loadable by Perfetto / `chrome://tracing`.
#[cfg(feature = "trace")]
pub mod chrome {
    use crate::json::Json;
    use apm_sim::{TraceEvent, TraceEventKind};

    /// Process id for op spans (one Chrome "thread" per op token).
    pub const OPS_PID: u64 = 1;
    /// Process id for resource fault instants (one "thread" per
    /// resource) — separate from [`OPS_PID`] so resource ids never
    /// collide with op tokens in the tid space.
    pub const RESOURCES_PID: u64 = 2;

    fn event(name: &str, phase: &str, pid: u64, tid: u64, ts_ns: u64) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(name.to_string())),
            ("ph".into(), Json::Str(phase.to_string())),
            ("pid".into(), Json::Num(pid as f64)),
            ("tid".into(), Json::Num(tid as f64)),
            // Trace-event timestamps are microseconds; the virtual clock
            // is nanoseconds.
            ("ts".into(), Json::Num(ts_ns as f64 / 1000.0)),
        ])
    }

    /// Builds the trace-event document. Each op token becomes a Chrome
    /// "thread": its plan is a `B`/`E` span opened at submit and closed
    /// at completion, with nested `B`/`E` spans per resource-service
    /// interval. Resource fault transitions become `i` instants. Spans
    /// cut off by ring eviction (an `E` with no open `B`) are skipped;
    /// service spans left open by a timeout are closed at the op's
    /// completion; ops still in flight at the end of the trace are closed
    /// at the last recorded timestamp — per-thread nesting always
    /// balances.
    pub fn trace_to_json(events: &[TraceEvent]) -> Json {
        // Op tokens can exceed 2^53 (fault sentinels and background jobs
        // set high bits), where distinct values collapse in a JSON f64
        // `tid` — remap each token to a dense tid in first-appearance
        // order instead.
        let mut tids: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        let mut tid_of = move |token: u64| -> u64 {
            let next = tids.len() as u64;
            *tids.entry(token).or_insert(next)
        };
        // Open service-span names per dense tid, for balancing.
        let mut open_op: std::collections::BTreeMap<u64, Vec<String>> =
            std::collections::BTreeMap::new();
        let mut out = Vec::new();
        let close_all = |out: &mut Vec<Json>, tid: u64, open: Vec<String>, ts: u64| {
            for name in open.into_iter().rev() {
                out.push(event(&name, "E", OPS_PID, tid, ts));
            }
            out.push(event("op", "E", OPS_PID, tid, ts));
        };
        for e in events {
            let ts = e.at.as_nanos();
            match e.kind {
                TraceEventKind::Submit => {
                    let Some(t) = e.token else { continue };
                    let tid = tid_of(t.0);
                    // A tid already open means its completion was
                    // evicted from the ring — close the stale span here.
                    if let Some(open) = open_op.remove(&tid) {
                        close_all(&mut out, tid, open, ts);
                    }
                    out.push(event("op", "B", OPS_PID, tid, ts));
                    open_op.insert(tid, Vec::new());
                }
                TraceEventKind::ServiceStart => {
                    let Some(t) = e.token else { continue };
                    let tid = tid_of(t.0);
                    let Some(open) = open_op.get_mut(&tid) else {
                        continue;
                    };
                    let name = e
                        .resource
                        .map_or_else(|| "service".to_string(), |r| format!("resource{}", r.0));
                    out.push(event(&name, "B", OPS_PID, tid, ts));
                    open.push(name);
                }
                TraceEventKind::ServiceEnd => {
                    let Some(t) = e.token else { continue };
                    let tid = tid_of(t.0);
                    let Some(open) = open_op.get_mut(&tid) else {
                        continue;
                    };
                    if let Some(name) = open.pop() {
                        out.push(event(&name, "E", OPS_PID, tid, ts));
                    }
                }
                TraceEventKind::Complete(_) => {
                    let Some(t) = e.token else { continue };
                    let tid = tid_of(t.0);
                    let Some(open) = open_op.remove(&tid) else {
                        continue;
                    };
                    close_all(&mut out, tid, open, ts);
                }
                TraceEventKind::ResourceDown
                | TraceEventKind::ResourceRestored
                | TraceEventKind::Slowdown => {
                    let name = match e.kind {
                        TraceEventKind::ResourceDown => "fault:down",
                        TraceEventKind::ResourceRestored => "fault:restored",
                        // The enclosing arm constrains `kind` to the three
                        // fault transitions, so this catch-all is Slowdown.
                        // audit:allow(wildcard-match)
                        _ => "fault:slowdown",
                    };
                    let tid = e.resource.map_or(0, |r| u64::from(r.0));
                    let mut instant = event(name, "i", RESOURCES_PID, tid, ts);
                    if let Json::Obj(fields) = &mut instant {
                        fields.push(("s".into(), Json::Str("g".into())));
                    }
                    out.push(instant);
                }
                TraceEventKind::Enqueue => {}
            }
        }
        let end_ns = events.iter().map(|e| e.at.as_nanos()).max().unwrap_or(0);
        for (tid, open) in open_op {
            close_all(&mut out, tid, open, end_ns);
        }
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(out)),
            ("displayTimeUnit".into(), Json::Str("ms".into())),
        ])
    }
}

/// Runs a small fault-laden Cassandra benchmark with tracing on and
/// exports it: returns the Chrome trace JSON plus the kernel's trace
/// fingerprint. Deterministic — two calls return identical strings.
#[cfg(feature = "trace")]
pub fn capture_trace_demo() -> (String, u64) {
    use apm_sim::SimTime;

    let profile = ExperimentProfile {
        scale: 0.002,
        data_factor: 1.0,
        warmup_secs: 0.1,
        measure_secs: 1.0,
        seed: 7,
    };
    let nodes = 2;
    let mut engine = Engine::new();
    // The run is throttled far below saturation so the whole trace fits
    // the ring (nothing is evicted) and the exported JSON stays small.
    engine.set_trace_capacity(1 << 12);
    let mut store = StoreKind::Cassandra.build(
        &mut engine,
        ClusterSpec::cluster_m(),
        nodes,
        profile.scale,
        profile.seed,
    );
    let config = RunConfig {
        workload: Workload::r(),
        client: ClientConfig::cluster_m(nodes)
            .with_throttle(Throttle::TargetOps(200.0))
            .with_window(profile.warmup_secs, profile.measure_secs),
        records_per_node: profile.records_per_node(),
        nodes,
        seed: profile.seed,
        event_at_secs: None,
        faults: FaultSchedule::none().crash(1, SimTime(300_000_000), SimTime(600_000_000)),
        op_deadline: Some(apm_sim::SimDuration::from_millis(100)),
        telemetry_window_secs: None,
        resilience: None,
        checkpoints: None,
    };
    let _ = run_benchmark(&mut engine, store.as_mut(), &config);
    let json = chrome::trace_to_json(&engine.tracer().events());
    let mut text = json.to_pretty();
    text.push('\n');
    (text, engine.tracer().fingerprint())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_covers_every_class_and_ignores_clients() {
        let profile = ExperimentProfile::test();
        let (engine, result) = run_instrumented(
            StoreKind::Cassandra,
            2,
            &Workload::r(),
            &profile,
            Throttle::Unlimited,
            None,
        );
        let attribution = attribute_time(&engine, result.stats.total_ops());
        assert_eq!(attribution.len(), RESOURCE_CLASSES.len());
        let cpu = attribution[0].1;
        assert!(cpu.service_ms > 0.0, "reads must consume server cpu");
        assert!(
            cpu.queue_ms > cpu.service_ms,
            "saturated loop queues more than it serves: {cpu:?}"
        );
        // Zero ops must not divide by zero.
        let empty = attribute_time(&engine, 0);
        assert_eq!(empty[0].1.queue_ms, 0.0);
    }

    #[test]
    fn profile_table_has_one_row_per_store_and_six_columns() {
        let t = time_attribution(&ExperimentProfile::test());
        assert_eq!(t.rows, vec!["cassandra", "hbase", "redis"]);
        assert_eq!(t.columns.len(), 6);
        assert_eq!(
            t.get("redis", "disk_service_ms"),
            Some(0.0),
            "redis 2.4 without persistence touches no server disk"
        );
        assert!(t.get("cassandra", "cpu_service_ms").unwrap() > 0.0);
        assert!(
            t.get("redis", "cpu_service_ms").unwrap() > 0.0,
            "the event loop counts as server compute"
        );
    }

    #[test]
    fn telemetry_timeline_tracks_the_bounded_target() {
        let t = telemetry_timeline(&ExperimentProfile::test());
        assert!(t.rows.len() >= 2, "need at least two windows: {:?}", t.rows);
        for row in &t.rows {
            let p99 = t.get(row, "p99_ms").unwrap();
            let p50 = t.get(row, "p50_ms").unwrap();
            assert!(p99 >= p50, "window {row}: p99 {p99} < p50 {p50}");
            assert_eq!(t.get(row, "error_rate"), Some(0.0));
            let cpu = t.get(row, "cpu_util").unwrap();
            assert!(cpu > 0.0 && cpu < 1.2, "window {row}: cpu_util {cpu}");
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn chrome_export_balances_spans_and_is_deterministic() {
        let (first, fp_first) = capture_trace_demo();
        let (second, fp_second) = capture_trace_demo();
        assert_eq!(fp_first, fp_second, "trace fingerprint must be stable");
        assert_eq!(first, second, "exported JSON must be byte-identical");
        let doc = crate::json::parse(&first).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let phase = |e: &crate::json::Json| e.get("ph").unwrap().as_str().unwrap().to_string();
        let begins = events.iter().filter(|e| phase(e) == "B").count();
        let ends = events.iter().filter(|e| phase(e) == "E").count();
        assert_eq!(begins, ends, "every span must balance");
        assert!(
            events.iter().any(|e| phase(e) == "i"),
            "the injected crash must appear as instants"
        );
    }
}
