//! Chaos search: seeded fault-schedule generation, correctness oracles,
//! and automatic schedule shrinking.
//!
//! The pipeline has three stages, all deterministic in one campaign
//! seed:
//!
//! 1. A [`ChaosGenerator`] samples random-but-reproducible
//!    [`ChaosSchedule`]s — time-disjoint fault *windows* (crash/restart,
//!    fail-slow, disk slowdown, network partition, cluster-wide deadline
//!    storms) drawn from a SplitMix64 stream — optionally composed with
//!    a client-side [`ResiliencePolicy`] under test.
//! 2. Each schedule runs against the store and four correctness
//!    *oracles* judge the outcome ([`apm_core::chaos::OracleKind`]):
//!    durability (every client-acked insert readable after all
//!    recoveries, via the runner's [`RunLedger`]), conservation (logical
//!    op accounting balances), an availability floor, and
//!    recovery-convergence (post-fault throughput returns to a band of
//!    the fault-free baseline).
//! 3. A delta-debugging *shrinker* minimizes every failing schedule to
//!    a 1-minimal set of fault windows. Probes are masked replays of
//!    the original run ([`run_benchmark_masked`]) and resume from the
//!    last checkpoint the full run captured before the first suppressed
//!    event instead of replaying from t = 0; schedules that fail to
//!    replay identically are flagged non-deterministic and localized
//!    with [`bisect_divergence`] instead of shrunk.
//!
//! Shrinking works on windows, not raw events, so a probe never strands
//! a `Crash` without its matching `Restart` — which would make the
//! durability oracle fire for mere unavailability rather than data
//! loss.
//!
//! Everything is off by default: no chaos code runs unless the
//! `repro chaos` subcommand or the `ext-chaos-*` experiments invoke it,
//! and the campaign report is a pure function of (store, seed, budget).

use crate::experiment::{ExperimentProfile, StoreKind};
use crate::json::Json;
use apm_core::chaos::{
    CampaignReport, ChaosEventRecord, MinimizedRepro, OracleKind, OracleVerdict, ScheduleOutcome,
    ScheduleRecord, CAMPAIGN_FORMAT_VERSION,
};
use apm_core::driver::ClientConfig;
use apm_core::ops::{OpOutcome, Operation};
use apm_core::rng::SplitMix64;
use apm_core::snap::{fnv1a64, SnapWriter};
use apm_core::stats::BenchStats;
use apm_core::workload::Workload;
use apm_sim::{ClusterSpec, Engine, FaultEvent, FaultKind, FaultSchedule, SimDuration, SimTime};
use apm_stores::api::{DistributedStore, StoreCtx};
use apm_stores::cassandra::{CassandraConfig, CassandraStore};
use apm_stores::resilience::{ResiliencePolicy, RetryPolicy};
use apm_stores::runner::{
    bisect_divergence, resume_benchmark_masked, run_benchmark_masked, Checkpoint, CheckpointSpec,
    RunConfig, RunResult,
};
use std::collections::BTreeMap;

/// Node count of the canonical chaos scenario (Cluster M).
pub const NODES: u32 = 4;

/// Schedules sampled when the caller does not pick a budget.
pub const DEFAULT_BUDGET: u32 = 4;

/// Client-side deadline for every chaos run: stalled requests (network
/// partitions, storms) must surface as timeouts for the closed loop to
/// keep moving.
const OP_DEADLINE: SimDuration = SimDuration::from_millis(250);

// ---------------------------------------------------------------------------
// Fault windows and schedules

/// What happens inside one fault window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowShape {
    /// One node crashes at the window start and restarts at its end.
    Crash,
    /// One node's disk degrades to `factor`× service times.
    SlowDisk {
        /// Service-time multiplier.
        factor: u32,
    },
    /// One node is network-partitioned (requests stall until the
    /// client deadline fires).
    Partition,
    /// One node fail-slows to `factor`× while still answering.
    FailSlow {
        /// Service-time multiplier.
        factor: u32,
    },
    /// Deadline storm: *every* node fail-slows to `factor`×
    /// simultaneously, surfacing as a cluster-wide burst of timeouts.
    Storm {
        /// Service-time multiplier.
        factor: u32,
    },
}

/// One fault window: a shape applied to a node (or, for storms, the
/// whole cluster) over `[start, until)`. Times are offsets from the
/// start of the measurement window, like [`FaultEvent::at`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    /// Target node (ignored by [`WindowShape::Storm`]).
    pub node: usize,
    /// Window start, offset from the measurement-window start.
    pub start: SimTime,
    /// Window end (restart/restore/heal), same clock.
    pub until: SimTime,
    pub shape: WindowShape,
}

impl FaultWindow {
    /// The fault events this window expands to, paired start/end per
    /// affected node.
    fn events(&self, nodes: usize) -> Vec<FaultEvent> {
        let pair = |node: usize, begin: FaultKind, end: FaultKind| {
            vec![
                FaultEvent {
                    at: self.start,
                    node,
                    kind: begin,
                },
                FaultEvent {
                    at: self.until,
                    node,
                    kind: end,
                },
            ]
        };
        match self.shape {
            WindowShape::Crash => pair(self.node, FaultKind::Crash, FaultKind::Restart),
            WindowShape::SlowDisk { factor } => pair(
                self.node,
                FaultKind::DiskSlow { factor },
                FaultKind::DiskRestore,
            ),
            WindowShape::Partition => pair(
                self.node,
                FaultKind::PartitionStart,
                FaultKind::PartitionEnd,
            ),
            WindowShape::FailSlow { factor } => pair(
                self.node,
                FaultKind::FailSlow { factor },
                FaultKind::FailSlowEnd,
            ),
            WindowShape::Storm { factor } => (0..nodes)
                .flat_map(|node| pair(node, FaultKind::FailSlow { factor }, FaultKind::FailSlowEnd))
                .collect(),
        }
    }
}

/// A sampled schedule: the windows, the flattened [`FaultSchedule`] fed
/// to the runner, and the event → window mapping the shrinker masks by.
#[derive(Clone, Debug)]
pub struct ChaosSchedule {
    pub windows: Vec<FaultWindow>,
    /// The composed schedule, merged time-sorted exactly as the runner
    /// dispatches it.
    pub schedule: FaultSchedule,
    /// `tags[i]` is the window index owning `schedule.events()[i]`.
    tags: Vec<usize>,
}

impl ChaosSchedule {
    /// Flattens windows into one time-sorted schedule, tagging every
    /// event with its owning window. The insertion rule is the same
    /// stable sort [`FaultSchedule::push`] uses, so index `i` of `tags`
    /// lines up with index `i` of `schedule.events()` — which is the
    /// index the runner's fault mask addresses.
    pub fn from_windows(windows: Vec<FaultWindow>, nodes: usize) -> ChaosSchedule {
        let mut tagged: Vec<(FaultEvent, usize)> = Vec::new();
        for (tag, window) in windows.iter().enumerate() {
            for event in window.events(nodes) {
                let pos = tagged.partition_point(|(e, _)| e.at <= event.at);
                tagged.insert(pos, (event, tag));
            }
        }
        let mut schedule = FaultSchedule::none();
        for (event, _) in &tagged {
            schedule.push(*event);
        }
        ChaosSchedule {
            windows,
            schedule,
            tags: tagged.into_iter().map(|(_, tag)| tag).collect(),
        }
    }

    /// Per-event dispatch mask for a subset of enabled windows.
    pub fn mask(&self, enabled: &[bool]) -> Vec<bool> {
        self.tags.iter().map(|&tag| enabled[tag]).collect()
    }

    /// The events that dispatch under a window subset, in order.
    pub fn enabled_events(&self, enabled: &[bool]) -> Vec<FaultEvent> {
        self.schedule
            .events()
            .iter()
            .zip(&self.tags)
            .filter(|(_, &tag)| enabled[tag])
            .map(|(event, _)| *event)
            .collect()
    }
}

/// Seeded sampler of [`ChaosSchedule`]s. Windows are drawn into
/// disjoint time slots covering 5–60 % of the measurement window —
/// disjointness keeps fault pairs well-nested per node, and capping at
/// 60 % leaves a recovery tail for the convergence oracle to judge.
pub struct ChaosGenerator {
    rng: SplitMix64,
    nodes: usize,
}

impl ChaosGenerator {
    /// A generator over `nodes`-node clusters, deterministic in `seed`.
    pub fn new(seed: u64, nodes: usize) -> ChaosGenerator {
        ChaosGenerator {
            rng: SplitMix64::new(seed),
            nodes,
        }
    }

    /// Samples the next schedule: 1–3 windows with random shape,
    /// density, duration, and targeting.
    pub fn sample(&mut self, measure_secs: f64) -> ChaosSchedule {
        let count = 1 + (self.rng.next_u64() % 3) as usize;
        let span = (measure_secs * 1e9) as u64;
        let lo = span / 20; // 5 %
        let hi = span * 3 / 5; // 60 %
        let slot = (hi - lo) / count as u64;
        let mut windows = Vec::with_capacity(count);
        for i in 0..count {
            let base = lo + slot * i as u64;
            // Start in the first 40 % of the slot, last 24–60 % of it:
            // the window always ends inside its own slot.
            let start = base + self.rng.next_u64() % (slot * 2 / 5).max(1);
            let len = slot * 6 / 25 + self.rng.next_u64() % (slot * 9 / 25).max(1);
            let node = (self.rng.next_u64() % self.nodes as u64) as usize;
            let shape = match self.rng.next_u64() % 5 {
                0 => WindowShape::Crash,
                1 => WindowShape::SlowDisk {
                    factor: 2 + (self.rng.next_u64() % 7) as u32,
                },
                2 => WindowShape::Partition,
                3 => WindowShape::FailSlow {
                    factor: 2 + (self.rng.next_u64() % 3) as u32,
                },
                _ => WindowShape::Storm {
                    factor: 4 + (self.rng.next_u64() % 5) as u32,
                },
            };
            windows.push(FaultWindow {
                node,
                start: SimTime(start),
                until: SimTime(start + len),
                shape,
            });
        }
        ChaosSchedule::from_windows(windows, self.nodes)
    }
}

// ---------------------------------------------------------------------------
// Oracles

/// Which oracles run and how lenient they are.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OracleConfig {
    /// Read back every acked insert after the run. Off for stores whose
    /// crash semantics legitimately lose acked data (Redis holds its
    /// shard purely in memory — a crash *is* data loss there, by
    /// design, not by bug).
    pub durability: bool,
    /// Whole-run throughput must stay above this fraction of the
    /// fault-free baseline.
    pub availability_floor: f64,
    /// Post-fault tail throughput must return to this fraction of the
    /// baseline's tail.
    pub convergence_band: f64,
}

impl OracleConfig {
    /// The oracle set for a store legend name.
    pub fn for_store(name: &str) -> OracleConfig {
        OracleConfig {
            durability: name != "redis",
            availability_floor: 0.05,
            convergence_band: 0.5,
        }
    }
}

/// The fault-free reference the availability and convergence oracles
/// compare against. `resolution` is the per-second count of resolved
/// operations — successes plus errors — so the convergence oracle
/// measures "the request loop keeps turning at baseline rate" rather
/// than penalising a store that legitimately answers with errors after
/// recovery (e.g. Redis misses on keys a crash wiped); data correctness
/// stays the durability oracle's job.
struct Baseline {
    throughput: f64,
    resolution: Vec<u64>,
}

fn timeline_count(timeline: &[u64], second: usize) -> u64 {
    timeline.get(second).copied().unwrap_or(0)
}

/// Per-second resolved operations: successes plus errors.
fn resolution_timeline(stats: &BenchStats) -> Vec<u64> {
    let ok = stats.timeline();
    let err = stats.error_timeline();
    (0..ok.len().max(err.len()))
        .map(|s| timeline_count(ok, s) + timeline_count(err, s))
        .collect()
}

/// Judges one completed run. `enabled` lists the fault events that
/// actually dispatched (the mask's view of the schedule); the
/// convergence oracle measures the tail after the last of them.
#[allow(clippy::too_many_arguments)]
fn evaluate_oracles(
    oracles: &OracleConfig,
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    result: &RunResult,
    connections: u32,
    measure_secs: f64,
    enabled: &[FaultEvent],
    baseline: &Baseline,
) -> Vec<OracleVerdict> {
    let mut verdicts = Vec::new();

    if oracles.durability {
        let mut lost = 0u64;
        let mut first_lost = None;
        for key in &result.ledger.acked_inserts {
            let (outcome, _plan) = store.plan_op(0, &Operation::Read { key: *key }, engine);
            let readable = match outcome {
                OpOutcome::Found(_) => true,
                OpOutcome::Scanned(_) | OpOutcome::Done => true,
                OpOutcome::Missing | OpOutcome::Rejected(_) => false,
            };
            if !readable {
                lost += 1;
                if first_lost.is_none() {
                    first_lost = Some(*key);
                }
            }
        }
        let detail = match first_lost {
            None => format!(
                "{} acked inserts all readable",
                result.ledger.acked_inserts.len()
            ),
            Some(key) => format!(
                "{lost} of {} acked inserts unreadable after recovery (first: {key:?})",
                result.ledger.acked_inserts.len()
            ),
        };
        verdicts.push(OracleVerdict {
            kind: OracleKind::Durability,
            pass: lost == 0,
            detail,
        });
    }

    {
        let ledger = &result.ledger;
        let recorded =
            result.stats.total_ops() + result.stats.total_errors() + result.stats.total_rejected();
        let balanced = ledger.resolved <= ledger.logical
            && ledger.logical - ledger.resolved <= u64::from(connections)
            && ledger.rejected <= ledger.resolved
            && recorded <= ledger.logical;
        verdicts.push(OracleVerdict {
            kind: OracleKind::Conservation,
            pass: balanced,
            detail: format!(
                "logical {} resolved {} rejected {} residue {} recorded {}",
                ledger.logical,
                ledger.resolved,
                ledger.rejected,
                ledger.logical - ledger.resolved.min(ledger.logical),
                recorded
            ),
        });
    }

    {
        let floor = oracles.availability_floor * baseline.throughput;
        let throughput = result.throughput();
        verdicts.push(OracleVerdict {
            kind: OracleKind::AvailabilityFloor,
            pass: throughput >= floor,
            detail: format!(
                "{throughput:.0} ops/s vs floor {floor:.0} ({:.0} baseline)",
                baseline.throughput
            ),
        });
    }

    {
        let last = enabled.iter().map(|e| e.at.as_nanos()).max();
        let total_secs = measure_secs.ceil() as usize;
        let (pass, detail) = match last {
            None => (true, "no fault dispatched; trivially converged".to_string()),
            Some(last_ns) => {
                let tail_from = (last_ns / 1_000_000_000) as usize + 1;
                if tail_from >= total_secs {
                    (true, format!("no tail after t={tail_from}s; skipped"))
                } else {
                    let run_resolution = resolution_timeline(&result.stats);
                    let run_tail: u64 = (tail_from..total_secs)
                        .map(|s| timeline_count(&run_resolution, s))
                        .sum();
                    let base_tail: u64 = (tail_from..total_secs)
                        .map(|s| timeline_count(&baseline.resolution, s))
                        .sum();
                    let need = oracles.convergence_band * base_tail as f64;
                    (
                        base_tail == 0 || run_tail as f64 >= need,
                        format!(
                            "tail [{tail_from}s..{total_secs}s): {run_tail} resolved vs baseline {base_tail}"
                        ),
                    )
                }
            }
        };
        verdicts.push(OracleVerdict {
            kind: OracleKind::RecoveryConvergence,
            pass,
            detail,
        });
    }

    verdicts
}

fn failing_kinds(verdicts: &[OracleVerdict]) -> Vec<OracleKind> {
    verdicts
        .iter()
        .filter(|v| !v.pass)
        .map(|v| v.kind)
        .collect()
}

// ---------------------------------------------------------------------------
// Campaign targets and options

/// Factory producing a fresh store instance for one campaign run.
type StoreFactory = Box<dyn Fn(&mut Engine) -> Box<dyn DistributedStore>>;

/// What a campaign runs against: a store factory plus its oracle set.
pub struct ChaosTarget {
    label: String,
    oracles: OracleConfig,
    build: StoreFactory,
}

impl ChaosTarget {
    /// A healthy store from the standard factory.
    pub fn store(kind: StoreKind, profile: &ExperimentProfile) -> ChaosTarget {
        let scale = profile.scale;
        let seed = profile.seed;
        ChaosTarget {
            label: kind.name().to_string(),
            oracles: OracleConfig::for_store(kind.name()),
            build: Box::new(move |engine| {
                kind.build(engine, ClusterSpec::cluster_m(), NODES, scale, seed)
            }),
        }
    }

    /// The seeded known-bug fixture: Cassandra at rf=2 with
    /// [`CassandraConfig::skip_hint_replay`] set, so a rejoining node
    /// silently discards the writes acked on its behalf during the
    /// outage. Only the end-to-end durability oracle can catch it —
    /// the store's own hint auditor is told the queue drained.
    pub fn broken_cassandra(profile: &ExperimentProfile) -> ChaosTarget {
        let scale = profile.scale;
        let seed = profile.seed;
        ChaosTarget {
            label: "cassandra-skip-hints".to_string(),
            oracles: OracleConfig::for_store("cassandra"),
            build: Box::new(move |engine| {
                let ctx = StoreCtx::new(
                    engine,
                    ClusterSpec::cluster_m(),
                    NODES,
                    StoreCtx::standard_client_machines(NODES),
                    scale,
                    seed,
                );
                Box::new(CassandraStore::new(
                    ctx,
                    CassandraConfig {
                        replication: 2,
                        skip_hint_replay: true,
                        ..CassandraConfig::default()
                    },
                ))
            }),
        }
    }

    /// The campaign label (store legend name or fixture name).
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Campaign knobs.
#[derive(Clone, Copy, Debug)]
pub struct ChaosOptions {
    /// Seeds the schedule generator; the whole report is a pure
    /// function of (target, profile, options).
    pub seed: u64,
    /// Schedules to sample.
    pub budget: u32,
    /// Compose a standard retry policy under test.
    pub resilient: bool,
}

impl ChaosOptions {
    /// Default-budget options.
    pub fn new(seed: u64) -> ChaosOptions {
        ChaosOptions {
            seed,
            budget: DEFAULT_BUDGET,
            resilient: false,
        }
    }
}

/// A campaign's machine-readable report plus the harness-level
/// reproducers backing each `minimized` entry, re-executable by
/// [`probe_schedule`] for independent verification.
pub struct CampaignOutcome {
    pub report: CampaignReport,
    pub repros: Vec<ScheduleRepro>,
}

/// One minimized reproducer in executable form.
pub struct ScheduleRepro {
    /// The originating schedule.
    pub schedule: ChaosSchedule,
    /// The minimized window subset (`enabled[w]` = window `w` kept).
    pub enabled: Vec<bool>,
}

// ---------------------------------------------------------------------------
// Campaign execution

fn chaos_config(
    profile: &ExperimentProfile,
    faults: FaultSchedule,
    checkpoints: Option<CheckpointSpec>,
    resilient: bool,
) -> RunConfig {
    RunConfig {
        workload: Workload::rw(),
        client: ClientConfig::cluster_m(NODES)
            .with_window(profile.warmup_secs, profile.measure_secs),
        records_per_node: profile.records_per_node(),
        nodes: NODES,
        seed: profile.seed,
        event_at_secs: None,
        faults,
        op_deadline: Some(OP_DEADLINE),
        telemetry_window_secs: None,
        resilience: resilient.then(|| ResiliencePolicy {
            retry: Some(RetryPolicy::standard()),
            ..ResiliencePolicy::default()
        }),
        checkpoints,
    }
}

/// One executed chaos run with the engine and store kept alive for the
/// durability read-back.
struct ChaosRun {
    engine: Engine,
    store: Box<dyn DistributedStore>,
    result: RunResult,
}

fn execute(target: &ChaosTarget, config: &RunConfig, mask: Option<&[bool]>) -> ChaosRun {
    let mut engine = Engine::new();
    let mut store = (target.build)(&mut engine);
    let result = run_benchmark_masked(&mut engine, store.as_mut(), config, mask);
    ChaosRun {
        engine,
        store,
        result,
    }
}

/// Replay-equality fingerprint: stats, ledger, and every checkpoint's
/// state hash. Two runs of the same schedule must agree on all of it.
fn run_fingerprint(result: &RunResult) -> u64 {
    let mut w = SnapWriter::new();
    w.put(&result.stats);
    w.put_u64(result.issued);
    w.put(&result.ledger);
    for cp in &result.checkpoints {
        w.put_u64(cp.state_hash());
    }
    fnv1a64(w.bytes())
}

fn event_record(event: &FaultEvent) -> ChaosEventRecord {
    let kind = match event.kind {
        FaultKind::Crash => "crash".to_string(),
        FaultKind::Restart => "restart".to_string(),
        FaultKind::DiskSlow { factor } => format!("disk-slow(x{factor})"),
        FaultKind::DiskRestore => "disk-restore".to_string(),
        FaultKind::PartitionStart => "partition-start".to_string(),
        FaultKind::PartitionEnd => "partition-end".to_string(),
        FaultKind::FailSlow { factor } => format!("fail-slow(x{factor})"),
        FaultKind::FailSlowEnd => "fail-slow-end".to_string(),
    };
    ChaosEventRecord {
        at_ns: event.at.as_nanos(),
        node: event.node,
        kind,
    }
}

/// The shrinker's probe engine: runs window subsets of one fixed
/// schedule, resuming from the full run's checkpoints where sound, and
/// memoizes verdicts per subset.
struct Prober<'a> {
    target: &'a ChaosTarget,
    config: &'a RunConfig,
    schedule: &'a ChaosSchedule,
    baseline: &'a Baseline,
    profile: &'a ExperimentProfile,
    connections: u32,
    /// Absolute virtual time of the measurement-window start, derived
    /// the same way the runner derives it (load is untimed, so the
    /// transaction phase starts at t = 0).
    warmup_ns: u64,
    full_checkpoints: &'a [Checkpoint],
    memo: BTreeMap<Vec<bool>, Vec<OracleKind>>,
    probes: u32,
    resumed_probes: u32,
}

impl Prober<'_> {
    /// The oracle kinds that fire when only `enabled` windows dispatch.
    fn failing(&mut self, enabled: &[bool]) -> Vec<OracleKind> {
        if let Some(hit) = self.memo.get(enabled) {
            return hit.clone();
        }
        let mask = self.schedule.mask(enabled);
        // A checkpoint is reusable iff it was captured strictly before
        // the first suppressed dispatch: up to that point the masked
        // run is byte-identical to the full run that sealed it.
        let first_disabled = self
            .schedule
            .schedule
            .events()
            .iter()
            .zip(&mask)
            .filter(|(_, &enabled)| !enabled)
            .map(|(event, _)| event.at.as_nanos())
            .min();
        let snapshot = first_disabled.and_then(|offset| {
            let limit = self.warmup_ns + offset;
            self.full_checkpoints
                .iter()
                .rev()
                .find(|cp| cp.at.as_nanos() < limit)
        });
        self.probes += 1;
        let mut run = match snapshot {
            Some(cp) => {
                let mut engine = Engine::new();
                let mut store = (self.target.build)(&mut engine);
                match resume_benchmark_masked(
                    &mut engine,
                    store.as_mut(),
                    self.config,
                    &cp.bytes,
                    Some(&mask),
                ) {
                    Ok(result) => {
                        self.resumed_probes += 1;
                        ChaosRun {
                            engine,
                            store,
                            result,
                        }
                    }
                    // A refused resume (feature mismatch) falls back to
                    // a full replay; determinism is unaffected either
                    // way.
                    Err(_) => execute(self.target, self.config, Some(&mask)),
                }
            }
            None => execute(self.target, self.config, Some(&mask)),
        };
        let enabled_events = self.schedule.enabled_events(enabled);
        let verdicts = evaluate_oracles(
            &self.target.oracles,
            &mut run.engine,
            run.store.as_mut(),
            &run.result,
            self.connections,
            self.profile.measure_secs,
            &enabled_events,
            self.baseline,
        );
        let failing = failing_kinds(&verdicts);
        self.memo.insert(enabled.to_vec(), failing.clone());
        failing
    }
}

fn mask_of(kept: &[usize], windows: usize) -> Vec<bool> {
    let mut mask = vec![false; windows];
    for &w in kept {
        mask[w] = true;
    }
    mask
}

/// Zeller–Hildebrandt ddmin over fault windows: returns a 1-minimal
/// failing subset (removing any single remaining window makes the
/// schedule pass).
fn ddmin(prober: &mut Prober<'_>, windows: usize) -> Vec<bool> {
    let mut current: Vec<usize> = (0..windows).collect();
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let subsets: Vec<Vec<usize>> = current.chunks(chunk).map(<[usize]>::to_vec).collect();
        let mut next: Option<(Vec<usize>, usize)> = None;
        for subset in &subsets {
            if subset.len() < current.len() && !prober.failing(&mask_of(subset, windows)).is_empty()
            {
                next = Some((subset.clone(), 2));
                break;
            }
        }
        if next.is_none() && subsets.len() > 2 {
            for subset in &subsets {
                let complement: Vec<usize> = current
                    .iter()
                    .copied()
                    .filter(|w| !subset.contains(w))
                    .collect();
                if complement.len() < current.len()
                    && !prober.failing(&mask_of(&complement, windows)).is_empty()
                {
                    next = Some((complement, granularity.saturating_sub(1).max(2)));
                    break;
                }
            }
        }
        match next {
            Some((reduced, coarseness)) => {
                current = reduced;
                granularity = coarseness;
            }
            None => {
                if granularity >= current.len() {
                    break;
                }
                granularity = (granularity * 2).min(current.len());
            }
        }
    }
    mask_of(&current, windows)
}

/// Runs a full chaos campaign: sample `budget` schedules, judge each
/// with the oracles, shrink every failure, and localize any
/// non-deterministic replay with checkpoint bisection.
pub fn run_campaign(
    target: &ChaosTarget,
    profile: &ExperimentProfile,
    opts: &ChaosOptions,
) -> CampaignOutcome {
    let spec = CheckpointSpec::every(profile.measure_secs / 4.0);
    let connections = ClientConfig::cluster_m(NODES).connections;
    let warmup_ns = SimDuration::from_secs_f64(profile.warmup_secs).as_nanos();

    // Fault-free baseline for the availability and convergence oracles.
    let base_run = execute(
        target,
        &chaos_config(profile, FaultSchedule::none(), None, opts.resilient),
        None,
    );
    let baseline = Baseline {
        throughput: base_run.result.throughput(),
        resolution: resolution_timeline(&base_run.result.stats),
    };

    let mut generator = ChaosGenerator::new(opts.seed, NODES as usize);
    let mut schedules = Vec::new();
    let mut minimized = Vec::new();
    let mut repros = Vec::new();

    for index in 0..opts.budget {
        let chaos = generator.sample(profile.measure_secs);
        let config = chaos_config(
            profile,
            chaos.schedule.clone(),
            Some(spec.clone()),
            opts.resilient,
        );
        let mut full = execute(target, &config, None);
        let all_events: Vec<FaultEvent> = chaos.schedule.events().to_vec();
        let verdicts = evaluate_oracles(
            &target.oracles,
            &mut full.engine,
            full.store.as_mut(),
            &full.result,
            connections,
            profile.measure_secs,
            &all_events,
            &baseline,
        );
        let events: Vec<ChaosEventRecord> = all_events.iter().map(event_record).collect();
        let failing = failing_kinds(&verdicts);

        if failing.is_empty() {
            schedules.push(ScheduleRecord {
                index,
                events,
                outcome: ScheduleOutcome::Pass,
                verdicts,
            });
            continue;
        }

        // A failing schedule must replay identically before it is worth
        // shrinking; a replay mismatch is a determinism bug in the
        // stack itself, localized by checkpoint bisection instead.
        let mut replay = execute(target, &config, None);
        let replay_verdicts = evaluate_oracles(
            &target.oracles,
            &mut replay.engine,
            replay.store.as_mut(),
            &replay.result,
            connections,
            profile.measure_secs,
            &all_events,
            &baseline,
        );
        if run_fingerprint(&full.result) != run_fingerprint(&replay.result)
            || verdicts != replay_verdicts
        {
            let divergent = bisect_divergence(&full.result.checkpoints, &replay.result.checkpoints);
            minimized.push(MinimizedRepro {
                schedule_index: index,
                original_events: events.len(),
                minimized_events: events.len(),
                events: events.clone(),
                probes: 0,
                resumed_probes: 0,
                failing_oracles: failing,
                divergent_checkpoint: divergent,
            });
            schedules.push(ScheduleRecord {
                index,
                events,
                outcome: ScheduleOutcome::NonDeterministic,
                verdicts,
            });
            continue;
        }

        let mut prober = Prober {
            target,
            config: &config,
            schedule: &chaos,
            baseline: &baseline,
            profile,
            connections,
            warmup_ns,
            full_checkpoints: &full.result.checkpoints,
            memo: BTreeMap::new(),
            probes: 0,
            resumed_probes: 0,
        };
        prober
            .memo
            .insert(vec![true; chaos.windows.len()], failing.clone());
        let enabled = ddmin(&mut prober, chaos.windows.len());
        let failing_oracles = prober.failing(&enabled);
        let (probes, resumed_probes) = (prober.probes, prober.resumed_probes);
        let minimized_events: Vec<ChaosEventRecord> = chaos
            .enabled_events(&enabled)
            .iter()
            .map(event_record)
            .collect();
        minimized.push(MinimizedRepro {
            schedule_index: index,
            original_events: events.len(),
            minimized_events: minimized_events.len(),
            events: minimized_events,
            probes,
            resumed_probes,
            failing_oracles,
            divergent_checkpoint: None,
        });
        repros.push(ScheduleRepro {
            schedule: chaos.clone(),
            enabled,
        });
        schedules.push(ScheduleRecord {
            index,
            events,
            outcome: ScheduleOutcome::Violation,
            verdicts,
        });
    }

    CampaignOutcome {
        report: CampaignReport {
            version: CAMPAIGN_FORMAT_VERSION,
            store: target.label.clone(),
            seed: opts.seed,
            budget: opts.budget,
            resilient: opts.resilient,
            schedules,
            minimized,
        },
        repros,
    }
}

/// Re-executes one reproducer subset from scratch (no checkpoint
/// resume, fresh store) and returns the oracles that fire. Used by the
/// property tests and CI to verify minimized schedules independently
/// of the shrinker's own probe path.
pub fn probe_schedule(
    target: &ChaosTarget,
    profile: &ExperimentProfile,
    opts: &ChaosOptions,
    schedule: &ChaosSchedule,
    enabled: &[bool],
) -> Vec<OracleKind> {
    let connections = ClientConfig::cluster_m(NODES).connections;
    let base_run = execute(
        target,
        &chaos_config(profile, FaultSchedule::none(), None, opts.resilient),
        None,
    );
    let baseline = Baseline {
        throughput: base_run.result.throughput(),
        resolution: resolution_timeline(&base_run.result.stats),
    };
    let config = chaos_config(profile, schedule.schedule.clone(), None, opts.resilient);
    let mask = schedule.mask(enabled);
    let mut run = execute(target, &config, Some(&mask));
    let enabled_events = schedule.enabled_events(enabled);
    let verdicts = evaluate_oracles(
        &target.oracles,
        &mut run.engine,
        run.store.as_mut(),
        &run.result,
        connections,
        profile.measure_secs,
        &enabled_events,
        &baseline,
    );
    failing_kinds(&verdicts)
}

// ---------------------------------------------------------------------------
// Report serialisation

fn events_to_json(events: &[ChaosEventRecord]) -> Json {
    Json::Arr(
        events
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("at_ns".to_string(), Json::Num(e.at_ns as f64)),
                    ("node".to_string(), Json::Num(e.node as f64)),
                    ("kind".to_string(), Json::Str(e.kind.clone())),
                ])
            })
            .collect(),
    )
}

/// Serialises a campaign report. Key order is fixed and every value is
/// derived from the report alone, so the same campaign always yields
/// identical bytes.
pub fn report_to_json(report: &CampaignReport) -> Json {
    let schedules = report
        .schedules
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("index".to_string(), Json::Num(f64::from(s.index))),
                (
                    "outcome".to_string(),
                    Json::Str(s.outcome.name().to_string()),
                ),
                ("events".to_string(), events_to_json(&s.events)),
                (
                    "verdicts".to_string(),
                    Json::Arr(
                        s.verdicts
                            .iter()
                            .map(|v| {
                                Json::Obj(vec![
                                    ("oracle".to_string(), Json::Str(v.kind.name().to_string())),
                                    ("pass".to_string(), Json::Bool(v.pass)),
                                    ("detail".to_string(), Json::Str(v.detail.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let minimized = report
        .minimized
        .iter()
        .map(|m| {
            Json::Obj(vec![
                (
                    "schedule_index".to_string(),
                    Json::Num(f64::from(m.schedule_index)),
                ),
                (
                    "original_events".to_string(),
                    Json::Num(m.original_events as f64),
                ),
                (
                    "minimized_events".to_string(),
                    Json::Num(m.minimized_events as f64),
                ),
                ("events".to_string(), events_to_json(&m.events)),
                ("probes".to_string(), Json::Num(f64::from(m.probes))),
                (
                    "resumed_probes".to_string(),
                    Json::Num(f64::from(m.resumed_probes)),
                ),
                (
                    "failing_oracles".to_string(),
                    Json::Arr(
                        m.failing_oracles
                            .iter()
                            .map(|k| Json::Str(k.name().to_string()))
                            .collect(),
                    ),
                ),
                (
                    "divergent_checkpoint".to_string(),
                    match m.divergent_checkpoint {
                        Some(k) => Json::Num(f64::from(k)),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("version".to_string(), Json::Num(f64::from(report.version))),
        ("store".to_string(), Json::Str(report.store.clone())),
        ("seed".to_string(), Json::Str(format!("{:#x}", report.seed))),
        ("budget".to_string(), Json::Num(f64::from(report.budget))),
        ("resilient".to_string(), Json::Bool(report.resilient)),
        (
            "violations".to_string(),
            Json::Num(report.violations() as f64),
        ),
        ("schedules".to_string(), Json::Arr(schedules)),
        ("minimized".to_string(), Json::Arr(minimized)),
    ])
}

/// The sorted set of key paths in a report document — the schema the CI
/// golden-file check pins. Array elements share the `[]` path segment;
/// leaves record their JSON type.
pub fn report_schema(value: &Json) -> Vec<String> {
    let mut paths = std::collections::BTreeSet::new();
    schema_walk(value, "", &mut paths);
    paths.into_iter().collect()
}

fn schema_walk(value: &Json, prefix: &str, out: &mut std::collections::BTreeSet<String>) {
    match value {
        Json::Obj(pairs) => {
            for (key, inner) in pairs {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                schema_walk(inner, &path, out);
            }
        }
        Json::Arr(items) => {
            let path = format!("{prefix}[]");
            if items.is_empty() {
                out.insert(path.clone());
            }
            for item in items {
                schema_walk(item, &path, out);
            }
        }
        Json::Null => {
            out.insert(format!("{prefix}:null"));
        }
        Json::Bool(_) => {
            out.insert(format!("{prefix}:bool"));
        }
        Json::Num(_) => {
            out.insert(format!("{prefix}:number"));
        }
        Json::Str(_) => {
            out.insert(format!("{prefix}:string"));
        }
    }
}

// ---------------------------------------------------------------------------
// Experiments

use apm_core::report::Table;

/// Campaign seed for the extension tables, derived from the profile
/// seed so `--seed` reseeds the whole search.
fn campaign_seed(profile: &ExperimentProfile) -> u64 {
    profile.seed ^ 0xC4A0_5EED
}

/// `ext-chaos-campaign`: a small fixed-budget campaign per store. Every
/// healthy store must pass every oracle on every sampled schedule, and
/// every schedule must replay deterministically.
pub fn chaos_campaign(profile: &ExperimentProfile) -> Table {
    let opts = ChaosOptions {
        seed: campaign_seed(profile),
        budget: 3,
        resilient: false,
    };
    let mut table = Table::new(
        "Extension: chaos search campaign, 3 seeded schedules per store (workload RW, 4 nodes)",
        "store",
        "count | count | 0/1",
    );
    table.columns = vec![
        "schedules".into(),
        "violations".into(),
        "deterministic".into(),
    ];
    for kind in StoreKind::ALL {
        let target = ChaosTarget::store(kind, profile);
        let outcome = run_campaign(&target, profile, &opts);
        let nondet = outcome
            .report
            .schedules
            .iter()
            .filter(|s| s.outcome == ScheduleOutcome::NonDeterministic)
            .count();
        table.push_row(
            kind.name(),
            vec![
                Some(outcome.report.schedules.len() as f64),
                Some(outcome.report.violations() as f64),
                Some(if nondet == 0 { 1.0 } else { 0.0 }),
            ],
        );
    }
    table
}

/// `ext-chaos-shrink`: the seeded known-bug fixture. The campaign must
/// find the skip-hint-replay durability bug, and the shrinker must
/// reduce the failing schedule to a single crash window (two events)
/// that still fails when re-executed from scratch.
pub fn chaos_shrink(profile: &ExperimentProfile) -> Table {
    let opts = ChaosOptions {
        seed: campaign_seed(profile),
        budget: DEFAULT_BUDGET,
        resilient: false,
    };
    let target = ChaosTarget::broken_cassandra(profile);
    let outcome = run_campaign(&target, profile, &opts);
    let mut table = Table::new(
        "Extension: durability-bug shrink, Cassandra rf=2 with hint replay disabled (workload RW, 4 nodes)",
        "fixture",
        "count | count | count | count | 0/1",
    );
    table.columns = vec![
        "violations".into(),
        "min_events".into(),
        "probes".into(),
        "resumed_probes".into(),
        "still_fails".into(),
    ];
    // The smallest minimized reproducer of any durability violation,
    // independently re-executed from scratch.
    let best = outcome
        .report
        .minimized
        .iter()
        .zip(&outcome.repros)
        .filter(|(m, _)| m.failing_oracles.contains(&OracleKind::Durability))
        .min_by_key(|(m, _)| m.minimized_events);
    let (min_events, probes, resumed, still_fails) = match best {
        Some((m, repro)) => {
            let refail = probe_schedule(&target, profile, &opts, &repro.schedule, &repro.enabled);
            (
                Some(m.minimized_events as f64),
                Some(f64::from(m.probes)),
                Some(f64::from(m.resumed_probes)),
                Some(if refail.contains(&OracleKind::Durability) {
                    1.0
                } else {
                    0.0
                }),
            )
        }
        None => (None, None, None, Some(0.0)),
    };
    table.push_row(
        "skip-hint-replay",
        vec![
            Some(outcome.report.violations() as f64),
            min_events,
            probes,
            resumed,
            still_fails,
        ],
    );
    table
}

/// Fixture campaign seed used by the regression tests, the
/// `ext-chaos-shrink` CI checks, and the schema golden. Chosen so the
/// sampled schedules include a multi-window schedule with a crash
/// window — the shrinker then has real work to do (probes, checkpoint
/// resumes) and converges to the single crash window.
pub const FIXTURE_SEED: u64 = 0xC4A0_5EED ^ 0xA9A1_2012;

/// Budget paired with [`FIXTURE_SEED`].
pub const FIXTURE_BUDGET: u32 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ExperimentProfile {
        ExperimentProfile::test()
    }

    #[test]
    fn generator_is_deterministic_and_windows_stay_disjoint() {
        let mut a = ChaosGenerator::new(11, 4);
        let mut b = ChaosGenerator::new(11, 4);
        for _ in 0..6 {
            let sa = a.sample(8.0);
            let sb = b.sample(8.0);
            assert_eq!(sa.windows, sb.windows);
            assert_eq!(sa.schedule, sb.schedule);
            // Windows are time-disjoint and inside [5 %, 60 %] of the
            // measurement window.
            let mut windows = sa.windows.clone();
            windows.sort_by_key(|w| w.start);
            for pair in windows.windows(2) {
                assert!(pair[0].until <= pair[1].start, "overlap: {pair:?}");
            }
            for w in &windows {
                assert!(w.start.as_nanos() >= 8_000_000_000 / 20);
                assert!(w.until.as_nanos() <= 8_000_000_000 * 3 / 5);
            }
        }
    }

    #[test]
    fn schedule_tags_line_up_with_runner_event_order() {
        let mut generator = ChaosGenerator::new(3, 4);
        let chaos = generator.sample(8.0);
        assert_eq!(chaos.tags.len(), chaos.schedule.len());
        // Enabling everything masks nothing.
        let all = vec![true; chaos.windows.len()];
        assert!(chaos.mask(&all).iter().all(|&m| m));
        assert_eq!(chaos.enabled_events(&all), chaos.schedule.events().to_vec());
        // Disabling one window removes exactly its events.
        if chaos.windows.len() > 1 {
            let mut some = all.clone();
            some[0] = false;
            let kept = chaos.enabled_events(&some);
            assert!(kept.len() < chaos.schedule.len());
        }
    }

    #[test]
    fn fixture_bug_is_found_and_shrunk_to_one_window() {
        let p = profile();
        let opts = ChaosOptions {
            seed: FIXTURE_SEED,
            budget: FIXTURE_BUDGET,
            resilient: false,
        };
        let target = ChaosTarget::broken_cassandra(&p);
        let outcome = run_campaign(&target, &p, &opts);
        assert!(
            outcome.report.violations() >= 1,
            "fixture bug not found: {:?}",
            outcome.report.schedules
        );
        let durability = outcome
            .report
            .minimized
            .iter()
            .find(|m| m.failing_oracles.contains(&OracleKind::Durability))
            .expect("a durability violation is minimized");
        assert!(
            durability.minimized_events <= 2,
            "shrinker left {} events",
            durability.minimized_events
        );
        assert!(
            durability.events.iter().any(|e| e.kind == "crash"),
            "minimized schedule lost the crash: {:?}",
            durability.events
        );
        assert!(durability.probes >= 1, "shrinker never probed");
        assert!(
            durability.resumed_probes >= 1,
            "no probe resumed from a checkpoint ({} probes)",
            durability.probes
        );
    }

    #[test]
    fn minimized_schedule_still_fails_and_strict_subsets_pass() {
        let p = profile();
        let opts = ChaosOptions {
            seed: FIXTURE_SEED,
            budget: FIXTURE_BUDGET,
            resilient: false,
        };
        let target = ChaosTarget::broken_cassandra(&p);
        let outcome = run_campaign(&target, &p, &opts);
        let (m, repro) = outcome
            .report
            .minimized
            .iter()
            .zip(&outcome.repros)
            .find(|(m, _)| m.failing_oracles.contains(&OracleKind::Durability))
            .expect("a durability repro");
        // The minimized subset still fails when re-executed from
        // scratch, with no checkpoint resume in the loop.
        let refail = probe_schedule(&target, &p, &opts, &repro.schedule, &repro.enabled);
        assert!(
            refail.contains(&OracleKind::Durability),
            "minimized schedule no longer fails: {refail:?}"
        );
        // 1-minimality: every strict subset of the kept windows passes.
        let kept: Vec<usize> = repro
            .enabled
            .iter()
            .enumerate()
            .filter(|(_, &on)| on)
            .map(|(w, _)| w)
            .collect();
        assert_eq!(kept.len() * 2, m.minimized_events, "windows are pairs");
        for drop in &kept {
            let mut subset = repro.enabled.clone();
            subset[*drop] = false;
            let failing = probe_schedule(&target, &p, &opts, &repro.schedule, &subset);
            assert!(
                failing.is_empty(),
                "dropping window {drop} still fails: {failing:?}"
            );
        }
    }

    #[test]
    fn same_seed_yields_byte_identical_reports() {
        let p = profile();
        let opts = ChaosOptions {
            seed: FIXTURE_SEED,
            budget: FIXTURE_BUDGET,
            resilient: false,
        };
        let a = run_campaign(&ChaosTarget::broken_cassandra(&p), &p, &opts);
        let b = run_campaign(&ChaosTarget::broken_cassandra(&p), &p, &opts);
        assert_eq!(
            report_to_json(&a.report).to_pretty(),
            report_to_json(&b.report).to_pretty()
        );
    }

    #[test]
    fn report_schema_matches_the_golden_file() {
        let p = profile();
        let opts = ChaosOptions {
            seed: FIXTURE_SEED,
            budget: FIXTURE_BUDGET,
            resilient: false,
        };
        let outcome = run_campaign(&ChaosTarget::broken_cassandra(&p), &p, &opts);
        let schema = report_schema(&report_to_json(&outcome.report)).join("\n") + "\n";
        let golden = include_str!("../golden/chaos-report-schema.txt");
        assert_eq!(
            schema, golden,
            "report schema drifted; update crates/harness/golden/chaos-report-schema.txt \
             and bump CAMPAIGN_FORMAT_VERSION if the change is structural"
        );
    }
}
