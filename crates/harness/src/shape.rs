//! Qualitative shape checks: the paper's claims as executable assertions.
//!
//! Matching absolute numbers on a simulator is not the bar — matching the
//! *shape* is: who wins, by roughly what factor, where the crossovers
//! fall. Each check encodes one claim from §5/§8 and evaluates it against
//! a generated figure table. The integration tests run them; `repro`
//! prints them under each figure.

use apm_core::report::Table;

/// Result of one shape check.
#[derive(Clone, Debug)]
pub struct ShapeResult {
    /// The paper claim, quoted or paraphrased.
    pub claim: &'static str,
    /// Whether the measured table satisfies it.
    pub pass: bool,
    /// Human-readable evidence.
    pub detail: String,
}

impl ShapeResult {
    fn of(claim: &'static str, pass: bool, detail: String) -> ShapeResult {
        ShapeResult {
            claim,
            pass,
            detail,
        }
    }
}

fn cell(t: &Table, row: &str, col: &str) -> Option<f64> {
    t.get(row, col)
}

fn ratio_check(
    claim: &'static str,
    numer: Option<f64>,
    denom: Option<f64>,
    min: f64,
    max: f64,
) -> ShapeResult {
    match (numer, denom) {
        (Some(n), Some(d)) if d > 0.0 => {
            let r = n / d;
            ShapeResult::of(
                claim,
                r >= min && r <= max,
                format!("ratio {r:.2} (want {min:.2}..{max:.2})"),
            )
        }
        _ => ShapeResult::of(claim, false, "missing cells".into()),
    }
}

fn order_check(
    claim: &'static str,
    t: &Table,
    row: &str,
    smaller: &str,
    larger: &str,
) -> ShapeResult {
    match (cell(t, row, smaller), cell(t, row, larger)) {
        (Some(s), Some(l)) => ShapeResult::of(
            claim,
            s < l,
            format!("{smaller}={s:.1} vs {larger}={l:.1} at {row}"),
        ),
        _ => ShapeResult::of(claim, false, "missing cells".into()),
    }
}

/// Shape checks for a figure id against its generated table.
pub fn checks_for(figure: &str, t: &Table) -> Vec<ShapeResult> {
    match figure {
        "fig3" => vec![
            order_check("§5.1: Redis has the highest single-node throughput", t, "1", "cassandra", "redis"),
            order_check("§5.1: HBase is the slowest single-node system", t, "1", "hbase", "voldemort"),
            ratio_check(
                "§5.1: Cassandra scales linearly 1→12",
                cell(t, "12", "cassandra"),
                cell(t, "1", "cassandra"),
                8.0,
                14.0,
            ),
            ratio_check(
                "§5.1: Voldemort scales linearly 1→12",
                cell(t, "12", "voldemort"),
                cell(t, "1", "voldemort"),
                8.0,
                14.0,
            ),
            ratio_check(
                "§5.1: HBase scales linearly 1→12",
                cell(t, "12", "hbase"),
                cell(t, "1", "hbase"),
                8.0,
                14.0,
            ),
            ratio_check(
                "§5.1: VoltDB slows down for multiple nodes",
                cell(t, "4", "voltdb"),
                cell(t, "1", "voltdb"),
                0.0,
                0.8,
            ),
            ratio_check(
                "§5.1: Redis scaling is sub-linear (sharding library)",
                cell(t, "12", "redis"),
                cell(t, "1", "redis"),
                2.0,
                10.0,
            ),
            ratio_check(
                "§8: Cassandra's 12-node throughput dominates",
                cell(t, "12", "cassandra"),
                cell(t, "12", "voldemort"),
                1.0,
                5.0,
            ),
        ],
        "fig4" => vec![
            order_check("§5.1: Voldemort has the lowest web-store read latency", t, "4", "voldemort", "cassandra"),
            order_check("§5.1: HBase's read latency is much higher than Cassandra's", t, "4", "cassandra", "hbase"),
            ratio_check(
                "§5.1: Voldemort read latency ≈ 230-260 µs, stable",
                cell(t, "12", "voldemort"),
                cell(t, "1", "voldemort"),
                0.5,
                2.0,
            ),
        ],
        "fig5" => vec![
            order_check("§5.1: HBase trades read latency for write latency", t, "4", "hbase", "cassandra"),
            order_check("§5.1: Cassandra has the highest stable write latency (vs voldemort)", t, "4", "voldemort", "cassandra"),
        ],
        "fig6" => vec![
            order_check("§5.2: VoltDB achieves the highest 1-node RW throughput (vs cassandra)", t, "1", "cassandra", "voltdb"),
            ratio_check(
                "§5.2: Cassandra RW scales linearly",
                cell(t, "12", "cassandra"),
                cell(t, "1", "cassandra"),
                8.0,
                14.0,
            ),
        ],
        "fig9" => vec![
            ratio_check(
                "§5.3: HBase throughput grows strongly with the write ratio (W vs R at 12 nodes is checked cross-figure; here 1→12 linear)",
                cell(t, "12", "hbase"),
                cell(t, "1", "hbase"),
                6.0,
                16.0,
            ),
        ],
        "fig10" => vec![
            order_check("§5.3: HBase read latency under W is the worst", t, "12", "cassandra", "hbase"),
        ],
        "fig11" => vec![
            ratio_check(
                "§5.3: HBase's write latency increases by a factor of ~20 under W (vs its sub-ms Workload-R level of ~0.9 ms)",
                cell(t, "4", "hbase"),
                Some(0.9),
                8.0,
                40.0,
            ),
            order_check("§5.3: Voldemort's write latency is almost unchanged (stays below HBase's W level)", t, "4", "voldemort", "hbase"),
        ],
        "fig12" => vec![
            order_check("§5.4: MySQL has the best single-node RS throughput (vs cassandra)", t, "1", "cassandra", "mysql"),
            ratio_check(
                "§5.4: MySQL does not scale with the number of nodes",
                cell(t, "12", "mysql"),
                cell(t, "1", "mysql"),
                0.0,
                3.0,
            ),
            ratio_check(
                "§5.4: Cassandra RS scales linearly",
                cell(t, "12", "cassandra"),
                cell(t, "1", "cassandra"),
                7.0,
                14.0,
            ),
        ],
        "fig13" => vec![
            order_check("§5.4: Redis scans are faster than Cassandra's", t, "4", "redis", "cassandra"),
            order_check("§5.4: HBase scan latency is almost in the second range (worst)", t, "4", "cassandra", "hbase"),
            ratio_check(
                "§5.4: MySQL scans are slow for >2 nodes",
                cell(t, "12", "mysql"),
                cell(t, "2", "mysql"),
                2.0,
                f64::INFINITY,
            ),
        ],
        "fig14" => vec![
            ratio_check(
                "§5.5: MySQL RSW collapses to a tiny fraction of Cassandra",
                cell(t, "4", "mysql"),
                cell(t, "4", "cassandra"),
                0.0,
                0.1,
            ),
            order_check("§5.5: VoltDB achieves the best 1-node RSW throughput (vs cassandra)", t, "1", "cassandra", "voltdb"),
        ],
        "fig15" | "fig16" => vec![
            ratio_check(
                "§5.6: at half load Cassandra's latency falls to a fraction of its saturated level (normalised=100)",
                cell(t, "50", "cassandra"),
                Some(100.0),
                0.0,
                0.45,
            ),
            ratio_check(
                "§5.6: Voldemort shows only small reductions (not query-processing-bound)",
                cell(t, "50", "voldemort"),
                Some(100.0),
                0.6,
                1.05,
            ),
        ],
        "fig17" => vec![
            order_check("§5.7: Cassandra stores the data most efficiently", t, "12", "cassandra", "mysql"),
            order_check("§5.7: HBase is the most inefficient store", t, "12", "voldemort", "hbase"),
            ratio_check(
                "§5.7: HBase uses ~10× the raw data size",
                cell(t, "12", "hbase"),
                cell(t, "12", "raw"),
                8.0,
                13.0,
            ),
        ],
        "fig18" => vec![
            ratio_check(
                "§5.8: Cassandra throughput rises ~26× from R to W on Cluster D",
                cell(t, "W", "cassandra"),
                cell(t, "R", "cassandra"),
                10.0,
                60.0,
            ),
            ratio_check(
                "§5.8: HBase rises ~15× from R to W",
                cell(t, "W", "hbase"),
                cell(t, "R", "hbase"),
                5.0,
                40.0,
            ),
            ratio_check(
                "§5.8: Voldemort rises only ~3× from R to W",
                cell(t, "W", "voldemort"),
                cell(t, "R", "voldemort"),
                1.5,
                8.0,
            ),
        ],
        "fig19" => vec![
            order_check("§5.8: Voldemort has by far the best Cluster-D read latency", t, "R", "voldemort", "cassandra"),
            order_check("§5.8: HBase is worst for W reads on Cluster D", t, "W", "cassandra", "hbase"),
        ],
        "fig20" => vec![
            order_check("§5.8: HBase write latency stays very low on Cluster D", t, "RW", "hbase", "cassandra"),
        ],
        "ext-faults-crash" => vec![
            ratio_check(
                "faults: at rf=2 a single-node crash keeps availability ≥ 99%",
                cell(t, "rf2", "availability"),
                Some(1.0),
                0.99,
                1.001,
            ),
            ratio_check(
                "faults: at rf=1 the crashed node's key range is unavailable (availability clearly below rf=2)",
                cell(t, "rf1", "availability"),
                cell(t, "rf2", "availability"),
                0.0,
                0.96,
            ),
            ratio_check(
                "faults: rf=1 sees errors during the outage",
                cell(t, "rf1", "errors"),
                Some(1.0),
                1.0,
                f64::INFINITY,
            ),
            ratio_check(
                "faults: post-restart throughput recovers within 10% of the pre-fault mean (rf=2)",
                cell(t, "rf2", "recovery_ratio"),
                Some(1.0),
                0.9,
                f64::INFINITY,
            ),
            ratio_check(
                "faults: post-restart throughput recovers within 10% of the pre-fault mean (rf=1)",
                cell(t, "rf1", "recovery_ratio"),
                Some(1.0),
                0.9,
                f64::INFINITY,
            ),
        ],
        "ext-faults-slowdisk" => vec![
            ratio_check(
                "faults: a 16× fail-slow disk dents mid-window throughput",
                cell(t, "x16", "mid_ops_per_sec"),
                cell(t, "x1", "mid_ops_per_sec"),
                0.0,
                0.9,
            ),
            ratio_check(
                "faults: degraded is not down — zero errors at x16",
                cell(t, "x16", "errors"),
                Some(1.0),
                0.0,
                0.0,
            ),
            ratio_check(
                "faults: availability stays 1.0 through the slowdown",
                cell(t, "x16", "availability"),
                Some(1.0),
                0.999,
                1.001,
            ),
            ratio_check(
                "faults: throughput recovers once the disk is restored",
                cell(t, "x16", "recovery_ratio"),
                Some(1.0),
                0.85,
                f64::INFINITY,
            ),
        ],
        "ext-faults-partition" => vec![
            ratio_check(
                "faults: without deadlines a partition stalls the whole closed loop",
                cell(t, "stall", "mid_ops_per_sec"),
                cell(t, "stall", "pre_ops_per_sec"),
                0.0,
                0.1,
            ),
            ratio_check(
                "faults: stalled connections are not errors",
                cell(t, "stall", "errors"),
                Some(1.0),
                0.0,
                0.0,
            ),
            ratio_check(
                "faults: a 10 ms client deadline keeps the surviving shards serving",
                cell(t, "timeout-10ms", "mid_ops_per_sec"),
                cell(t, "timeout-10ms", "pre_ops_per_sec"),
                0.05,
                1.0,
            ),
            ratio_check(
                "faults: deadlines surface the partition as timeout errors",
                cell(t, "timeout-10ms", "errors"),
                Some(1.0),
                1.0,
                f64::INFINITY,
            ),
        ],
        "ext-faults-failover" => vec![
            ratio_check(
                "faults: Cassandra rf=2 failover is near-instant (availability ≥ 99%)",
                cell(t, "cassandra-rf2", "availability"),
                Some(1.0),
                0.99,
                1.001,
            ),
            ratio_check(
                "faults: HBase pays a detection + WAL-replay availability gap",
                cell(t, "hbase", "availability"),
                cell(t, "cassandra-rf2", "availability"),
                0.0,
                0.99,
            ),
            ratio_check(
                "faults: Redis without replication or persistence is worst — the shard's data is gone",
                cell(t, "redis", "availability"),
                cell(t, "hbase", "availability"),
                0.0,
                0.98,
            ),
        ],
        "ext-replication" => vec![
            ratio_check(
                "ext: rf=3 costs throughput vs rf=1 (every write fans out)",
                cell(t, "3", "throughput"),
                cell(t, "1", "throughput"),
                0.0,
                0.999,
            ),
            ratio_check(
                "ext: rf=3 triples per-node disk use at the 10-minute mark",
                cell(t, "3", "disk_gb_per_node_at_10m"),
                cell(t, "1", "disk_gb_per_node_at_10m"),
                2.5,
                3.5,
            ),
        ],
        "ext-compression" => vec![
            ratio_check(
                "ext: compression shrinks on-disk data to 40-70% of raw",
                cell(t, "on", "disk_gb_per_node_at_10m"),
                cell(t, "off", "disk_gb_per_node_at_10m"),
                0.4,
                0.7,
            ),
            ratio_check(
                "ext: decompression costs read throughput",
                cell(t, "on", "thr_R"),
                cell(t, "off", "thr_R"),
                0.0,
                0.999,
            ),
        ],
        "ext-tokens" => vec![ratio_check(
            "§6: random tokens unbalance the ring; the hottest node gates the closed loop",
            cell(t, "random", "throughput"),
            cell(t, "optimal", "throughput"),
            0.0,
            0.97,
        )],
        "ext-skew" => vec![
            ratio_check(
                "ext: zipfian skew keeps the closed loop serving (no collapse vs uniform)",
                cell(t, "zipfian", "throughput"),
                cell(t, "uniform", "throughput"),
                0.25,
                1.5,
            ),
            ratio_check(
                "ext: latest-skew keeps the closed loop serving (no collapse vs uniform)",
                cell(t, "latest", "throughput"),
                cell(t, "uniform", "throughput"),
                0.25,
                1.5,
            ),
        ],
        "ext-compaction" => vec![
            ratio_check(
                "ext: both compaction strategies sustain comparable write throughput",
                cell(t, "leveled", "thr_W"),
                cell(t, "size-tiered", "thr_W"),
                0.25,
                4.0,
            ),
            ratio_check(
                "ext: both compaction strategies sustain comparable read throughput",
                cell(t, "leveled", "thr_R"),
                cell(t, "size-tiered", "thr_R"),
                0.25,
                4.0,
            ),
        ],
        "ext-mongodb" => vec![
            ratio_check(
                "§7 (Jeong): MongoDB's global write lock caps W throughput well below Cassandra's",
                cell(t, "W", "mongodb"),
                cell(t, "W", "cassandra"),
                0.0,
                0.6,
            ),
            ratio_check(
                "§7 (Jeong): MongoDB reads beat HBase's HDFS indirection",
                cell(t, "R", "mongodb"),
                cell(t, "R", "hbase"),
                1.0,
                f64::INFINITY,
            ),
        ],
        "ext-elasticity" => {
            // Rows are per-second timeline indices; the bootstrap lands at
            // the midpoint. Compare the post-bootstrap mean against the
            // steady pre-bootstrap mean (skipping the warmup second and
            // the bootstrap second itself).
            let timeline: Vec<f64> = t
                .rows
                .iter()
                .filter_map(|r| t.get(r, "ops_per_sec"))
                .collect();
            let half = timeline.len() / 2;
            if timeline.len() < 6 || half < 2 {
                vec![ShapeResult::of(
                    "ext: elasticity timeline long enough to judge the bootstrap",
                    false,
                    format!("only {} samples", timeline.len()),
                )]
            } else {
                let pre = timeline[1..half - 1].iter().sum::<f64>() / (half - 2) as f64;
                let post = timeline[half + 1..].iter().sum::<f64>()
                    / (timeline.len() - half - 1) as f64;
                vec![ShapeResult::of(
                    "§6 (elastic speedup): throughput survives a live node bootstrap (post ≥ 75% of pre)",
                    post > pre * 0.75,
                    format!("pre {pre:.0} ops/s, post {post:.0} ops/s"),
                )]
            }
        }
        "ext-res-retry" => vec![
            ratio_check(
                "resilience: the retry ladder outlasts the rf=1 outage — availability strictly above the unprotected run",
                cell(t, "retry-on", "availability"),
                cell(t, "retry-off", "availability"),
                1.000001,
                f64::INFINITY,
            ),
            ratio_check(
                "resilience: retries absorb the crash window's errors",
                cell(t, "retry-on", "errors"),
                cell(t, "retry-off", "errors"),
                0.0,
                0.5,
            ),
            ratio_check(
                "resilience: the retry path actually fires during the outage",
                cell(t, "retry-on", "retries"),
                Some(1.0),
                1.0,
                f64::INFINITY,
            ),
        ],
        "ext-res-hedge" => vec![
            ratio_check(
                "resilience: hedged reads cut the fail-slow read p99 strictly below the unhedged run",
                cell(t, "hedge-on", "p99_read_ms"),
                cell(t, "hedge-off", "p99_read_ms"),
                0.0,
                0.999999,
            ),
            ratio_check(
                "resilience: hedges fire once the tracker sees the slow tail",
                cell(t, "hedge-on", "hedges"),
                Some(1.0),
                1.0,
                f64::INFINITY,
            ),
            ratio_check(
                "resilience: some hedges beat the slow primary, none double-count",
                cell(t, "hedge-on", "hedge_wins"),
                cell(t, "hedge-on", "hedges"),
                1e-9,
                1.0,
            ),
        ],
        "ext-res-breaker" => vec![
            ratio_check(
                "resilience: an open breaker absorbs most of the partition's timeout errors",
                cell(t, "breaker-on", "errors"),
                cell(t, "breaker-off", "errors"),
                0.0,
                0.5,
            ),
            ratio_check(
                "resilience: shed fast-fails replace 10 ms timeouts while the shard is gone",
                cell(t, "breaker-on", "shed"),
                Some(1.0),
                1.0,
                f64::INFINITY,
            ),
            ratio_check(
                "resilience: the breaker both opens and recovers (≥ 2 legal transitions)",
                cell(t, "breaker-on", "breaker_transitions"),
                Some(1.0),
                2.0,
                f64::INFINITY,
            ),
        ],
        "ext-res-storm" => vec![
            ratio_check(
                "resilience: admission control caps the retry storm well below the unbounded run",
                cell(t, "budgeted", "retries"),
                cell(t, "unbounded", "retries"),
                0.0,
                0.9,
            ),
            ratio_check(
                "resilience: the drained token bucket sheds the excess attempts",
                cell(t, "budgeted", "shed"),
                Some(1.0),
                1.0,
                f64::INFINITY,
            ),
            ratio_check(
                "resilience: without a budget nothing is shed (the storm runs free)",
                cell(t, "unbounded", "shed"),
                Some(1.0),
                0.0,
                0.0,
            ),
        ],
        "ext-obs-profile" => vec![
            ratio_check(
                "obs: reads consume real server CPU service time",
                cell(t, "cassandra", "cpu_service_ms"),
                Some(1.0),
                1e-6,
                f64::INFINITY,
            ),
            order_check(
                "obs (§5.6): the saturated loop is processing-bound — CPU queue-wait exceeds CPU service",
                t,
                "cassandra",
                "cpu_service_ms",
                "cpu_queue_ms",
            ),
            ratio_check(
                "obs: the in-memory Redis attributes exactly zero time to server disks",
                cell(t, "redis", "disk_service_ms"),
                Some(1.0),
                0.0,
                0.0,
            ),
            ratio_check(
                "obs: Redis's single-threaded event loop shows up as server compute",
                cell(t, "redis", "cpu_service_ms"),
                Some(1.0),
                1e-6,
                f64::INFINITY,
            ),
        ],
        "ext-obs-telemetry" => {
            // Rows are one-second window indices of a run bounded to 70 %
            // of maximum throughput; judge the whole timeline.
            let windows: Vec<(f64, f64, f64, f64, f64)> = t
                .rows
                .iter()
                .filter_map(|r| {
                    Some((
                        t.get(r, "ops_per_sec")?,
                        t.get(r, "error_rate")?,
                        t.get(r, "p50_ms")?,
                        t.get(r, "p99_ms")?,
                        t.get(r, "cpu_util")?,
                    ))
                })
                .collect();
            if windows.len() < 2 {
                return vec![ShapeResult::of(
                    "obs: telemetry timeline has at least two windows",
                    false,
                    format!("only {} windows", windows.len()),
                )];
            }
            let max_ops = windows.iter().map(|w| w.0).fold(f64::MIN, f64::max);
            let min_ops = windows.iter().map(|w| w.0).fold(f64::MAX, f64::min);
            vec![
                ShapeResult::of(
                    "obs: the throttled timeline is steady — every window within 2× of the busiest",
                    min_ops > 0.0 && max_ops / min_ops < 2.0,
                    format!("ops/s range {min_ops:.0}..{max_ops:.0}"),
                ),
                ShapeResult::of(
                    "obs: quantiles are ordered (p99 ≥ p50) in every window",
                    windows.iter().all(|w| w.3 >= w.2),
                    format!("{} windows checked", windows.len()),
                ),
                ShapeResult::of(
                    "obs (§5.6): at 70% load the run is error-free",
                    windows.iter().all(|w| w.1 == 0.0),
                    "error_rate == 0 in every window".into(),
                ),
                ShapeResult::of(
                    "obs: bounded load keeps CPU utilisation positive but unsaturated",
                    windows.iter().all(|w| w.4 > 0.0 && w.4 < 1.0),
                    format!(
                        "cpu_util range {:.2}..{:.2}",
                        windows.iter().map(|w| w.4).fold(f64::MAX, f64::min),
                        windows.iter().map(|w| w.4).fold(f64::MIN, f64::max)
                    ),
                ),
            ]
        }
        "ext-snap-resume" => {
            let stores: Vec<(String, f64, f64, Option<f64>)> = t
                .rows
                .iter()
                .filter_map(|r| {
                    Some((
                        r.clone(),
                        t.get(r, "checkpoints")?,
                        t.get(r, "resume_match")?,
                        t.get(r, "divergent_at"),
                    ))
                })
                .collect();
            if stores.is_empty() {
                return vec![ShapeResult::of(
                    "snap: at least one store row",
                    false,
                    "no rows".into(),
                )];
            }
            vec![
                ShapeResult::of(
                    "snap: every store captures at least three checkpoints",
                    stores.iter().all(|s| s.1 >= 3.0),
                    format!(
                        "checkpoint counts {:?}",
                        stores.iter().map(|s| s.1).collect::<Vec<_>>()
                    ),
                ),
                ShapeResult::of(
                    "snap: resuming from a mid-run checkpoint is byte-identical for every store",
                    stores.iter().all(|s| s.2 == 1.0),
                    format!(
                        "mismatches: {:?}",
                        stores
                            .iter()
                            .filter(|s| s.2 != 1.0)
                            .map(|s| s.0.as_str())
                            .collect::<Vec<_>>()
                    ),
                ),
                ShapeResult::of(
                    "snap: bisection localizes the injected divergence to window 2 for every store",
                    stores.iter().all(|s| s.3 == Some(2.0)),
                    format!(
                        "divergent_at {:?}",
                        stores.iter().map(|s| s.3).collect::<Vec<_>>()
                    ),
                ),
            ]
        }
        "ext-chaos-campaign" => {
            let stores: Vec<(String, f64, f64, f64)> = t
                .rows
                .iter()
                .filter_map(|r| {
                    Some((
                        r.clone(),
                        t.get(r, "schedules")?,
                        t.get(r, "violations")?,
                        t.get(r, "deterministic")?,
                    ))
                })
                .collect();
            if stores.is_empty() {
                return vec![ShapeResult::of(
                    "chaos: at least one store row",
                    false,
                    "no rows".into(),
                )];
            }
            vec![
                ShapeResult::of(
                    "chaos: every store's campaign completes its full schedule budget",
                    stores.iter().all(|s| s.1 >= 3.0),
                    format!(
                        "schedule counts {:?}",
                        stores.iter().map(|s| s.1).collect::<Vec<_>>()
                    ),
                ),
                ShapeResult::of(
                    "chaos: no healthy store violates any correctness oracle",
                    stores.iter().all(|s| s.2 == 0.0),
                    format!(
                        "violators: {:?}",
                        stores
                            .iter()
                            .filter(|s| s.2 != 0.0)
                            .map(|s| s.0.as_str())
                            .collect::<Vec<_>>()
                    ),
                ),
                ShapeResult::of(
                    "chaos: every schedule replays deterministically for every store",
                    stores.iter().all(|s| s.3 == 1.0),
                    format!(
                        "deterministic flags {:?}",
                        stores.iter().map(|s| s.3).collect::<Vec<_>>()
                    ),
                ),
            ]
        }
        "ext-chaos-shrink" => vec![
            ratio_check(
                "chaos: the campaign finds the seeded skip-hint-replay durability bug",
                cell(t, "skip-hint-replay", "violations"),
                Some(1.0),
                1.0,
                f64::INFINITY,
            ),
            ratio_check(
                "chaos: the shrinker reduces the failing schedule to one crash window (2 events)",
                cell(t, "skip-hint-replay", "min_events"),
                Some(1.0),
                1.0,
                2.0,
            ),
            ratio_check(
                "chaos: shrinking does real search work (at least one probe run)",
                cell(t, "skip-hint-replay", "probes"),
                Some(1.0),
                1.0,
                f64::INFINITY,
            ),
            ratio_check(
                "chaos: at least one probe resumes from a pre-divergence checkpoint",
                cell(t, "skip-hint-replay", "resumed_probes"),
                Some(1.0),
                1.0,
                f64::INFINITY,
            ),
            ratio_check(
                "chaos: the minimized schedule still fails when re-executed from scratch",
                cell(t, "skip-hint-replay", "still_fails"),
                Some(1.0),
                1.0,
                1.0,
            ),
        ],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: &[(&str, &[(&str, f64)])]) -> Table {
        let mut t = Table::new("t", "nodes", "x");
        t.columns = rows[0].1.iter().map(|(c, _)| c.to_string()).collect();
        for (row, cells) in rows {
            t.push_row(row, cells.iter().map(|(_, v)| Some(*v)).collect());
        }
        t
    }

    #[test]
    fn order_check_passes_and_fails_correctly() {
        let t = table(&[("1", &[("a", 1.0), ("b", 2.0)])]);
        assert!(order_check("a<b", &t, "1", "a", "b").pass);
        assert!(!order_check("b<a", &t, "1", "b", "a").pass);
        assert!(!order_check("missing", &t, "2", "a", "b").pass);
    }

    #[test]
    fn ratio_check_respects_bounds() {
        assert!(ratio_check("x", Some(10.0), Some(1.0), 8.0, 14.0).pass);
        assert!(!ratio_check("x", Some(20.0), Some(1.0), 8.0, 14.0).pass);
        assert!(!ratio_check("x", None, Some(1.0), 8.0, 14.0).pass);
        assert!(!ratio_check("x", Some(1.0), Some(0.0), 0.0, 1.0).pass);
    }

    #[test]
    fn every_experiment_figure_has_checks_or_is_exempt() {
        // Latency-only figures 7/8 and the bounded-write fig16 share
        // their siblings' dynamics; everything else must have checks.
        let exempt = ["table1", "fig7", "fig8"];
        for spec in crate::figures::all_figures() {
            if exempt.contains(&spec.id) {
                continue;
            }
            let dummy = table(&[("1", &[("a", 1.0)])]);
            assert!(
                !checks_for(spec.id, &dummy).is_empty(),
                "{} has no shape checks",
                spec.id
            );
        }
    }

    #[test]
    fn every_extension_has_checks() {
        // The apm-audit `shape-coverage` rule enforces the same at the
        // token level; this is the runtime twin.
        let dummy = table(&[("1", &[("a", 1.0)])]);
        for (id, _) in crate::extensions::all_extensions() {
            assert!(
                !checks_for(id, &dummy).is_empty(),
                "{id} has no shape checks"
            );
        }
    }
}
