//! Failure-injection experiments (`ext-faults-*`).
//!
//! The paper benchmarks the six stores in steady state; an APM
//! installation additionally cares what the metric firehose does when
//! hardware misbehaves (§2: the monitoring system itself must stay up
//! 24/7). These experiments drive the calibrated stores through seeded
//! [`FaultSchedule`]s — node crashes, a fail-slow disk, a network
//! partition — and read availability, error counts, and post-fault
//! recovery off the run's one-second [`Telemetry`] windows (phase means)
//! and the error timeline (recovery detection).
//!
//! Every run is fully deterministic: the same seed plus the same fault
//! schedule reproduces byte-identical tables (run `repro --out` twice
//! and diff).

use crate::experiment::ExperimentProfile;
use apm_core::driver::ClientConfig;
use apm_core::report::Table;
use apm_core::stats::{BenchStats, Telemetry};
use apm_core::workload::Workload;
use apm_sim::{ClusterSpec, Engine, FaultSchedule, SimDuration, SimTime};
use apm_stores::api::StoreCtx;
use apm_stores::cassandra::{CassandraConfig, CassandraStore};
use apm_stores::hbase::HbaseStore;
use apm_stores::redis::RedisStore;
use apm_stores::routing::JedisHash;
use apm_stores::runner::{run_benchmark, RunConfig, RunResult};
use apm_stores::ResiliencePolicy;

/// Which node the schedules target. Node 1 rather than node 0 so that
/// ring/routing bookkeeping is exercised on a non-trivial index.
pub(crate) const VICTIM: usize = 1;

/// A post-restart second counts as "recovered" once it reaches this
/// fraction of the pre-fault mean (the within-10% acceptance bar).
const RECOVERY_THRESHOLD: f64 = 0.9;

pub(crate) fn secs(s: f64) -> SimTime {
    SimTime((s * 1e9) as u64)
}

/// Common fault timing: the measurement window split in thirds —
/// healthy, faulted, recovered. Times are offsets from warmup end,
/// matching [`FaultSchedule`] semantics.
pub(crate) struct FaultWindow {
    pub(crate) window: f64,
    pub(crate) fault: f64,
    pub(crate) restore: f64,
}

impl FaultWindow {
    pub(crate) fn for_profile(profile: &ExperimentProfile) -> FaultWindow {
        // At least 9 s so each third spans several telemetry windows.
        let window = profile.measure_secs.max(9.0);
        FaultWindow {
            window,
            fault: window / 3.0,
            restore: window * 2.0 / 3.0,
        }
    }

    pub(crate) fn crash(&self) -> FaultSchedule {
        FaultSchedule::none().crash(VICTIM, secs(self.fault), secs(self.restore))
    }

    /// Per-second throughput means of the three phases, read off the
    /// run's one-second [`Telemetry`] windows (`responded` = completed +
    /// rejected, the same semantics the old `BenchStats` timeline had).
    /// The transition windows (the fault second and the restore second)
    /// are excluded — they mix regimes.
    pub(crate) fn phase_means(&self, telemetry: &Telemetry) -> (f64, f64, f64) {
        let mut timeline: Vec<u64> = telemetry.windows().iter().map(|w| w.responded()).collect();
        // The sampler materialises every window up to the measurement
        // end; the throughput timeline only ever extended to the last
        // second that saw a response.
        while timeline.last() == Some(&0) {
            timeline.pop();
        }
        let mean = |lo: usize, hi: usize| -> f64 {
            let lo = lo.min(timeline.len());
            let hi = hi.min(timeline.len());
            if hi <= lo {
                return 0.0;
            }
            timeline[lo..hi].iter().sum::<u64>() as f64 / (hi - lo) as f64
        };
        let fault = self.fault as usize;
        let restore = self.restore as usize;
        (
            mean(0, fault),
            mean(fault + 1, restore),
            mean(restore + 1, self.window as usize),
        )
    }

    pub(crate) fn recovery_secs(&self, stats: &BenchStats) -> Option<u64> {
        stats.recovery_secs(
            self.fault as usize,
            self.restore as usize,
            RECOVERY_THRESHOLD,
        )
    }
}

pub(crate) fn run_cassandra(
    config: CassandraConfig,
    nodes: u32,
    profile: &ExperimentProfile,
    window: &FaultWindow,
    faults: FaultSchedule,
    op_deadline: Option<SimDuration>,
    resilience: Option<ResiliencePolicy>,
) -> RunResult {
    let mut engine = Engine::new();
    let ctx = StoreCtx::new(
        &mut engine,
        ClusterSpec::cluster_m(),
        nodes,
        StoreCtx::standard_client_machines(nodes),
        profile.scale,
        profile.seed,
    );
    let mut store = CassandraStore::new(ctx, config);
    let run = RunConfig {
        workload: Workload::r(),
        client: ClientConfig::cluster_m(nodes).with_window(profile.warmup_secs, window.window),
        records_per_node: profile.records_per_node(),
        nodes,
        seed: profile.seed,
        event_at_secs: None,
        faults,
        op_deadline,
        telemetry_window_secs: Some(1.0),
        resilience,
        checkpoints: None,
    };
    run_benchmark(&mut engine, &mut store, &run)
}

pub(crate) fn run_hbase(
    cluster: ClusterSpec,
    nodes: u32,
    profile: &ExperimentProfile,
    window: &FaultWindow,
    faults: FaultSchedule,
) -> RunResult {
    let mut engine = Engine::new();
    let ctx = StoreCtx::new(
        &mut engine,
        cluster,
        nodes,
        StoreCtx::standard_client_machines(nodes),
        profile.scale,
        profile.seed,
    );
    let mut store = HbaseStore::new(ctx, &mut engine);
    let client = if cluster.name == "D" {
        ClientConfig::cluster_d(nodes)
    } else {
        ClientConfig::cluster_m(nodes)
    };
    let run = RunConfig {
        workload: Workload::r(),
        client: client.with_window(profile.warmup_secs, window.window),
        records_per_node: profile.records_per_node(),
        nodes,
        seed: profile.seed,
        event_at_secs: None,
        faults,
        op_deadline: None,
        telemetry_window_secs: Some(1.0),
        resilience: None,
        checkpoints: None,
    };
    run_benchmark(&mut engine, &mut store, &run)
}

pub(crate) fn run_redis(
    workload: Workload,
    nodes: u32,
    profile: &ExperimentProfile,
    window: &FaultWindow,
    faults: FaultSchedule,
    op_deadline: Option<SimDuration>,
    resilience: Option<ResiliencePolicy>,
) -> RunResult {
    let mut engine = Engine::new();
    let ctx = StoreCtx::new(
        &mut engine,
        ClusterSpec::cluster_m(),
        nodes,
        RedisStore::client_machines(nodes),
        profile.scale,
        profile.seed,
    );
    let mut store = RedisStore::new(ctx, &mut engine, JedisHash::Murmur);
    let run = RunConfig {
        workload,
        client: ClientConfig::cluster_m(nodes).with_window(profile.warmup_secs, window.window),
        records_per_node: profile.records_per_node(),
        nodes,
        seed: profile.seed,
        event_at_secs: None,
        faults,
        op_deadline,
        telemetry_window_secs: Some(1.0),
        resilience,
        checkpoints: None,
    };
    run_benchmark(&mut engine, &mut store, &run)
}

fn summary_columns(table: &mut Table) {
    table.columns = vec![
        "availability".into(),
        "errors".into(),
        "throughput".into(),
        "pre_ops_per_sec".into(),
        "mid_ops_per_sec".into(),
        "post_ops_per_sec".into(),
        "recovery_ratio".into(),
        "recovery_secs".into(),
    ];
}

fn summary_row(result: &RunResult, window: &FaultWindow) -> Vec<Option<f64>> {
    let telemetry = result
        .telemetry
        .as_ref()
        .expect("fault runs sample one-second telemetry windows");
    let (pre, mid, post) = window.phase_means(telemetry);
    vec![
        Some(result.stats.availability()),
        Some(result.stats.total_errors() as f64),
        Some(result.throughput()),
        Some(pre),
        Some(mid),
        Some(post),
        if pre > 0.0 { Some(post / pre) } else { None },
        window.recovery_secs(&result.stats).map(|s| s as f64),
    ]
}

/// `ext-faults-crash`: one Cassandra node crashes mid-run and restarts.
/// At rf=1 its key range is simply gone — a third of the run errors. At
/// rf=2 the coordinator fails reads over to the surviving replica and
/// hints the missed writes, so availability rides through the crash and
/// the restart only costs the hint-replay stream.
pub fn crash_failover(profile: &ExperimentProfile) -> Table {
    let nodes = 4;
    let w = FaultWindow::for_profile(profile);
    let mut table = Table::new(
        &format!(
            "Extension: single-node crash at t={:.0}s, restart at t={:.0}s (Cassandra, workload R, 4 nodes)",
            w.fault, w.restore
        ),
        "rf",
        "ratio | count | ops/sec | s",
    );
    summary_columns(&mut table);
    for rf in [1usize, 2] {
        let result = run_cassandra(
            CassandraConfig {
                replication: rf,
                ..CassandraConfig::default()
            },
            nodes,
            profile,
            &w,
            w.crash(),
            None,
            None,
        );
        table.push_row(&format!("rf{rf}"), summary_row(&result, &w));
    }
    table
}

/// `ext-faults-slowdisk`: a fail-slow drive (`factor`× service time) on
/// one HBase region server, run on Cluster D — the paper's disk-bound
/// regime (§5.8), where the per-node data exceeds the page cache and
/// most reads miss to disk. (On Cluster M the data fits in RAM, §3, and
/// a slow disk is invisible to reads.) Cache misses on the victim's
/// regions queue behind the slow DataNode disk, so the node gates its
/// share of the closed loop — throughput dips without a single error:
/// degraded is not down.
pub fn slow_disk(profile: &ExperimentProfile) -> Table {
    let nodes = 4;
    // Cluster D density: 18.75 M records per node at full scale, same as
    // the fig18–20 runs — this is what pushes reads past the page cache.
    let d_profile = ExperimentProfile {
        data_factor: 1.875,
        ..*profile
    };
    let w = FaultWindow::for_profile(&d_profile);
    let mut table = Table::new(
        &format!(
            "Extension: one fail-slow disk from t={:.0}s to t={:.0}s (HBase, workload R, 4 nodes, Cluster D)",
            w.fault, w.restore
        ),
        "slowdown",
        "ratio | count | ops/sec | s",
    );
    summary_columns(&mut table);
    for factor in [1u32, 4, 16] {
        let faults = if factor > 1 {
            FaultSchedule::none().slow_disk(VICTIM, secs(w.fault), secs(w.restore), factor)
        } else {
            FaultSchedule::none()
        };
        let result = run_hbase(ClusterSpec::cluster_d(), nodes, &d_profile, &w, faults);
        table.push_row(&format!("x{factor}"), summary_row(&result, &w));
    }
    table
}

/// A pure-read mix: partition effects isolated from the insert-driven
/// maxmemory dynamics a long Redis run otherwise adds on top.
pub(crate) fn read_only() -> Workload {
    let base = Workload::r();
    Workload {
        name: "read-only",
        mix: apm_core::workload::OpMix::new(100, 0, 0, 0).expect("valid mix"),
        distribution: base.distribution,
        scan_length: base.scan_length,
    }
}

/// `ext-faults-partition`: a Redis shard is network-partitioned. Without
/// a client deadline every connection eventually blocks on the black
/// hole — throughput collapses to zero with *zero* errors
/// (unavailability without failures). A 10 ms operation deadline turns
/// the stalls into timeout errors and keeps the surviving shards
/// serving their share.
pub fn partition(profile: &ExperimentProfile) -> Table {
    let nodes = 4;
    let w = FaultWindow::for_profile(profile);
    let faults = FaultSchedule::none().partition(VICTIM, secs(w.fault), secs(w.restore));
    let mut table = Table::new(
        &format!(
            "Extension: one shard partitioned from t={:.0}s to t={:.0}s (Redis, read-only, 4 nodes)",
            w.fault, w.restore
        ),
        "client",
        "ratio | count | ops/sec | s",
    );
    summary_columns(&mut table);
    for (label, deadline) in [
        ("stall", None),
        ("timeout-10ms", Some(SimDuration::from_millis(10))),
    ] {
        let result = run_redis(
            read_only(),
            nodes,
            profile,
            &w,
            faults.clone(),
            deadline,
            None,
        );
        table.push_row(label, summary_row(&result, &w));
    }
    table
}

/// `ext-faults-failover`: the same crash/restart window across three
/// recovery designs — Cassandra rf=2 (instant coordinator failover plus
/// hinted handoff), HBase (master detection delay, WAL replay on a
/// substitute server, region reassignment), and Redis (no replication,
/// no persistence: the shard's data is gone and reads keep missing even
/// after the process returns).
pub fn failover_comparison(profile: &ExperimentProfile) -> Table {
    let nodes = 4;
    let w = FaultWindow::for_profile(profile);
    let mut table = Table::new(
        &format!(
            "Extension: crash recovery compared, crash t={:.0}s restart t={:.0}s (workload R, 4 nodes)",
            w.fault, w.restore
        ),
        "store",
        "ratio | count | ops/sec | s",
    );
    summary_columns(&mut table);
    let cassandra = run_cassandra(
        CassandraConfig {
            replication: 2,
            ..CassandraConfig::default()
        },
        nodes,
        profile,
        &w,
        w.crash(),
        None,
        None,
    );
    table.push_row("cassandra-rf2", summary_row(&cassandra, &w));
    let hbase = run_hbase(ClusterSpec::cluster_m(), nodes, profile, &w, w.crash());
    table.push_row("hbase", summary_row(&hbase, &w));
    let redis = run_redis(Workload::r(), nodes, profile, &w, w.crash(), None, None);
    table.push_row("redis", summary_row(&redis, &w));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ExperimentProfile {
        ExperimentProfile::test()
    }

    #[test]
    fn replication_preserves_availability_through_a_crash() {
        let t = crash_failover(&profile());
        let rf1 = t.get("rf1", "availability").expect("rf1/availability cell");
        let rf2 = t.get("rf2", "availability").expect("rf2/availability cell");
        assert!(rf2 >= 0.99, "rf=2 must ride through the crash: {rf2}");
        assert!(rf1 < 0.95, "rf=1 must lose its key range: {rf1}");
        assert!(
            t.get("rf1", "errors").expect("rf1/errors cell")
                > t.get("rf2", "errors").expect("rf2/errors cell")
        );
        for row in ["rf1", "rf2"] {
            let ratio = t.get(row, "recovery_ratio").expect("recovery_ratio cell");
            assert!(
                ratio >= 0.85,
                "{row} must recover after restart: post/pre {ratio}"
            );
        }
    }

    #[test]
    fn slow_disk_degrades_without_errors() {
        let t = slow_disk(&profile());
        for row in ["x1", "x4", "x16"] {
            assert_eq!(
                t.get(row, "errors").expect("errors cell"),
                0.0,
                "{row} errored"
            );
            assert_eq!(
                t.get(row, "availability").expect("availability cell"),
                1.0,
                "{row} availability"
            );
        }
        let base = t
            .get("x1", "mid_ops_per_sec")
            .expect("x1/mid_ops_per_sec cell");
        let worst = t
            .get("x16", "mid_ops_per_sec")
            .expect("x16/mid_ops_per_sec cell");
        assert!(
            worst < 0.9 * base,
            "x16 disk must dent throughput: {base} → {worst}"
        );
        let ratio = t
            .get("x16", "recovery_ratio")
            .expect("x16/recovery_ratio cell");
        assert!(ratio >= 0.85, "slow disk must fully recover: {ratio}");
    }

    #[test]
    fn partition_stalls_but_timeouts_keep_the_rest_serving() {
        let t = partition(&profile());
        let pre = t
            .get("stall", "pre_ops_per_sec")
            .expect("stall/pre_ops_per_sec cell");
        let stall_mid = t
            .get("stall", "mid_ops_per_sec")
            .expect("stall/mid_ops_per_sec cell");
        let timeout_mid = t
            .get("timeout-10ms", "mid_ops_per_sec")
            .expect("timeout-10ms/mid_ops_per_sec cell");
        assert!(
            stall_mid < 0.1 * pre,
            "stall must choke the loop: {pre} → {stall_mid}"
        );
        assert!(
            timeout_mid > stall_mid,
            "deadlines must help: {stall_mid} vs {timeout_mid}"
        );
        assert_eq!(
            t.get("stall", "errors").expect("stall/errors cell"),
            0.0,
            "stalls are not errors"
        );
        assert!(
            t.get("timeout-10ms", "errors")
                .expect("timeout-10ms/errors cell")
                > 0.0,
            "timeouts are errors"
        );
    }

    #[test]
    fn failover_ranks_the_recovery_designs() {
        let t = failover_comparison(&profile());
        let cassandra = t
            .get("cassandra-rf2", "availability")
            .expect("cassandra-rf2/availability cell");
        let hbase = t
            .get("hbase", "availability")
            .expect("hbase/availability cell");
        let redis = t
            .get("redis", "availability")
            .expect("redis/availability cell");
        assert!(
            cassandra >= 0.99,
            "rf2 failover is near-instant: {cassandra}"
        );
        assert!(
            hbase < cassandra,
            "hbase pays detection + WAL replay: {hbase}"
        );
        assert!(
            redis < hbase,
            "redis loses the shard's data outright: {redis}"
        );
    }
}
