//! The paper's reported numbers, for paper-vs-measured tables.
//!
//! Values quoted in the text (§5) are exact as printed; values read off
//! the figures are approximate (log-scale plots) and marked as such.
//! EXPERIMENTS.md is generated from these plus the measured tables.

/// How a reference value was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Stated numerically in the paper's text.
    Text,
    /// Read off a (log-scale) figure: ±50 % is a faithful read.
    Figure,
}

/// One reference value: figure id, column (store), row (nodes/workload/
/// load %), the paper's value, and where it came from.
#[derive(Clone, Copy, Debug)]
pub struct RefPoint {
    pub figure: &'static str,
    pub store: &'static str,
    pub row: &'static str,
    pub value: f64,
    pub provenance: Provenance,
    /// The sentence or figure the value comes from.
    pub source: &'static str,
}

/// All digitized reference points.
pub fn reference_points() -> Vec<RefPoint> {
    use Provenance::{Figure, Text};
    let p = |figure, store, row, value, provenance, source| RefPoint {
        figure,
        store,
        row,
        value,
        provenance,
        source,
    };
    vec![
        // ---- Figure 3: throughput, Workload R (ops/s).
        p(
            "fig3",
            "redis",
            "1",
            52_000.0,
            Text,
            "§5.1: Redis has the highest throughput (more than 50K ops/sec)",
        ),
        p(
            "fig3",
            "voltdb",
            "1",
            45_000.0,
            Figure,
            "§5.1: followed by VoltDB",
        ),
        p(
            "fig3",
            "cassandra",
            "1",
            25_000.0,
            Text,
            "§5.1: about half that of Redis (25K ops/sec)",
        ),
        p(
            "fig3",
            "mysql",
            "1",
            25_000.0,
            Text,
            "§5.1: no significant differences between Cassandra and MySQL",
        ),
        p(
            "fig3",
            "voldemort",
            "1",
            12_000.0,
            Text,
            "§5.1: Voldemort is 2 times slower than Cassandra (with 12K ops/sec)",
        ),
        p(
            "fig3",
            "hbase",
            "1",
            2_500.0,
            Text,
            "§5.1: the slowest system ... is HBase with 2.5K operations per second",
        ),
        p(
            "fig3",
            "cassandra",
            "12",
            180_000.0,
            Figure,
            "Fig 3 top-right point",
        ),
        p(
            "fig3",
            "hbase",
            "12",
            30_000.0,
            Figure,
            "Fig 3: HBase linear from 2.5K",
        ),
        p(
            "fig3",
            "voldemort",
            "12",
            140_000.0,
            Figure,
            "Fig 3: linear from 12K",
        ),
        // ---- Figure 4: read latency, Workload R (ms).
        p(
            "fig4",
            "voldemort",
            "1",
            0.23,
            Text,
            "§5.1: lowest latency of 230 µs for one node",
        ),
        p(
            "fig4",
            "voldemort",
            "12",
            0.26,
            Text,
            "§5.1: 260 µs for 12 nodes",
        ),
        p(
            "fig4",
            "cassandra",
            "4",
            6.5,
            Text,
            "§5.1: Cassandra has a higher average latency of 5 - 8 ms",
        ),
        p(
            "fig4",
            "hbase",
            "4",
            70.0,
            Text,
            "§5.1: HBase has a much higher latency of 50 - 90 ms",
        ),
        p(
            "fig4",
            "redis",
            "1",
            1.0,
            Figure,
            "Fig 4: Redis best latency among all systems",
        ),
        // ---- Figure 5: write latency, Workload R (ms).
        p(
            "fig5",
            "hbase",
            "4",
            0.15,
            Figure,
            "Fig 5: HBase lowest write latency, unstable",
        ),
        p(
            "fig5",
            "cassandra",
            "4",
            12.0,
            Figure,
            "Fig 5: Cassandra highest stable write latency",
        ),
        p(
            "fig5",
            "voldemort",
            "1",
            0.25,
            Text,
            "§5.1: roughly the same write as read latency",
        ),
        // ---- Figure 6: throughput RW.
        p(
            "fig6",
            "voltdb",
            "1",
            50_000.0,
            Text,
            "§5.2: VoltDB achieves the highest throughput [for one node]",
        ),
        p(
            "fig6",
            "cassandra",
            "12",
            200_000.0,
            Figure,
            "Fig 6 top-right",
        ),
        // ---- Figure 9: throughput W.
        p(
            "fig9",
            "cassandra",
            "12",
            190_000.0,
            Figure,
            "Fig 9 top-right; §5.3: +2% vs RW at 12 nodes",
        ),
        p(
            "fig9",
            "hbase",
            "12",
            60_000.0,
            Figure,
            "§5.3: HBase's throughput increases almost by a factor of 2",
        ),
        // ---- Figure 10: read latency W.
        p(
            "fig10",
            "hbase",
            "12",
            1_000.0,
            Text,
            "§5.3: for 12 nodes, it goes up to 1 second on average",
        ),
        // ---- Figure 12/13: RS.
        p(
            "fig12",
            "mysql",
            "1",
            30_000.0,
            Figure,
            "§5.4: MySQL has the best throughput for a single node",
        ),
        p(
            "fig13",
            "cassandra",
            "4",
            22.0,
            Text,
            "§5.4: Cassandra's scans ... in the range of 20-25 milliseconds",
        ),
        p(
            "fig13",
            "redis",
            "4",
            6.0,
            Text,
            "§5.4: Redis ... latency in the range of 4-8 milliseconds",
        ),
        p(
            "fig13",
            "hbase",
            "4",
            900.0,
            Text,
            "§5.4: HBase's latency is almost in the second range",
        ),
        // ---- Figure 14: RSW.
        p(
            "fig14",
            "mysql",
            "1",
            20.0,
            Text,
            "§5.5: MySQL's throughput is as low as 20 operations per second for one node",
        ),
        p(
            "fig14",
            "mysql",
            "4",
            1.0,
            Text,
            "§5.5: below one operation per second for four and more nodes",
        ),
        // ---- Figure 17: disk usage per node for 10M records (GB),
        // reported as totals at 12 nodes in our table.
        p(
            "fig17",
            "cassandra",
            "12",
            30.0,
            Text,
            "§5.7: 2.5 GB/node × 12",
        ),
        p("fig17", "mysql", "12", 60.0, Text, "§5.7: 5 GB/node × 12"),
        p(
            "fig17",
            "voldemort",
            "12",
            66.0,
            Text,
            "§5.7: 5.5 GB/node × 12",
        ),
        p("fig17", "hbase", "12", 90.0, Text, "§5.7: 7.5 GB/node × 12"),
        p(
            "fig17",
            "raw",
            "12",
            8.4,
            Text,
            "§5.7: 8.4 GB raw for 12 nodes",
        ),
        // ---- Figures 18–20: Cluster D (8 nodes).
        p(
            "fig18",
            "cassandra",
            "R",
            1_500.0,
            Figure,
            "Fig 18: R is 26× below W (§5.8)",
        ),
        p(
            "fig18",
            "cassandra",
            "W",
            40_000.0,
            Figure,
            "§5.8: increases by a factor of 26 from R to W",
        ),
        p(
            "fig18",
            "hbase",
            "W",
            8_000.0,
            Figure,
            "§5.8: benefits by factor of 15",
        ),
        p(
            "fig18",
            "voldemort",
            "W",
            3_000.0,
            Figure,
            "§5.8: increases only by a factor of 3",
        ),
        p(
            "fig19",
            "cassandra",
            "R",
            40.0,
            Text,
            "§5.8: Cassandra has a read latency of 40 ms for R and RW",
        ),
        p(
            "fig19",
            "cassandra",
            "W",
            25.0,
            Text,
            "§5.8: for workload W the latency is 25 ms",
        ),
        p(
            "fig19",
            "voldemort",
            "R",
            5.0,
            Text,
            "§5.8: Voldemort has by far the best latency ... 5 and 6 ms",
        ),
        p(
            "fig19",
            "hbase",
            "W",
            200.0,
            Text,
            "§5.8: for Workload W it is worst with over 200 ms",
        ),
        p(
            "fig20",
            "hbase",
            "R",
            0.5,
            Text,
            "§5.8: HBase has a very low latency, well below 1 ms",
        ),
    ]
}

/// Reference points for one figure.
pub fn for_figure(figure: &str) -> Vec<RefPoint> {
    reference_points()
        .into_iter()
        .filter(|r| r.figure == figure)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reference_point_names_a_known_figure() {
        let known: Vec<&str> = crate::figures::all_figures().iter().map(|f| f.id).collect();
        for point in reference_points() {
            assert!(
                known.contains(&point.figure),
                "unknown figure {}",
                point.figure
            );
        }
    }

    #[test]
    fn headline_numbers_are_present() {
        let fig3 = for_figure("fig3");
        assert!(fig3
            .iter()
            .any(|p| p.store == "redis" && p.value > 50_000.0));
        assert!(fig3
            .iter()
            .any(|p| p.store == "hbase" && p.value == 2_500.0));
        assert!(!for_figure("fig14").is_empty());
        assert!(for_figure("fig1").is_empty());
    }

    #[test]
    fn text_points_quote_the_paper() {
        for point in reference_points() {
            if point.provenance == Provenance::Text {
                assert!(
                    point.source.contains('§'),
                    "text point without citation: {point:?}"
                );
            }
        }
    }
}
