//! Extension experiments beyond the paper's evaluation.
//!
//! §8 closes with: *"In future work, we will determine the impact of
//! replication and compression on the throughput in our use case."* —
//! both are implemented here, together with two ablations the paper's
//! §6 experiences motivate (random vs. assigned Cassandra tokens; uniform
//! vs. skewed key popularity).

use crate::experiment::ExperimentProfile;
use apm_core::driver::ClientConfig;
use apm_core::keyspace::KeyDistribution;
use apm_core::ops::OpKind;
use apm_core::report::Table;
use apm_core::workload::Workload;
use apm_sim::{ClusterSpec, Engine, FaultSchedule};
use apm_storage::lsm::CompactionStrategy;
use apm_stores::api::StoreCtx;
use apm_stores::cassandra::{CassandraConfig, CassandraStore};
use apm_stores::routing::TokenAssignment;
use apm_stores::runner::{run_benchmark, RunConfig, RunResult};

/// Extension artifact descriptors.
pub fn all_extensions() -> Vec<(&'static str, &'static str)> {
    vec![
        ("ext-replication", "Extension: Cassandra replication factor sweep (workload W, 4 nodes)"),
        ("ext-compression", "Extension: SSTable compression on/off (workloads R and W, 4 nodes)"),
        ("ext-tokens", "Extension: random vs. assigned Cassandra tokens (workload R, 8 nodes)"),
        ("ext-skew", "Extension: uniform vs. zipfian key popularity (workload R, 8 nodes)"),
        ("ext-compaction", "Extension: size-tiered vs. leveled compaction (Cassandra, workloads R and W, 4 nodes)"),
        ("ext-mongodb", "Extension: the excluded document store (MongoDB-like) vs. Cassandra and HBase, 4 nodes"),
        ("ext-elasticity", "Extension: live node bootstrap (Cassandra, workload R, 4→5 nodes mid-run)"),
        ("ext-faults-crash", "Extension: single-node crash and restart, rf=1 vs rf=2 (Cassandra, workload R, 4 nodes)"),
        ("ext-faults-slowdisk", "Extension: one fail-slow disk, x1/x4/x16 (HBase, workload R, 4 nodes)"),
        ("ext-faults-partition", "Extension: one shard partitioned, stall vs client timeout (Redis, workload R, 4 nodes)"),
        ("ext-faults-failover", "Extension: crash recovery compared across Cassandra rf=2, HBase, Redis (workload R, 4 nodes)"),
        ("ext-obs-profile", "Extension: virtual-time attribution — queue-wait vs service per resource class (workload R, 4 nodes)"),
        ("ext-obs-telemetry", "Extension: windowed telemetry timeline at 70% load (Cassandra, workload R, 8 nodes)"),
        ("ext-res-retry", "Extension: retries with capped backoff vs a node crash, rf=1 (Cassandra, workload R, 4 nodes)"),
        ("ext-res-hedge", "Extension: hedged reads vs a fail-slow node, rf=2 (Cassandra, workload R, 4 nodes)"),
        ("ext-res-breaker", "Extension: circuit breaker vs a partitioned shard (Redis, read-only, 4 nodes)"),
        ("ext-res-storm", "Extension: admission control vs an unbounded retry storm (Cassandra rf=1, workload R, 4 nodes)"),
        ("ext-snap-resume", "Extension: snapshot/resume equivalence and divergence bisection (all stores, workload RW, 4 nodes)"),
        ("ext-chaos-campaign", "Extension: chaos search campaign, 3 seeded schedules per store (workload RW, 4 nodes)"),
        ("ext-chaos-shrink", "Extension: durability-bug shrink, Cassandra rf=2 with hint replay disabled (workload RW, 4 nodes)"),
    ]
}

/// Generates an extension table by id.
pub fn generate_extension(id: &str, profile: &ExperimentProfile) -> Option<Table> {
    match id {
        "ext-replication" => Some(replication_sweep(profile)),
        "ext-compression" => Some(compression_ablation(profile)),
        "ext-tokens" => Some(token_ablation(profile)),
        "ext-skew" => Some(skew_ablation(profile)),
        "ext-compaction" => Some(compaction_ablation(profile)),
        "ext-mongodb" => Some(mongodb_comparison(profile)),
        "ext-elasticity" => Some(elasticity(profile)),
        "ext-faults-crash" => Some(crate::faults::crash_failover(profile)),
        "ext-faults-slowdisk" => Some(crate::faults::slow_disk(profile)),
        "ext-faults-partition" => Some(crate::faults::partition(profile)),
        "ext-faults-failover" => Some(crate::faults::failover_comparison(profile)),
        "ext-obs-profile" => Some(crate::obs::time_attribution(profile)),
        "ext-obs-telemetry" => Some(crate::obs::telemetry_timeline(profile)),
        "ext-res-retry" => Some(crate::resilience::retry_masking(profile)),
        "ext-res-hedge" => Some(crate::resilience::hedged_reads(profile)),
        "ext-res-breaker" => Some(crate::resilience::breaker_shedding(profile)),
        "ext-res-storm" => Some(crate::resilience::retry_storm(profile)),
        "ext-snap-resume" => Some(crate::snap::snap_resume(profile)),
        "ext-chaos-campaign" => Some(crate::chaos::chaos_campaign(profile)),
        "ext-chaos-shrink" => Some(crate::chaos::chaos_shrink(profile)),
        _ => None,
    }
}

fn run_cassandra(
    config: CassandraConfig,
    nodes: u32,
    workload: &Workload,
    profile: &ExperimentProfile,
) -> RunResult {
    let mut engine = Engine::new();
    let ctx = StoreCtx::new(
        &mut engine,
        ClusterSpec::cluster_m(),
        nodes,
        StoreCtx::standard_client_machines(nodes),
        profile.scale,
        profile.seed,
    );
    let mut store = CassandraStore::new(ctx, config);
    let run = RunConfig {
        workload: workload.clone(),
        client: ClientConfig::cluster_m(nodes)
            .with_window(profile.warmup_secs, profile.measure_secs),
        records_per_node: profile.records_per_node(),
        nodes,
        seed: profile.seed,
        event_at_secs: None,
        faults: FaultSchedule::none(),
        op_deadline: None,
        telemetry_window_secs: None,
        resilience: None,
        checkpoints: None,
    };
    run_benchmark(&mut engine, &mut store, &run)
}

/// §8 future work #1: replication factor 1 → 3 under the APM insert
/// workload. Writes fan out to `rf` replicas (consistency ONE), so the
/// cluster performs `rf×` the physical write work.
pub fn replication_sweep(profile: &ExperimentProfile) -> Table {
    let nodes = 4;
    let mut table = Table::new(
        "Extension: impact of replication (Cassandra, workload W, 4 nodes)",
        "rf",
        "ops/sec | ms | GB",
    );
    table.columns = vec![
        "throughput".into(),
        "write_ms".into(),
        "disk_gb_per_node_at_10m".into(),
    ];
    for rf in 1..=3 {
        let config = CassandraConfig {
            replication: rf,
            ..CassandraConfig::default()
        };
        let result = run_cassandra(config, nodes, &Workload::w(), profile);
        // Disk usage from a load-only pass (run-time inserts depend on
        // throughput and would skew the per-record comparison).
        let disk = {
            use apm_stores::api::DistributedStore;
            let mut engine = Engine::new();
            let ctx = StoreCtx::new(
                &mut engine,
                ClusterSpec::cluster_m(),
                nodes,
                1,
                profile.scale,
                profile.seed,
            );
            let mut store = CassandraStore::new(ctx, config);
            for seq in 0..profile.records_per_node() * u64::from(nodes) {
                store.load(&apm_core::keyspace::record_for_seq(seq));
            }
            store.finish_load();
            store
                .disk_bytes_per_node()
                .map(|b| b as f64 / profile.scale / profile.data_factor / 1e9)
        };
        table.push_row(
            &rf.to_string(),
            vec![
                Some(result.throughput()),
                result.mean_latency_ms(OpKind::Insert),
                disk,
            ],
        );
    }
    table
}

/// §8 future work #2: compression. Halves the on-disk footprint at a
/// block-decompression CPU cost on every read.
pub fn compression_ablation(profile: &ExperimentProfile) -> Table {
    let nodes = 4;
    let mut table = Table::new(
        "Extension: impact of compression (Cassandra, 4 nodes)",
        "config",
        "ops/sec | GB",
    );
    table.columns = vec![
        "thr_R".into(),
        "thr_W".into(),
        "disk_gb_per_node_at_10m".into(),
    ];
    for (label, compression) in [("off", false), ("on", true)] {
        let config = CassandraConfig {
            compression,
            ..CassandraConfig::default()
        };
        let r = run_cassandra(config, nodes, &Workload::r(), profile);
        let w = run_cassandra(config, nodes, &Workload::w(), profile);
        let disk = w
            .disk_bytes_per_node
            .map(|b| b as f64 / profile.scale / profile.data_factor / 1e9);
        table.push_row(
            label,
            vec![Some(r.throughput()), Some(w.throughput()), disk],
        );
    }
    table
}

/// §6 ablation: the default random token draw vs. the paper's manually
/// assigned optimal tokens ("this default behavior frequently resulted
/// in a highly unbalanced workload").
pub fn token_ablation(profile: &ExperimentProfile) -> Table {
    let nodes = 8;
    let mut table = Table::new(
        "Extension: Cassandra token assignment (workload R, 8 nodes)",
        "tokens",
        "ops/sec | ms",
    );
    table.columns = vec!["throughput".into(), "read_ms".into()];
    for (label, tokens) in [
        ("optimal", TokenAssignment::Optimal),
        ("random", TokenAssignment::Random { seed: profile.seed }),
    ] {
        let result = run_cassandra(
            CassandraConfig {
                tokens,
                ..CassandraConfig::default()
            },
            nodes,
            &Workload::r(),
            profile,
        );
        table.push_row(
            label,
            vec![
                Some(result.throughput()),
                result.mean_latency_ms(OpKind::Read),
            ],
        );
    }
    table
}

/// Skew ablation: the paper used uniform key popularity only; YCSB's
/// zipfian chooser concentrates load on hot keys — and therefore on the
/// shards that own them.
pub fn skew_ablation(profile: &ExperimentProfile) -> Table {
    let nodes = 8;
    let mut table = Table::new(
        "Extension: key popularity skew (Cassandra, workload R, 8 nodes)",
        "distribution",
        "ops/sec | ms",
    );
    table.columns = vec!["throughput".into(), "read_ms".into()];
    for (label, distribution) in [
        ("uniform", KeyDistribution::Uniform),
        ("zipfian", KeyDistribution::Zipfian(0.99)),
        ("latest", KeyDistribution::Latest),
    ] {
        let workload = Workload {
            distribution,
            ..Workload::r()
        };
        let result = run_cassandra(CassandraConfig::default(), nodes, &workload, profile);
        table.push_row(
            label,
            vec![
                Some(result.throughput()),
                result.mean_latency_ms(OpKind::Read),
            ],
        );
    }
    table
}

/// Compaction-strategy ablation: the DESIGN.md-called-out LSM design
/// choice. Size-tiered (Cassandra 1.0 default) trades read amplification
/// for write amplification; the leveled policy does the opposite.
pub fn compaction_ablation(profile: &ExperimentProfile) -> Table {
    let nodes = 4;
    let mut table = Table::new(
        "Extension: compaction strategy (Cassandra, 4 nodes)",
        "strategy",
        "ops/sec | ms",
    );
    table.columns = vec!["thr_R".into(), "thr_W".into(), "read_ms_R".into()];
    for (label, strategy) in [
        ("size-tiered", CompactionStrategy::SizeTiered),
        ("leveled", CompactionStrategy::Leveled),
    ] {
        let config = CassandraConfig {
            strategy,
            ..CassandraConfig::default()
        };
        let r = run_cassandra(config, nodes, &Workload::r(), profile);
        let w = run_cassandra(config, nodes, &Workload::w(), profile);
        table.push_row(
            label,
            vec![
                Some(r.throughput()),
                Some(w.throughput()),
                r.mean_latency_ms(OpKind::Read),
            ],
        );
    }
    table
}

/// The §7-cited Jeong comparison re-created with the excluded
/// document-store class included: Cassandra vs. HBase vs. a
/// MongoDB-2.0-like store across the three scanless workloads.
pub fn mongodb_comparison(profile: &ExperimentProfile) -> Table {
    use crate::experiment::{run_point, StoreKind};
    use apm_stores::api::DistributedStore as _;
    use apm_stores::mongodb::MongoStore;
    use apm_stores::runner::run_benchmark;

    let nodes = 4;
    let mut table = Table::new(
        "Extension: document store vs. the paper's winners (4 nodes, Cluster M)",
        "workload",
        "ops/sec",
    );
    table.columns = vec!["cassandra".into(), "hbase".into(), "mongodb".into()];
    for workload in [Workload::r(), Workload::rw(), Workload::w()] {
        let cassandra = run_point(
            StoreKind::Cassandra,
            ClusterSpec::cluster_m(),
            nodes,
            &workload,
            profile,
        )
        .throughput();
        let hbase = run_point(
            StoreKind::HBase,
            ClusterSpec::cluster_m(),
            nodes,
            &workload,
            profile,
        )
        .throughput();
        let mongo = {
            let mut engine = Engine::new();
            let ctx = StoreCtx::new(
                &mut engine,
                ClusterSpec::cluster_m(),
                nodes,
                StoreCtx::standard_client_machines(nodes),
                profile.scale,
                profile.seed,
            );
            let mut store = MongoStore::new(ctx, &mut engine);
            let config = RunConfig {
                workload: workload.clone(),
                client: ClientConfig::cluster_m(nodes)
                    .with_window(profile.warmup_secs, profile.measure_secs),
                records_per_node: profile.records_per_node(),
                nodes,
                seed: profile.seed,
                event_at_secs: None,
                faults: FaultSchedule::none(),
                op_deadline: None,
                telemetry_window_secs: None,
                resilience: None,
                checkpoints: None,
            };
            let result = run_benchmark(&mut engine, &mut store, &config);
            let _ = store.name();
            result.throughput()
        };
        table.push_row(
            workload.name,
            vec![Some(cassandra), Some(hbase), Some(mongo)],
        );
    }
    table
}

/// Elasticity: bootstrap a fifth Cassandra node in the middle of a
/// workload-R run (the §7-cited Konstantinou et al. question). The table
/// is the per-second throughput timeline; the bootstrap streams half of
/// one node's data, and — with single-token-per-node assignment — the
/// cluster barely speeds up afterwards, because only the victim's load
/// halves: the §6 token lesson, measured.
pub fn elasticity(profile: &ExperimentProfile) -> Table {
    let nodes = 4;
    let window = profile.measure_secs.max(8.0) * 2.0;
    let add_at = window / 2.0;
    let mut engine = Engine::new();
    let ctx = StoreCtx::new(
        &mut engine,
        ClusterSpec::cluster_m(),
        nodes,
        StoreCtx::standard_client_machines(nodes),
        profile.scale,
        profile.seed,
    );
    let mut store = CassandraStore::new(
        ctx,
        CassandraConfig {
            bootstrap_on_event: true,
            ..CassandraConfig::default()
        },
    );
    let config = RunConfig {
        workload: Workload::r(),
        client: ClientConfig::cluster_m(nodes).with_window(profile.warmup_secs, window),
        records_per_node: profile.records_per_node(),
        nodes,
        seed: profile.seed,
        event_at_secs: Some(add_at),
        faults: FaultSchedule::none(),
        op_deadline: None,
        telemetry_window_secs: None,
        resilience: None,
        checkpoints: None,
    };
    let result = apm_stores::runner::run_benchmark(&mut engine, &mut store, &config);
    let mut table = Table::new(
        &format!(
            "Extension: live bootstrap 4→5 nodes at t={add_at:.0}s (Cassandra, workload R; streamed {:.1} MB)",
            store.streamed_bytes() as f64 / 1e6
        ),
        "second",
        "ops completed",
    );
    table.columns = vec!["ops_per_sec".into()];
    for (sec, &count) in result.stats.timeline().iter().enumerate() {
        table.push_row(&sec.to_string(), vec![Some(count as f64)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ExperimentProfile {
        ExperimentProfile::test()
    }

    #[test]
    fn replication_costs_throughput_and_multiplies_disk() {
        let t = replication_sweep(&profile());
        let thr1 = t.get("1", "throughput").unwrap();
        let thr3 = t.get("3", "throughput").unwrap();
        assert!(thr3 < thr1, "rf=3 must cost throughput: {thr1} → {thr3}");
        let d1 = t.get("1", "disk_gb_per_node_at_10m").unwrap();
        let d3 = t.get("3", "disk_gb_per_node_at_10m").unwrap();
        let ratio = d3 / d1;
        assert!(
            (2.5..3.5).contains(&ratio),
            "rf=3 disk must triple: {ratio:.2}"
        );
    }

    #[test]
    fn compression_halves_disk_and_costs_read_throughput() {
        let t = compression_ablation(&profile());
        let disk_off = t.get("off", "disk_gb_per_node_at_10m").unwrap();
        let disk_on = t.get("on", "disk_gb_per_node_at_10m").unwrap();
        assert!(
            (0.4..0.7).contains(&(disk_on / disk_off)),
            "compression ratio: {}",
            disk_on / disk_off
        );
        let r_off = t.get("off", "thr_R").unwrap();
        let r_on = t.get("on", "thr_R").unwrap();
        assert!(
            r_on < r_off,
            "decompression must cost read throughput: {r_off} → {r_on}"
        );
    }

    #[test]
    fn random_tokens_lose_throughput() {
        // §6: random tokens → unbalanced ring → the hottest node gates
        // the closed loop.
        let t = token_ablation(&profile());
        let optimal = t.get("optimal", "throughput").unwrap();
        let random = t.get("random", "throughput").unwrap();
        assert!(
            random < optimal * 0.97,
            "random tokens must cost throughput: {optimal} vs {random}"
        );
    }

    #[test]
    fn generate_dispatch_covers_all_ids() {
        let known = [
            "ext-replication",
            "ext-compression",
            "ext-tokens",
            "ext-skew",
            "ext-compaction",
            "ext-mongodb",
            "ext-elasticity",
            "ext-faults-crash",
            "ext-faults-slowdisk",
            "ext-faults-partition",
            "ext-faults-failover",
            "ext-obs-profile",
            "ext-obs-telemetry",
            "ext-res-retry",
            "ext-res-hedge",
            "ext-res-breaker",
            "ext-res-storm",
            "ext-snap-resume",
            "ext-chaos-campaign",
            "ext-chaos-shrink",
        ];
        for (id, _) in all_extensions() {
            assert!(known.contains(&id), "unlisted extension {id}");
        }
        assert_eq!(all_extensions().len(), known.len());
        assert!(generate_extension("ext-nope", &profile()).is_none());
    }

    #[test]
    fn mongodb_sits_between_for_reads_and_trails_for_writes() {
        // §7/Jeong: "MongoDB is shown to be less performant" — the global
        // write lock caps its write-heavy throughput below Cassandra's,
        // while its read path beats HBase's HDFS indirection.
        let t = mongodb_comparison(&profile());
        let mongo_w = t.get("W", "mongodb").unwrap();
        let cassandra_w = t.get("W", "cassandra").unwrap();
        assert!(
            mongo_w < cassandra_w * 0.6,
            "mongo W {mongo_w} vs cassandra {cassandra_w}"
        );
        let mongo_r = t.get("R", "mongodb").unwrap();
        let hbase_r = t.get("R", "hbase").unwrap();
        assert!(
            mongo_r > hbase_r,
            "mongo R {mongo_r} must beat hbase {hbase_r}"
        );
    }

    #[test]
    fn elasticity_timeline_recovers_after_the_bootstrap() {
        let t = elasticity(&profile());
        let timeline: Vec<f64> = t
            .rows
            .iter()
            .filter_map(|r| t.get(r, "ops_per_sec"))
            .collect();
        assert!(
            timeline.len() >= 6,
            "timeline too short: {}",
            timeline.len()
        );
        let half = timeline.len() / 2;
        let pre: f64 = timeline[1..half - 1].iter().sum::<f64>() / (half - 2) as f64;
        let post: f64 =
            timeline[half + 1..].iter().sum::<f64>() / (timeline.len() - half - 1) as f64;
        // Throughput must survive the bootstrap (within 25% of before, in
        // either direction — a 5th node with one token barely helps).
        assert!(
            post > pre * 0.75,
            "post-bootstrap collapse: pre {pre:.0} post {post:.0}"
        );
        assert!(
            t.title.contains("streamed"),
            "title must report streamed bytes"
        );
    }

    #[test]
    fn compaction_ablation_runs_both_strategies() {
        let t = compaction_ablation(&profile());
        for row in ["size-tiered", "leveled"] {
            assert!(t.get(row, "thr_W").unwrap() > 1_000.0, "{row} W collapsed");
            assert!(t.get(row, "thr_R").unwrap() > 1_000.0, "{row} R collapsed");
        }
    }

    #[test]
    fn skew_ablation_runs_and_keeps_throughput_positive() {
        let t = skew_ablation(&profile());
        for row in ["uniform", "zipfian", "latest"] {
            assert!(
                t.get(row, "throughput").unwrap() > 1_000.0,
                "{row} collapsed"
            );
        }
    }
}
