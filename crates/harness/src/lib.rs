//! # apm-harness
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§5) against the simulated stores.
//!
//! * [`experiment`] — one benchmark *point* (store × cluster × nodes ×
//!   workload → throughput + latencies) and the store factory.
//! * [`figures`] — one function per paper figure (Fig 3–20) plus Table 1,
//!   each returning an [`apm_core::report::Table`] with the same rows and
//!   series the paper plots.
//! * [`mod@reference`] — the paper's reported numbers (digitized from the
//!   text and figures) for paper-vs-measured comparison.
//! * [`shape`] — qualitative assertions ("Cassandra scales linearly",
//!   "VoltDB declines past one node") used by the integration tests and
//!   the EXPERIMENTS.md generator.
//! * [`extensions`] — the paper's §8 future-work items (replication,
//!   compression) and two §6-motivated ablations (token assignment, key
//!   skew), implemented as additional experiments.
//! * [`resilience`] — the client-side policy experiments: the fault
//!   schedules replayed with retries, hedged reads, circuit breakers and
//!   admission control switched on, policy-on vs policy-off per table.
//! * [`obs`] — the observability experiments: virtual-time profiling
//!   (queue-wait vs. service per resource class) and the windowed
//!   telemetry timeline, plus the Chrome trace exporter (`trace`
//!   feature).
//! * [`snap`] — checkpoint/resume equivalence and divergence bisection:
//!   sealed mid-run snapshots, byte-identical resumption, and binary
//!   search over checkpoint streams to localize a divergence
//!   (`repro snapshot | resume | bisect`).
//! * [`chaos`] — deterministic chaos search: seeded fault-schedule
//!   generation, correctness oracles (durability, conservation,
//!   availability, recovery-convergence), and a delta-debugging
//!   shrinker whose probes resume from `snap` checkpoints
//!   (`repro chaos`).
//! * [`output`] — result persistence (JSON/CSV) and report rendering.
//!
//! The `repro` binary drives it all:
//!
//! ```text
//! repro fig3                   # one figure
//! repro all --out results/     # everything, writes EXPERIMENTS data
//! repro table1                 # print the workload table
//! ```

pub mod chaos;
pub mod experiment;
pub mod extensions;
pub mod faults;
pub mod figures;
pub mod json;
pub mod obs;
pub mod output;
pub mod reference;
pub mod resilience;
pub mod shape;
pub mod snap;

pub use experiment::{ExperimentProfile, StoreKind};
pub use figures::{all_figures, figure_by_id, FigureSpec};
