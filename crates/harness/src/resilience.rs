//! Resilience-policy experiments (`ext-res-*`).
//!
//! The fault experiments (`ext-faults-*`, [`crate::faults`]) measure what
//! a misbehaving cluster does to an unprotected closed loop. These runs
//! replay the same seeded fault schedules with the client-side policy
//! kit of [`apm_stores::resilience`] switched on — retries with capped
//! exponential backoff, latency-quantile hedged reads, per-target
//! circuit breakers, and admission control — and compare each policy-on
//! row against its policy-off twin in the same table.
//!
//! Every run is fully deterministic: the backoff jitter, hedge delays,
//! and breaker clocks all live in virtual time on the kernel's event
//! heap, so the same seed reproduces byte-identical tables.

use crate::experiment::ExperimentProfile;
use crate::faults::{read_only, run_cassandra, run_redis, secs, FaultWindow, VICTIM};
use apm_core::driver::{ClientConfig, Throttle};
use apm_core::ops::OpKind;
use apm_core::report::Table;
use apm_core::workload::Workload;
use apm_sim::{ClusterSpec, Engine, FaultSchedule, SimDuration};
use apm_stores::api::StoreCtx;
use apm_stores::cassandra::{CassandraConfig, CassandraStore};
use apm_stores::resilience::{AdmissionPolicy, BreakerPolicy, HedgePolicy, RetryPolicy};
use apm_stores::runner::{run_benchmark, RunConfig, RunResult};
use apm_stores::ResiliencePolicy;

/// Fail-slow factor for the hedging experiment: the victim still
/// answers, just this much slower — the regime hedging is built for.
const FAIL_SLOW_FACTOR: u32 = 16;

fn policy_columns(table: &mut Table) {
    table.columns = vec![
        "availability".into(),
        "errors".into(),
        "throughput".into(),
        "p99_read_ms".into(),
        "retries".into(),
        "hedges".into(),
        "hedge_wins".into(),
        "breaker_transitions".into(),
        "shed".into(),
    ];
}

fn policy_row(result: &RunResult) -> Vec<Option<f64>> {
    let counters = result.stats.resilience();
    vec![
        Some(result.stats.availability()),
        Some(result.stats.total_errors() as f64),
        Some(result.throughput()),
        result.stats.quantile_latency_ms(OpKind::Read, 0.99),
        Some(counters.retries as f64),
        Some(counters.hedges as f64),
        Some(counters.hedge_wins as f64),
        Some(counters.breaker_transitions as f64),
        Some(counters.shed as f64),
    ]
}

/// `ext-res-retry`: the `ext-faults-crash` rf=1 run — a crashed node
/// whose key range has no replica — with the standard retry schedule
/// switched on. The backoff ladder (50 ms doubling to a 2 s cap, six
/// retries) outlasts the outage, so attempts that land on the dead node
/// wait it out instead of erroring: availability rises to ~1 while the
/// errors column collapses.
pub fn retry_masking(profile: &ExperimentProfile) -> Table {
    let nodes = 4;
    let w = FaultWindow::for_profile(profile);
    let mut table = Table::new(
        &format!(
            "Extension: retries vs a crash window, crash t={:.0}s restart t={:.0}s (Cassandra rf=1, workload R, 4 nodes)",
            w.fault, w.restore
        ),
        "policy",
        "ratio | count | ops/sec | ms",
    );
    policy_columns(&mut table);
    let retry_on = ResiliencePolicy {
        retry: Some(RetryPolicy::standard()),
        ..ResiliencePolicy::default()
    };
    for (label, resilience) in [("retry-off", None), ("retry-on", Some(retry_on))] {
        let result = run_cassandra(
            CassandraConfig {
                replication: 1,
                ..CassandraConfig::default()
            },
            nodes,
            profile,
            &w,
            w.crash(),
            None,
            resilience,
        );
        table.push_row(label, policy_row(&result));
    }
    table
}

/// Runs workload R on an rf=2 Cassandra cluster with a throttle — the
/// hedging experiment needs spare capacity: a speculative duplicate only
/// helps when the healthy replica has headroom to answer it.
fn run_cassandra_throttled(
    nodes: u32,
    profile: &ExperimentProfile,
    window: &FaultWindow,
    faults: FaultSchedule,
    throttle: Throttle,
    resilience: Option<ResiliencePolicy>,
) -> RunResult {
    let mut engine = Engine::new();
    let ctx = StoreCtx::new(
        &mut engine,
        ClusterSpec::cluster_m(),
        nodes,
        StoreCtx::standard_client_machines(nodes),
        profile.scale,
        profile.seed,
    );
    let mut store = CassandraStore::new(
        ctx,
        CassandraConfig {
            replication: 2,
            ..CassandraConfig::default()
        },
    );
    let run = RunConfig {
        workload: Workload::r(),
        client: ClientConfig::cluster_m(nodes)
            .with_window(profile.warmup_secs, window.window)
            .with_throttle(throttle),
        records_per_node: profile.records_per_node(),
        nodes,
        seed: profile.seed,
        event_at_secs: None,
        faults,
        op_deadline: None,
        telemetry_window_secs: Some(1.0),
        resilience,
        checkpoints: None,
    };
    run_benchmark(&mut engine, &mut store, &run)
}

/// `ext-res-hedge`: one Cassandra node fail-slows to 16× while still
/// answering — the canonical tail-latency fault. At rf=2 every key the
/// victim owns has a healthy replica, but the router keeps sending
/// primaries to the slow node (it is not *down*). Both rows run at 60 %
/// of the healthy cluster's measured maximum (hedging is a headroom
/// trade: at saturation the duplicates would only add queueing). A hedge
/// fires after the observed p95 read latency and races a duplicate read
/// against the other replica; the healthy replica wins, the slow attempt
/// is cancelled, and the read p99 drops back toward the baseline.
pub fn hedged_reads(profile: &ExperimentProfile) -> Table {
    let nodes = 4;
    let w = FaultWindow::for_profile(profile);
    let max = run_cassandra_throttled(
        nodes,
        profile,
        &w,
        FaultSchedule::none(),
        Throttle::Unlimited,
        None,
    )
    .throughput();
    let target = max * 0.6;
    let faults =
        FaultSchedule::none().fail_slow(VICTIM, secs(w.fault), secs(w.restore), FAIL_SLOW_FACTOR);
    let mut table = Table::new(
        &format!(
            "Extension: hedged reads vs a {FAIL_SLOW_FACTOR}x fail-slow node, t={:.0}s to t={:.0}s (Cassandra rf=2, workload R, 4 nodes, 60% load)",
            w.fault, w.restore
        ),
        "policy",
        "ratio | count | ops/sec | ms",
    );
    policy_columns(&mut table);
    let hedge_on = ResiliencePolicy {
        hedge: Some(HedgePolicy::standard()),
        ..ResiliencePolicy::default()
    };
    for (label, resilience) in [("hedge-off", None), ("hedge-on", Some(hedge_on))] {
        let result = run_cassandra_throttled(
            nodes,
            profile,
            &w,
            faults.clone(),
            Throttle::TargetOps(target),
            resilience,
        );
        table.push_row(label, policy_row(&result));
    }
    table
}

/// `ext-res-breaker`: the `ext-faults-partition` timeout run — a
/// blackholed Redis shard surfaced as 10 ms client timeouts — with a
/// per-target circuit breaker. After a window of timeouts the victim's
/// breaker opens and ops to that shard fast-fail on the client (shed,
/// counted as rejections) instead of burning a 10 ms deadline each;
/// half-open probes re-test the shard until the partition heals and the
/// breaker closes. Errors drop by orders of magnitude and the loop
/// spends its time on the healthy shards.
pub fn breaker_shedding(profile: &ExperimentProfile) -> Table {
    let nodes = 4;
    let w = FaultWindow::for_profile(profile);
    let faults = FaultSchedule::none().partition(VICTIM, secs(w.fault), secs(w.restore));
    let deadline = Some(SimDuration::from_millis(10));
    let mut table = Table::new(
        &format!(
            "Extension: circuit breaker vs a partitioned shard, t={:.0}s to t={:.0}s (Redis, read-only, timeout 10ms, 4 nodes)",
            w.fault, w.restore
        ),
        "policy",
        "ratio | count | ops/sec | ms",
    );
    policy_columns(&mut table);
    let breaker_on = ResiliencePolicy {
        breaker: Some(BreakerPolicy::standard()),
        ..ResiliencePolicy::default()
    };
    for (label, resilience) in [("breaker-off", None), ("breaker-on", Some(breaker_on))] {
        let result = run_redis(
            read_only(),
            nodes,
            profile,
            &w,
            faults.clone(),
            deadline,
            resilience,
        );
        table.push_row(label, policy_row(&result));
    }
    table
}

/// An aggressive, barely backed-off schedule: the retry-storm
/// anti-pattern (1 ms base, 4 ms cap, no jitter, eight attempts).
fn storm_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries_read: 8,
        max_retries_write: 8,
        base_backoff: SimDuration::from_millis(1),
        backoff_cap: SimDuration::from_millis(4),
        jitter: 0.0,
    }
}

/// `ext-res-storm`: the same rf=1 crash as `ext-res-retry`, but driven
/// with a deliberately aggressive retry schedule. Unbounded, every
/// failed op hammers the dead node eight more times within ~20 ms — the
/// classic retry storm. The budgeted row adds admission control (5 %
/// extra-attempt ratio, burst 5): the token bucket drains in the first
/// seconds of the outage and the storm is shed on the client instead of
/// amplifying the failure.
pub fn retry_storm(profile: &ExperimentProfile) -> Table {
    let nodes = 4;
    let w = FaultWindow::for_profile(profile);
    let mut table = Table::new(
        &format!(
            "Extension: admission control vs a retry storm, crash t={:.0}s restart t={:.0}s (Cassandra rf=1, workload R, 4 nodes)",
            w.fault, w.restore
        ),
        "policy",
        "ratio | count | ops/sec | ms",
    );
    policy_columns(&mut table);
    let unbounded = ResiliencePolicy {
        retry: Some(storm_retry()),
        ..ResiliencePolicy::default()
    };
    let budgeted = ResiliencePolicy {
        retry: Some(storm_retry()),
        admission: Some(AdmissionPolicy {
            retry_ratio: 0.05,
            burst: 5,
        }),
        ..ResiliencePolicy::default()
    };
    for (label, resilience) in [("unbounded", unbounded), ("budgeted", budgeted)] {
        let result = run_cassandra(
            CassandraConfig {
                replication: 1,
                ..CassandraConfig::default()
            },
            nodes,
            profile,
            &w,
            w.crash(),
            None,
            Some(resilience),
        );
        table.push_row(label, policy_row(&result));
    }
    table
}

/// Runs the retry experiment's policy-on configuration once and returns
/// the kernel trace fingerprint — the strongest equality the simulator
/// offers: two identical-seed runs must replay the exact event stream.
#[cfg(feature = "trace")]
pub fn retry_trace_fingerprint(profile: &ExperimentProfile) -> u64 {
    use apm_core::driver::ClientConfig;
    use apm_core::workload::Workload;
    use apm_sim::{ClusterSpec, Engine};
    use apm_stores::api::StoreCtx;
    use apm_stores::cassandra::CassandraStore;
    use apm_stores::runner::{run_benchmark, RunConfig};

    let nodes = 4;
    let w = FaultWindow::for_profile(profile);
    let mut engine = Engine::new();
    let ctx = StoreCtx::new(
        &mut engine,
        ClusterSpec::cluster_m(),
        nodes,
        StoreCtx::standard_client_machines(nodes),
        profile.scale,
        profile.seed,
    );
    let mut store = CassandraStore::new(
        ctx,
        CassandraConfig {
            replication: 1,
            ..CassandraConfig::default()
        },
    );
    let run = RunConfig {
        workload: Workload::r(),
        client: ClientConfig::cluster_m(nodes).with_window(profile.warmup_secs, w.window),
        records_per_node: profile.records_per_node(),
        nodes,
        seed: profile.seed,
        event_at_secs: None,
        faults: w.crash(),
        op_deadline: None,
        telemetry_window_secs: Some(1.0),
        resilience: Some(ResiliencePolicy {
            retry: Some(RetryPolicy::standard()),
            hedge: Some(HedgePolicy::standard()),
            breaker: Some(BreakerPolicy::standard()),
            admission: Some(AdmissionPolicy::standard()),
        }),
        checkpoints: None,
    };
    let _ = run_benchmark(&mut engine, &mut store, &run);
    engine.tracer().fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ExperimentProfile {
        ExperimentProfile::test()
    }

    #[test]
    fn retries_lift_availability_above_the_unprotected_crash_run() {
        let t = retry_masking(&profile());
        let off = t.get("retry-off", "availability").expect("off cell");
        let on = t.get("retry-on", "availability").expect("on cell");
        assert!(on > off, "retries must mask the outage: {off} vs {on}");
        assert!(
            t.get("retry-on", "errors").expect("errors cell")
                < t.get("retry-off", "errors").expect("errors cell"),
            "retries must absorb errors"
        );
        assert!(
            t.get("retry-on", "retries").expect("retries cell") > 0.0,
            "the retry path must actually fire"
        );
        assert_eq!(
            t.get("retry-off", "retries").expect("off retries cell"),
            0.0,
            "the unprotected run never retries"
        );
    }

    #[test]
    fn hedges_cut_the_read_tail_under_a_fail_slow_node() {
        let t = hedged_reads(&profile());
        let off = t.get("hedge-off", "p99_read_ms").expect("off p99 cell");
        let on = t.get("hedge-on", "p99_read_ms").expect("on p99 cell");
        assert!(on < off, "hedging must cut the read p99: {off} vs {on}");
        let hedges = t.get("hedge-on", "hedges").expect("hedges cell");
        let wins = t.get("hedge-on", "hedge_wins").expect("hedge_wins cell");
        assert!(hedges > 0.0, "hedges must fire during the slow window");
        assert!(wins > 0.0, "some hedges must beat the slow primary");
        assert!(wins <= hedges, "wins bounded by hedges: {wins} vs {hedges}");
    }

    #[test]
    fn breaker_sheds_the_partitioned_shard_instead_of_timing_out() {
        let t = breaker_shedding(&profile());
        let off = t.get("breaker-off", "errors").expect("off errors cell");
        let on = t.get("breaker-on", "errors").expect("on errors cell");
        assert!(on < off, "the breaker must absorb timeouts: {off} vs {on}");
        assert!(
            t.get("breaker-on", "shed").expect("shed cell") > 0.0,
            "an open breaker must shed"
        );
        assert!(
            t.get("breaker-on", "breaker_transitions")
                .expect("transitions cell")
                >= 2.0,
            "the breaker must open and recover"
        );
        assert!(
            t.get("breaker-on", "availability")
                .expect("on availability")
                > t.get("breaker-off", "availability")
                    .expect("off availability"),
            "fewer timeouts means higher availability"
        );
    }

    #[test]
    fn admission_control_caps_the_retry_storm() {
        let t = retry_storm(&profile());
        let unbounded = t.get("unbounded", "retries").expect("unbounded cell");
        let budgeted = t.get("budgeted", "retries").expect("budgeted cell");
        assert!(
            budgeted < unbounded,
            "the budget must cap retries: {unbounded} vs {budgeted}"
        );
        assert!(
            t.get("budgeted", "shed").expect("shed cell") > 0.0,
            "admission control must shed the excess"
        );
        assert_eq!(
            t.get("unbounded", "shed").expect("unbounded shed cell"),
            0.0,
            "without admission control nothing is shed"
        );
    }

    #[test]
    fn resilience_tables_are_twice_run_byte_identical() {
        let p = profile();
        for (label, gen) in [
            (
                "ext-res-retry",
                retry_masking as fn(&ExperimentProfile) -> Table,
            ),
            ("ext-res-hedge", hedged_reads),
            ("ext-res-breaker", breaker_shedding),
            ("ext-res-storm", retry_storm),
        ] {
            let first = gen(&p);
            let second = gen(&p);
            assert_eq!(
                first.render(),
                second.render(),
                "{label} rendered table must be byte-identical across runs"
            );
            assert_eq!(
                first.to_csv(),
                second.to_csv(),
                "{label} CSV must be byte-identical across runs"
            );
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn full_policy_run_replays_to_the_same_trace_fingerprint() {
        let p = profile();
        assert_eq!(
            retry_trace_fingerprint(&p),
            retry_trace_fingerprint(&p),
            "kernel event stream must replay identically with all policies on"
        );
    }
}
