//! Client-side data placement: token rings, sharding libraries, region
//! and partition maps.
//!
//! How keys map to nodes is one of the paper's recurring themes: Cassandra
//! needed manually assigned tokens to balance (§6); the Jedis library
//! balanced poorly enough to drive one Redis node out of memory (§5.1);
//! the RDBMS client's consistent hashing "did a much better sharding than
//! the Jedis library" (§5.1). These routers reproduce those layers.

use crate::hashes::{md5_u128, murmur2_64a};
use apm_core::record::MetricKey;
use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::collections::BTreeMap;

/// Reports how evenly a router spreads a key sample over `n` nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct BalanceReport {
    /// Fraction of keys per node.
    pub shares: Vec<f64>,
    /// max(share) / mean(share): 1.0 is perfect balance.
    pub max_over_mean: f64,
}

/// Computes a balance report for any routing function.
pub fn balance_of(
    nodes: usize,
    sample: u64,
    mut route: impl FnMut(&MetricKey) -> usize,
) -> BalanceReport {
    let mut counts = vec![0u64; nodes];
    for seq in 0..sample {
        let key = apm_core::keyspace::key_for_seq(seq);
        counts[route(&key)] += 1;
    }
    let mean = sample as f64 / nodes as f64;
    let shares: Vec<f64> = counts.iter().map(|&c| c as f64 / sample as f64).collect();
    let max_over_mean = counts.iter().copied().max().unwrap_or(0) as f64 / mean;
    BalanceReport {
        shares,
        max_over_mean,
    }
}

/// How Cassandra tokens are assigned (§6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenAssignment {
    /// Default: each node picks a random token — "frequently resulted in
    /// a highly unbalanced workload" (§6).
    Random {
        /// Seed for the random token draw.
        seed: u64,
    },
    /// The paper's fix: "we assigned an optimal set of tokens to the
    /// nodes", i.e. evenly spaced over the 2^127 range.
    Optimal,
}

/// Cassandra's token ring over the `RandomPartitioner` (MD5) key space.
#[derive(Clone, Debug)]
pub struct TokenRing {
    /// Sorted (token, node) pairs.
    tokens: Vec<(u128, usize)>,
    nodes: usize,
}

/// The RandomPartitioner token space is `[0, 2^127)`.
const TOKEN_SPACE: u128 = 1 << 127;

impl TokenRing {
    /// Builds a ring for `nodes` nodes.
    pub fn new(nodes: usize, assignment: TokenAssignment) -> TokenRing {
        assert!(nodes > 0);
        let mut tokens: Vec<(u128, usize)> = match assignment {
            TokenAssignment::Optimal => (0..nodes)
                .map(|i| (TOKEN_SPACE / nodes as u128 * i as u128, i))
                .collect(),
            TokenAssignment::Random { seed } => (0..nodes)
                .map(|i| {
                    let h =
                        md5_u128(format!("token-seed-{seed}-node-{i}").as_bytes()) % TOKEN_SPACE;
                    (h, i)
                })
                .collect(),
        };
        tokens.sort_unstable();
        TokenRing { tokens, nodes }
    }

    /// Node owning `key`: the node whose token is the greatest token
    /// `<= hash(key)` (Cassandra semantics: a token owns the range
    /// (previous token, token], we use the equivalent successor form).
    pub fn route(&self, key: &MetricKey) -> usize {
        let h = md5_u128(key.as_bytes()) % TOKEN_SPACE;
        match self.tokens.binary_search_by(|(t, _)| t.cmp(&h)) {
            Ok(i) => self.tokens[i].1,
            Err(0) => self.tokens[self.tokens.len() - 1].1,
            Err(i) => self.tokens[i - 1].1,
        }
    }

    /// Nodes holding replicas of `key` for replication factor `rf`:
    /// the owner plus the next `rf - 1` ring successors (SimpleStrategy).
    pub fn replicas(&self, key: &MetricKey, rf: usize) -> Vec<usize> {
        let owner_pos = {
            let h = md5_u128(key.as_bytes()) % TOKEN_SPACE;
            match self.tokens.binary_search_by(|(t, _)| t.cmp(&h)) {
                Ok(i) => i,
                Err(0) => self.tokens.len() - 1,
                Err(i) => i - 1,
            }
        };
        let mut out = Vec::with_capacity(rf.min(self.nodes));
        let mut pos = owner_pos;
        while out.len() < rf.min(self.nodes) {
            let node = self.tokens[pos].1;
            if !out.contains(&node) {
                out.push(node);
            }
            pos = (pos + 1) % self.tokens.len();
        }
        out
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Bootstraps a new node into the ring the way Cassandra operators
    /// did it in 1.0: the newcomer takes a token in the middle of the
    /// *largest* existing range, claiming half of one node's data.
    /// Returns the index of the node whose range was split.
    pub fn extend(&mut self) -> usize {
        let new_node = self.nodes;
        // Find the largest circular gap between consecutive tokens.
        let mut best = (0u128, 0usize);
        for i in 0..self.tokens.len() {
            let here = self.tokens[i].0;
            let next = if i + 1 < self.tokens.len() {
                self.tokens[i + 1].0
            } else {
                self.tokens[0].0 + TOKEN_SPACE
            };
            let gap = next - here;
            if gap > best.0 {
                best = (gap, i);
            }
        }
        let (gap, i) = best;
        // The owner of the split range is the *successor* position's
        // owner in our successor-form routing... with the owner form used
        // here (greatest token <= hash), range (tokens[i], tokens[i+1])
        // belongs to tokens[i].1.
        let victim = self.tokens[i].1;
        let new_token = (self.tokens[i].0 + gap / 2) % TOKEN_SPACE;
        self.tokens.push((new_token, new_node));
        self.tokens.sort_unstable();
        self.nodes += 1;
        victim
    }
}

impl Snap for TokenRing {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.tokens);
        w.put_u64(self.nodes as u64);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        let tokens: Vec<(u128, usize)> = r.get()?;
        let nodes = r.u64()? as usize;
        Ok(TokenRing { tokens, nodes })
    }
}

/// The Jedis `ShardedJedisPool` ring: 160 weighted virtual nodes per
/// shard, hashed with MurmurHash (the library's default; §5.1 footnote 7:
/// "We tried both supported hashing algorithms in Jedis, MurMurHash and
/// MD5, with the same result").
#[derive(Clone, Debug)]
pub struct JedisRing {
    ring: BTreeMap<u64, usize>,
    shards: usize,
}

/// Virtual nodes per shard, matching Jedis's `Hashing.MURMUR_HASH` setup.
pub const JEDIS_VNODES: usize = 160;

/// Key hasher choice for the Jedis ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JedisHash {
    /// MurmurHash64A (Jedis default).
    Murmur,
    /// MD5 folded to 64 bits (Jedis alternative).
    Md5,
}

impl JedisRing {
    /// Builds the ring exactly the way Jedis does: vnode `n` of shard `i`
    /// hashes the string `"SHARD-{i}-NODE-{n}"`.
    pub fn new(shards: usize, hash: JedisHash) -> JedisRing {
        assert!(shards > 0);
        let mut ring = BTreeMap::new();
        for shard in 0..shards {
            for vnode in 0..JEDIS_VNODES {
                let name = format!("SHARD-{shard}-NODE-{vnode}");
                let h = Self::hash_with(hash, name.as_bytes());
                ring.insert(h, shard);
            }
        }
        JedisRing { ring, shards }
    }

    fn hash_with(hash: JedisHash, data: &[u8]) -> u64 {
        match hash {
            JedisHash::Murmur => murmur2_64a(data, 0x1234ABCD),
            JedisHash::Md5 => {
                let d = crate::hashes::md5(data);
                u64::from_le_bytes(d[0..8].try_into().expect("8 bytes"))
            }
        }
    }

    /// Shard owning `key` (successor vnode on the ring).
    pub fn route_with(&self, hash: JedisHash, key: &MetricKey) -> usize {
        let h = Self::hash_with(hash, key.as_bytes());
        match self.ring.range(h..).next() {
            Some((_, shard)) => *shard,
            None => *self.ring.values().next().expect("non-empty ring"),
        }
    }

    /// Shard owning `key`, using the default Murmur hasher.
    pub fn route(&self, key: &MetricKey) -> usize {
        self.route_with(JedisHash::Murmur, key)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Virtual nodes each shard owns on the ring — the conserved weight:
    /// Jedis always places [`JEDIS_VNODES`] per shard, and a hash
    /// collision that silently dropped one would skew key distribution.
    pub fn vnode_weights(&self) -> Vec<u64> {
        let mut weights = vec![0u64; self.shards];
        for &shard in self.ring.values() {
            weights[shard] += 1;
        }
        weights
    }
}

/// The RDBMS YCSB client's consistent hashing — observed to shard "much
/// better than the Jedis library" (§5.1). Modelled as a ring with many
/// more virtual nodes per shard, which is what flattens the imbalance.
#[derive(Clone, Debug)]
pub struct RdbmsShards {
    ring: BTreeMap<u64, usize>,
    shards: usize,
}

const RDBMS_VNODES: usize = 1024;

impl RdbmsShards {
    /// Builds the sharding ring.
    pub fn new(shards: usize) -> RdbmsShards {
        assert!(shards > 0);
        let mut ring = BTreeMap::new();
        for shard in 0..shards {
            for vnode in 0..RDBMS_VNODES {
                let h = murmur2_64a(format!("jdbc:{shard}:{vnode}").as_bytes(), 97);
                ring.insert(h, shard);
            }
        }
        RdbmsShards { ring, shards }
    }

    /// Shard owning `key`.
    pub fn route(&self, key: &MetricKey) -> usize {
        let h = murmur2_64a(key.as_bytes(), 97);
        match self.ring.range(h..).next() {
            Some((_, shard)) => *shard,
            None => *self.ring.values().next().expect("non-empty ring"),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

/// Voldemort's partition map: the paper set "two partitions per node"
/// (§4.3); a key hashes to a partition, each partition belongs to a node.
#[derive(Clone, Debug)]
pub struct PartitionMap {
    partitions_per_node: usize,
    nodes: usize,
}

impl PartitionMap {
    /// Builds the map with the paper's two partitions per node.
    pub fn new(nodes: usize) -> PartitionMap {
        assert!(nodes > 0);
        PartitionMap {
            partitions_per_node: 2,
            nodes,
        }
    }

    /// Total partition count.
    pub fn partitions(&self) -> usize {
        self.partitions_per_node * self.nodes
    }

    /// Partition owning `key`.
    pub fn partition(&self, key: &MetricKey) -> usize {
        (murmur2_64a(key.as_bytes(), 3) % self.partitions() as u64) as usize
    }

    /// Node owning `key`. Partitions are interleaved round-robin across
    /// nodes (partition p lives on node p mod n), like Voldemort's
    /// default cluster.xml generator.
    pub fn route(&self, key: &MetricKey) -> usize {
        self.partition(key) % self.nodes
    }
}

/// HBase's region map: ranges of the key space assigned to region
/// servers. We pre-split into `regions_per_server × servers` equal ranges
/// (the benchmark's hashed keys are uniform over the key space, so equal
/// ranges balance — matching the paper's loaded steady state).
#[derive(Clone, Debug)]
pub struct RegionMap {
    boundaries: Vec<MetricKey>,
    servers: usize,
}

impl RegionMap {
    /// Creates `servers × regions_per_server` regions.
    pub fn new(servers: usize, regions_per_server: usize) -> RegionMap {
        assert!(servers > 0 && regions_per_server > 0);
        let regions = servers * regions_per_server;
        // Key space: base-36 "m"-prefixed ids over u64 (see MetricKey);
        // split the u64 id space evenly.
        let boundaries = (1..regions)
            .map(|i| {
                let id = (u64::MAX / regions as u64).saturating_mul(i as u64);
                MetricKey::from_id(id)
            })
            .collect();
        RegionMap {
            boundaries,
            servers,
        }
    }

    /// Region index holding `key`.
    pub fn region(&self, key: &MetricKey) -> usize {
        self.boundaries.partition_point(|b| b <= key)
    }

    /// Total region count.
    pub fn regions(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Region server hosting `key`'s region (regions assigned round-robin).
    pub fn route(&self, key: &MetricKey) -> usize {
        self.region(key) % self.servers
    }

    /// Servers hosting the (contiguous) regions a scan of `len` records
    /// starting at `start` may touch. The benchmark's 50-record scans
    /// almost always stay within one region; crossing a boundary adds the
    /// successor region's server.
    pub fn scan_route(&self, start: &MetricKey, _len: usize) -> Vec<usize> {
        let first = self.region(start);
        let mut servers = vec![first % self.servers];
        // A 50-record scan out of millions spans a boundary only when the
        // start falls in the region's last sliver; include the next
        // region's server when the start key is near the boundary.
        if first < self.boundaries.len() {
            let next_server = (first + 1) % self.servers;
            if !servers.contains(&next_server) && self.near_boundary(start, first) {
                servers.push(next_server);
            }
        }
        servers
    }

    fn near_boundary(&self, key: &MetricKey, region: usize) -> bool {
        // "Near" = within the top 1/64 of the region's id range.
        let hi = if region < self.boundaries.len() {
            self.boundaries[region].to_id().unwrap_or(u64::MAX)
        } else {
            u64::MAX
        };
        let lo = if region == 0 {
            0
        } else {
            self.boundaries[region - 1].to_id().unwrap_or(0)
        };
        match key.to_id() {
            Some(id) => {
                let width = hi.saturating_sub(lo).max(1);
                id.saturating_sub(lo) >= width - width / 64
            }
            None => false,
        }
    }
}

/// VoltDB's partitioner: key → site, `sites_per_host` sites per node.
#[derive(Clone, Copy, Debug)]
pub struct SiteMap {
    /// Paper setting: "6 sites per host" (§4.5).
    pub sites_per_host: usize,
    /// Node count.
    pub nodes: usize,
}

impl SiteMap {
    /// Creates the map with the paper's 6 sites per host.
    pub fn new(nodes: usize) -> SiteMap {
        assert!(nodes > 0);
        SiteMap {
            sites_per_host: 6,
            nodes,
        }
    }

    /// Total sites in the cluster.
    pub fn sites(&self) -> usize {
        self.sites_per_host * self.nodes
    }

    /// Site executing single-partition transactions on `key`.
    pub fn site(&self, key: &MetricKey) -> usize {
        (murmur2_64a(key.as_bytes(), 11) % self.sites() as u64) as usize
    }

    /// Host owning `key`'s site.
    pub fn route(&self, key: &MetricKey) -> usize {
        self.site(key) / self.sites_per_host
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apm_core::keyspace::key_for_seq;

    #[test]
    fn optimal_tokens_balance_well() {
        let ring = TokenRing::new(12, TokenAssignment::Optimal);
        let report = balance_of(12, 24_000, |k| ring.route(k));
        assert!(
            report.max_over_mean < 1.1,
            "optimal tokens unbalanced: {}",
            report.max_over_mean
        );
    }

    #[test]
    fn random_tokens_balance_worse_than_optimal() {
        // §6: the default random token draw "frequently resulted in a
        // highly unbalanced workload".
        let optimal = TokenRing::new(12, TokenAssignment::Optimal);
        let random = TokenRing::new(12, TokenAssignment::Random { seed: 1 });
        let ob = balance_of(12, 24_000, |k| optimal.route(k));
        let rb = balance_of(12, 24_000, |k| random.route(k));
        assert!(
            rb.max_over_mean > ob.max_over_mean + 0.15,
            "random {} vs optimal {}",
            rb.max_over_mean,
            ob.max_over_mean
        );
    }

    #[test]
    fn token_ring_routes_consistently() {
        let ring = TokenRing::new(4, TokenAssignment::Optimal);
        for seq in 0..100 {
            let k = key_for_seq(seq);
            assert_eq!(ring.route(&k), ring.route(&k));
            assert!(ring.route(&k) < 4);
        }
    }

    #[test]
    fn replicas_are_distinct_successors() {
        let ring = TokenRing::new(6, TokenAssignment::Optimal);
        let k = key_for_seq(7);
        let reps = ring.replicas(&k, 3);
        assert_eq!(reps.len(), 3);
        assert_eq!(reps[0], ring.route(&k));
        // Cardinality check only, never iterated. audit:allow(hash-order)
        let distinct: std::collections::HashSet<_> = reps.iter().collect();
        assert_eq!(distinct.len(), 3);
        // rf larger than the cluster clamps.
        assert_eq!(ring.replicas(&k, 10).len(), 6);
    }

    #[test]
    fn extend_gives_the_new_node_half_of_one_range() {
        let mut ring = TokenRing::new(4, TokenAssignment::Optimal);
        let before = balance_of(4, 40_000, |k| ring.route(k));
        let victim = ring.extend();
        assert!(victim < 4);
        assert_eq!(ring.nodes(), 5);
        let after = balance_of(5, 40_000, |k| ring.route(k));
        // The newcomer and the victim each hold ≈ half the old share.
        let new_share = after.shares[4];
        assert!(
            (new_share - 0.125).abs() < 0.02,
            "new node share {new_share}"
        );
        assert!(
            (after.shares[victim] - 0.125).abs() < 0.02,
            "victim share {}",
            after.shares[victim]
        );
        // Untouched nodes keep their share.
        let untouched: f64 = (0..4)
            .filter(|&i| i != victim)
            .map(|i| after.shares[i])
            .sum();
        assert!((untouched - 0.75).abs() < 0.03);
        let _ = before;
    }

    #[test]
    fn jedis_ring_is_less_balanced_than_rdbms_sharding() {
        // §5.1: "the YCSB client for MySQL did a much better sharding
        // than the Jedis library".
        let jedis = JedisRing::new(12, JedisHash::Murmur);
        let rdbms = RdbmsShards::new(12);
        let jb = balance_of(12, 48_000, |k| jedis.route(k));
        let rb = balance_of(12, 48_000, |k| rdbms.route(k));
        assert!(
            jb.max_over_mean > rb.max_over_mean,
            "jedis {} vs rdbms {}",
            jb.max_over_mean,
            rb.max_over_mean
        );
        assert!(
            jb.max_over_mean > 1.1,
            "jedis should show visible imbalance: {}",
            jb.max_over_mean
        );
        assert!(
            rb.max_over_mean < 1.12,
            "rdbms sharding should be near-uniform: {}",
            rb.max_over_mean
        );
    }

    #[test]
    fn jedis_md5_variant_shows_the_same_imbalance() {
        // Footnote 7: both hashing algorithms gave "the same result".
        let ring = JedisRing::new(12, JedisHash::Md5);
        let report = balance_of(12, 48_000, |k| ring.route_with(JedisHash::Md5, k));
        assert!(
            report.max_over_mean > 1.1,
            "md5 ring too balanced: {}",
            report.max_over_mean
        );
    }

    #[test]
    fn partition_map_has_two_partitions_per_node() {
        let map = PartitionMap::new(6);
        assert_eq!(map.partitions(), 12);
        let report = balance_of(6, 24_000, |k| map.route(k));
        assert!(
            report.max_over_mean < 1.1,
            "hash partitioning should balance: {}",
            report.max_over_mean
        );
    }

    #[test]
    fn region_map_balances_hashed_keys_and_routes_ranges() {
        let map = RegionMap::new(4, 4);
        assert_eq!(map.regions(), 16);
        let report = balance_of(4, 24_000, |k| map.route(k));
        assert!(
            report.max_over_mean < 1.1,
            "uniform keys over equal ranges: {}",
            report.max_over_mean
        );
        // Scan routing: contiguous keys stay on one or two servers.
        for seq in 0..100 {
            let servers = map.scan_route(&key_for_seq(seq), 50);
            assert!(!servers.is_empty() && servers.len() <= 2);
        }
    }

    #[test]
    fn region_map_region_is_monotone_in_key() {
        let map = RegionMap::new(3, 5);
        let mut keys: Vec<MetricKey> = (0..1000).map(key_for_seq).collect();
        keys.sort();
        let regions: Vec<usize> = keys.iter().map(|k| map.region(k)).collect();
        assert!(
            regions.windows(2).all(|w| w[0] <= w[1]),
            "regions must be ordered by key"
        );
    }

    #[test]
    fn site_map_uses_six_sites_per_host() {
        let map = SiteMap::new(4);
        assert_eq!(map.sites(), 24);
        for seq in 0..200 {
            let k = key_for_seq(seq);
            let site = map.site(&k);
            assert_eq!(map.route(&k), site / 6);
        }
        let report = balance_of(4, 24_000, |k| map.route(k));
        assert!(report.max_over_mean < 1.1);
    }
}
