//! The Voldemort-like store: a client-routed DHT over per-node B-trees.
//!
//! §4.3: Voldemort is "a distributed, fault-tolerant, persistent hash
//! table" — keys hash to partitions (the paper set two per node), the
//! *client* routes directly to the owning node, and each node persists
//! through an embedded BerkeleyDB JE B-tree with an in-heap cache.
//!
//! The paper's signature Voldemort observations, and their mechanisms
//! here:
//! * *Lowest, most stable latency* (230–260 µs, Fig 4/5): the fat client
//!   routes in one hop and the per-node service is a cached B-tree probe.
//! * *Moderate throughput* (≈12 K ops/s/node, Fig 3): the client library
//!   is the bottleneck — §6 describes its default 10-thread / 50-connection
//!   limits that "was always reached"; we cap connections per node and
//!   charge the client-side routing CPU.
//! * *Symmetric read/write latency* (Fig 4 vs 5): writes are a cached
//!   leaf update plus an asynchronous JE log append (no group-commit
//!   stall, no fsync on the foreground path).
//! * *Cluster D*: BerkeleyDB JE is log-structured — writes append the
//!   new record version to the log (sequential) and only need the
//!   branch-level BIN, which is partially cache-resident; reads must
//!   fetch the record from the log (random). So writes gain from the
//!   write-heavy workloads, but far less than the pure-LSM stores whose
//!   write path never reads: ×3 from R to W on Cluster D (Fig 18).

use crate::api::{
    background_token, round_trip_plan, server_steps, CostModel, DistributedStore, StoreCtx,
};
use crate::routing::PartitionMap;
use apm_core::keyspace::SplitRng;
use apm_core::ops::{OpOutcome, Operation, RejectReason};
use apm_core::record::Record;
use apm_core::snap::{SnapError, SnapReader, SnapWriter};
use apm_sim::{Engine, Plan, SimDuration};
use apm_storage::btree::{BTree, BTreeConfig, PageTrace};
use apm_storage::bufferpool::{Access, BufferPool};
use apm_storage::encoding::{voldemort_format, StorageFormat};
use apm_storage::receipt::{CostReceipt, DiskIo};
use apm_storage::wal::{CommitLog, SyncPolicy};
use std::collections::BTreeMap;

/// Server-side request cost (protobuf parse, store lookup dispatch).
const SERVER_COST: CostModel = CostModel {
    base_ns: 40_000,
    per_probe_ns: 5_000,
    per_byte_ns: 20,
};
/// Client-side routing/versioning cost per operation — the fat client.
const CLIENT_CPU: SimDuration = SimDuration::from_micros(200);
/// Connections per node the throttled client sustains (§6's thread and
/// connection limits; calibrated to ≈12 K ops/s per node, Fig 3).
const CONNECTIONS_PER_NODE: u32 = 5;
/// BDB JE pages: sized so a leaf holds ~29 records, matching JE's ~550 B
/// per-record on-disk footprint (Fig 17) rather than a dense layout.
const BDB_PAGE: BTreeConfig = BTreeConfig {
    leaf_capacity: 28,
    internal_capacity: 120,
    page_bytes: 16 << 10,
};
/// Fraction of RAM effectively caching B-tree pages (BDB cache + OS page
/// cache over JE log files).
const CACHE_FRACTION: f64 = 0.8;
/// Probability that a *write* whose target page fell out of the unified
/// pool still needs a random read: JE writes only require the BIN
/// (branch) node, and BINs are preferentially retained by JE's cache, so
/// most write-path misses in our unified pool are for record data the
/// append does not need. Calibrated to Fig 18's ×3 R→W gain on Cluster D.
const WRITE_MISS_READ_PROB: f64 = 0.35;
/// JE log flush granularity (background).
const LOG_FLUSH_BYTES: u64 = 4 << 20;
/// Wire sizes.
const REQ_BYTES: u64 = 110;
const RESP_READ_BYTES: u64 = 160;
const RESP_WRITE_BYTES: u64 = 50;

struct Node {
    tree: BTree,
    pool: BufferPool,
    log: CommitLog,
    rng: SplitRng,
}

impl Node {
    /// Replays a read-path page trace through the buffer pool: every miss
    /// is a random log fetch; evicted dirty pages go out through JE's
    /// log, i.e. sequentially.
    fn replay(&mut self, trace: &PageTrace) -> Vec<DiskIo> {
        let mut ios = Vec::new();
        let page_bytes = self.tree.page_bytes();
        for page in &trace.read {
            let r = self.pool.access(*page, Access::Read);
            if !r.hit {
                ios.push(DiskIo::random_read(page_bytes));
            }
            if r.writeback.is_some() {
                ios.push(DiskIo::seq_write(page_bytes));
            }
        }
        for page in &trace.written {
            let r = self.pool.access(*page, Access::Write);
            if !r.hit {
                ios.push(DiskIo::random_read(page_bytes));
            }
            if r.writeback.is_some() {
                ios.push(DiskIo::seq_write(page_bytes));
            }
        }
        for page in &trace.allocated {
            // Fresh split pages are dirtied in place — no read needed.
            let r = self.pool.access(*page, Access::Write);
            if r.writeback.is_some() {
                ios.push(DiskIo::seq_write(page_bytes));
            }
        }
        ios
    }

    /// Replays a write-path trace: JE appends the record to its log, so
    /// a page miss only sometimes requires a physical read (see
    /// [`WRITE_MISS_READ_PROB`]); write-backs are sequential log traffic.
    fn replay_write(&mut self, trace: &PageTrace) -> Vec<DiskIo> {
        let mut ios = Vec::new();
        let page_bytes = self.tree.page_bytes();
        for (page, dirtying) in trace
            .read
            .iter()
            .map(|p| (p, false))
            .chain(trace.written.iter().map(|p| (p, true)))
        {
            let access = if dirtying {
                Access::Write
            } else {
                Access::Read
            };
            let r = self.pool.access(*page, access);
            if !r.hit && self.rng.next_f64() < WRITE_MISS_READ_PROB {
                ios.push(DiskIo::random_read(page_bytes));
            }
            if r.writeback.is_some() {
                ios.push(DiskIo::seq_write(page_bytes));
            }
        }
        for page in &trace.allocated {
            let r = self.pool.access(*page, Access::Write);
            if r.writeback.is_some() {
                ios.push(DiskIo::seq_write(page_bytes));
            }
        }
        ios
    }
}

/// The store.
pub struct VoldemortStore {
    // Construction-time config/topology; not part of the snapshot stream.
    ctx: StoreCtx,         // audit:allow(snap-drift)
    map: PartitionMap,     // audit:allow(snap-drift)
    format: StorageFormat, // audit:allow(snap-drift)
    nodes: Vec<Node>,
    /// Outstanding background log flushes (job id → node).
    jobs: BTreeMap<u64, usize>,
    next_job: u64,
}

impl VoldemortStore {
    /// Creates the store.
    pub fn new(ctx: StoreCtx, _engine: &mut Engine) -> VoldemortStore {
        let cache_pages = ((ctx.scaled_ram() as f64 * CACHE_FRACTION) as u64 / BDB_PAGE.page_bytes)
            .max(16) as usize;
        let nodes = (0..ctx.node_count())
            .map(|i| Node {
                tree: BTree::new(BDB_PAGE),
                pool: BufferPool::new(cache_pages),
                log: CommitLog::new(SyncPolicy::Deferred, 50),
                rng: SplitRng::new(ctx.seed ^ ((i as u64) << 24)),
            })
            .collect();
        VoldemortStore {
            map: PartitionMap::new(ctx.node_count()),
            format: voldemort_format(),
            ctx,
            nodes,
            jobs: BTreeMap::new(),
            next_job: 1,
        }
    }

    fn maybe_flush_log(&mut self, node: usize, engine: &mut Engine) {
        // JE flushes its log asynchronously; charge it when enough bytes
        // accumulated (scaled with the dataset).
        let threshold = ((LOG_FLUSH_BYTES as f64 * self.ctx.scale) as u64).max(64 << 10);
        if self.nodes[node].log.unflushed() < threshold {
            return;
        }
        let pending = self.nodes[node].log.take_unflushed();
        let id = self.next_job;
        self.next_job += 1;
        self.jobs.insert(id, node);
        let res = self.ctx.servers[node];
        engine.submit(
            Plan(vec![apm_sim::Step::Acquire {
                resource: res.disk,
                service: self
                    .ctx
                    .cluster
                    .node
                    .disk
                    .service(pending, apm_sim::IoPattern::Sequential),
            }]),
            background_token(id),
        );
    }
}

impl DistributedStore for VoldemortStore {
    fn name(&self) -> &'static str {
        "voldemort"
    }

    fn ctx(&self) -> &StoreCtx {
        &self.ctx
    }

    fn load(&mut self, record: &Record) {
        let node = self.map.route(&record.key);
        let (_, trace) = self.nodes[node].tree.insert(record.key, record.fields);
        // Warm the pool during load, discarding the IO (untimed phase).
        let _ = self.nodes[node].replay(&trace);
    }

    fn plan_op(&mut self, client: u32, op: &Operation, engine: &mut Engine) -> (OpOutcome, Plan) {
        match op {
            Operation::Read { key } => {
                let node_idx = self.map.route(key);
                let node = &mut self.nodes[node_idx];
                let (found, trace) = node.tree.get(key);
                let ios = node.replay(&trace);
                let mut receipt = CostReceipt::new();
                receipt.probe(trace.read.len() as u64).touch(75);
                let outcome = match found {
                    Some(fields) => OpOutcome::Found(Record { key: *key, fields }),
                    None => OpOutcome::Missing,
                };
                let steps = server_steps(
                    &self.ctx.servers[node_idx],
                    &self.ctx.cluster,
                    SERVER_COST.cpu(&receipt),
                    &ios,
                );
                let plan = round_trip_plan(
                    &self.ctx,
                    client,
                    &self.ctx.servers[node_idx],
                    CLIENT_CPU,
                    REQ_BYTES,
                    RESP_READ_BYTES,
                    steps,
                );
                (outcome, plan)
            }
            Operation::Insert { record } | Operation::Update { record } => {
                let node_idx = self.map.route(&record.key);
                let node = &mut self.nodes[node_idx];
                let (_, trace) = node.tree.insert(record.key, record.fields);
                let mut ios = node.replay_write(&trace);
                // JE appends the record to its log asynchronously.
                let wal = node
                    .log
                    .append(record.fields.len() as u64 + record.key.len() as u64);
                debug_assert!(wal.io.is_none(), "deferred log must not sync inline");
                ios.retain(|io| io.bytes > 0);
                let mut receipt = CostReceipt::new();
                receipt
                    .probe(trace.read.len() as u64 + trace.written.len() as u64)
                    .touch(75);
                let steps = server_steps(
                    &self.ctx.servers[node_idx],
                    &self.ctx.cluster,
                    SERVER_COST.cpu(&receipt),
                    &ios,
                );
                let plan = round_trip_plan(
                    &self.ctx,
                    client,
                    &self.ctx.servers[node_idx],
                    CLIENT_CPU,
                    REQ_BYTES,
                    RESP_WRITE_BYTES,
                    steps,
                );
                self.maybe_flush_log(node_idx, engine);
                (OpOutcome::Done, plan)
            }
            Operation::Scan { .. } => {
                // §5.4: "the existing YCSB client for Project Voldemort
                // ... does not support scans. Therefore, we omitted
                // Project Voldemort in the following experiments."
                let plan =
                    crate::api::client_only_plan(&self.ctx, client, SimDuration::from_micros(5));
                (OpOutcome::Rejected(RejectReason::Unsupported), plan)
            }
        }
    }

    fn on_background(&mut self, job_id: u64, _engine: &mut Engine) {
        self.jobs.remove(&job_id).expect("known log flush job");
    }

    fn supports_scans(&self) -> bool {
        false
    }

    fn connection_cap(&self) -> Option<u32> {
        if self.ctx.cluster.name == "D" {
            // §5.8/§6: on the disk-bound cluster the client ran with the
            // reduced 2-connections-per-core budget and Voldemort's fixed
            // client thread limit did not scale with nodes. Little's law
            // on the paper's numbers (≈1 K ops/s at 5–6 ms, Fig 18/19)
            // puts the outstanding-op count near 6.
            Some(8)
        } else {
            Some(CONNECTIONS_PER_NODE * self.ctx.node_count() as u32)
        }
    }

    fn disk_bytes_per_node(&self) -> Option<u64> {
        let records: u64 = self.nodes.iter().map(|n| n.tree.len()).sum();
        Some(self.format.disk_usage(records) / self.nodes.len() as u64)
    }

    fn snap_state(&self, w: &mut SnapWriter) {
        for node in &self.nodes {
            node.tree.snap_state(w);
            node.pool.snap_state(w);
            node.log.snap_state(w);
            w.put(&node.rng);
        }
        w.put(&self.jobs);
        w.put_u64(self.next_job);
    }

    fn restore_state(&mut self, r: &mut SnapReader, _engine: &mut Engine) -> Result<(), SnapError> {
        for node in &mut self.nodes {
            node.tree.restore_state(r)?;
            node.pool.restore_state(r)?;
            node.log.restore_state(r)?;
            node.rng = r.get()?;
        }
        self.jobs = r.get()?;
        self.next_job = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_benchmark, RunConfig};
    use apm_core::driver::ClientConfig;
    use apm_core::keyspace::record_for_seq;
    use apm_core::ops::OpKind;
    use apm_core::workload::Workload;
    use apm_sim::{ClusterSpec, FaultSchedule};

    fn make(engine: &mut Engine, cluster: ClusterSpec, nodes: u32, scale: f64) -> VoldemortStore {
        let ctx = StoreCtx::new(
            engine,
            cluster,
            nodes,
            StoreCtx::standard_client_machines(nodes),
            scale,
            23,
        );
        VoldemortStore::new(ctx, engine)
    }

    fn quick_run(nodes: u32, workload: Workload) -> crate::runner::RunResult {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, ClusterSpec::cluster_m(), nodes, 0.01);
        let config = RunConfig {
            workload,
            client: ClientConfig::cluster_m(nodes).with_window(0.5, 3.0),
            records_per_node: 20_000,
            nodes,
            seed: 9,
            event_at_secs: None,
            faults: FaultSchedule::none(),
            op_deadline: None,
            telemetry_window_secs: None,
            resilience: None,
            checkpoints: None,
        };
        run_benchmark(&mut engine, &mut s, &config)
    }

    #[test]
    fn reads_find_loaded_data() {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, ClusterSpec::cluster_m(), 3, 0.01);
        for seq in 0..3_000 {
            s.load(&record_for_seq(seq));
        }
        for seq in (0..3_000).step_by(151) {
            let r = record_for_seq(seq);
            let (outcome, _) = s.plan_op(0, &Operation::Read { key: r.key }, &mut engine);
            assert_eq!(outcome, OpOutcome::Found(r), "seq {seq}");
        }
    }

    #[test]
    fn throughput_sits_between_hbase_and_cassandra() {
        // Fig 3: ≈12 K ops/s on one node.
        let t = quick_run(1, Workload::r()).throughput();
        assert!((7_000.0..18_000.0).contains(&t), "voldemort 1-node R: {t}");
    }

    #[test]
    fn latency_is_low_and_read_write_symmetric() {
        // Figs 4/5: ~230-260 µs, reads ≈ writes.
        let result = quick_run(1, Workload::rw());
        let r = result.mean_latency_ms(OpKind::Read).unwrap();
        let w = result.mean_latency_ms(OpKind::Insert).unwrap();
        assert!(r < 1.0, "read latency too high: {r} ms");
        assert!(w < 1.0, "write latency too high: {w} ms");
        assert!(
            (r - w).abs() / r.max(w) < 0.5,
            "latencies should be symmetric: {r} vs {w}"
        );
    }

    #[test]
    fn scaling_is_near_linear() {
        let one = quick_run(1, Workload::r()).throughput();
        let four = quick_run(4, Workload::r()).throughput();
        let speedup = four / one;
        assert!((3.0..5.0).contains(&speedup), "speedup {speedup:.2}");
    }

    #[test]
    fn scans_are_rejected_as_unsupported() {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, ClusterSpec::cluster_m(), 1, 0.01);
        let (outcome, _) = s.plan_op(
            0,
            &Operation::Scan {
                start: record_for_seq(0).key,
                len: 50,
            },
            &mut engine,
        );
        assert_eq!(outcome, OpOutcome::Rejected(RejectReason::Unsupported));
        assert!(!s.supports_scans());
    }

    #[test]
    fn cluster_d_reads_pay_buffer_misses() {
        // §5.8: on the disk-bound cluster the B-tree thrashes. Load more
        // data than the scaled pool holds and check reads produce IO.
        let mut engine = Engine::new();
        let mut s = make(&mut engine, ClusterSpec::cluster_d(), 1, 0.002);
        // 4 GB × 0.8 × 0.002 = ~6.7 MB pool = ~420 pages; load 40 K
        // records → ~1400 leaves: guaranteed thrash.
        for seq in 0..40_000 {
            s.load(&record_for_seq(seq));
        }
        let mut io_reads = 0;
        for seq in (0..40_000).step_by(199) {
            let r = record_for_seq(seq);
            let node = s.map.route(&r.key);
            let (_, trace) = s.nodes[node].tree.get(&r.key);
            io_reads += s.nodes[node].replay(&trace).len();
        }
        assert!(
            io_reads > 50,
            "thrashing pool must issue disk reads: {io_reads}"
        );
    }

    #[test]
    fn connection_cap_limits_population() {
        let mut engine = Engine::new();
        let s = make(&mut engine, ClusterSpec::cluster_m(), 4, 0.01);
        assert_eq!(s.connection_cap(), Some(20));
    }

    #[test]
    fn disk_usage_tracks_the_bdb_format() {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, ClusterSpec::cluster_m(), 2, 0.01);
        for seq in 0..10_000 {
            s.load(&record_for_seq(seq));
        }
        let per_node = s.disk_bytes_per_node().unwrap();
        let expected = voldemort_format().disk_usage(5_000);
        assert_eq!(per_node, expected);
    }
}
